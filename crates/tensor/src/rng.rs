//! Seeded pseudo-random sampling.
//!
//! All randomness in the reproduction — weight initialization, synthetic
//! datasets, Gaussian noise injection for the segment-equivalence
//! assessment (paper Section 4.2 step ii), and arrival processes in the
//! serving simulator — flows through [`Prng`] so that every experiment is
//! reproducible from a single `u64` seed.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, the standard
//! pairing recommended by the xoshiro authors. It is implemented here
//! directly (rather than through the `rand` crate) so the numeric stream is
//! stable across dependency upgrades, and so `Prng` is `Clone` — cloning a
//! generator to replay a stream is used by the experiment harness.
//! Distribution sampling (Gaussian, exponential, Poisson) is implemented on
//! top via standard transforms.

/// FNV-1a 64-bit hash of a byte string.
///
/// A *stable* hash: the constants are fixed by the FNV specification, so
/// the value never changes across Rust releases or platforms (unlike
/// `DefaultHasher`, which documents no such guarantee). Seed derivation
/// for per-pair analysis RNGs flows through this function so that the
/// random stream attached to a `(seed, key_a, key_b)` triple is a pure
/// function of the triple — independent of insertion order, thread
/// schedule, and process history.
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mix an ordered sequence of 64-bit words into a single seed
/// (SplitMix64 absorption). Order-sensitive: `mix64(&[a, b])` and
/// `mix64(&[b, a])` differ, so directional pair seeds stay distinct.
pub fn mix64(parts: &[u64]) -> u64 {
    let mut state = 0x6a09_e667_f3bc_c909u64;
    let mut acc = 0u64;
    for &p in parts {
        state ^= p;
        acc = acc.rotate_left(23) ^ splitmix64(&mut state);
    }
    acc
}

/// A seeded pseudo-random number generator (xoshiro256++) with the
/// distribution samplers the reproduction needs.
///
/// ```
/// use sommelier_tensor::Prng;
/// let mut a = Prng::seed_from_u64(7);
/// let mut b = Prng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let child = a.fork();                   // independent child stream
/// drop(child);
/// ```
#[derive(Clone, Debug)]
pub struct Prng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Create a generator from a 64-bit seed. The same seed always yields
    /// the same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { state }
    }

    /// Derive an independent child generator. Used to give each model /
    /// dataset / simulation its own stream while staying reproducible.
    pub fn fork(&mut self) -> Prng {
        Prng::seed_from_u64(self.next_u64())
    }

    /// Next raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform() as f32
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased bounded
    /// integers.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        let range = n as u64;
        let threshold = range.wrapping_neg() % range;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (range as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli trial with success probability `p`.
    pub fn flip(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn gaussian(&mut self) -> f64 {
        // Avoid log(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential sample with the given rate (inverse-CDF method).
    /// Used for Poisson-process inter-arrival times in the serving
    /// simulator. Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.uniform(); // in (0, 1]
        -u.ln() / rate
    }

    /// Poisson sample (Knuth's algorithm; adequate for the small means the
    /// workload generators use).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0, "poisson mean must be non-negative");
        if mean == 0.0 {
            return 0;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (or all of them if
    /// `k >= n`). Order is random. Used for the semantic index's sampled
    /// insertion (paper Section 5.2: "randomly selects 5 existing models").
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k.min(n));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_fixed_forever() {
        // Golden values: these must never change (snapshots and pair
        // seeds depend on them).
        assert_eq!(stable_hash64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(stable_hash64(b"ab"), stable_hash64(b"ba"));
    }

    #[test]
    fn mix64_is_order_sensitive_and_deterministic() {
        let ab = mix64(&[1, 2]);
        assert_eq!(ab, mix64(&[1, 2]));
        assert_ne!(ab, mix64(&[2, 1]));
        assert_ne!(mix64(&[1]), mix64(&[1, 0]));
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_replays_stream() {
        let mut a = Prng::seed_from_u64(99);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Prng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn index_covers_range_roughly_uniformly() {
        let mut rng = Prng::seed_from_u64(17);
        let n = 8;
        let mut counts = vec![0usize; n];
        let draws = 16_000;
        for _ in 0..draws {
            counts[rng.index(n)] += 1;
        }
        let expected = draws / n;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 4) as u64,
                "bucket {i} count {c} far from expected {expected}"
            );
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = Prng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.08, "var = {var}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = Prng::seed_from_u64(5);
        let rate = 4.0;
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn poisson_mean_matches() {
        let mut rng = Prng::seed_from_u64(6);
        let lambda = 3.5;
        let n = 20_000;
        let mean = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Prng::seed_from_u64(8);
        let idx = rng.sample_indices(100, 5);
        assert_eq!(idx.len(), 5);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_saturates_at_population() {
        let mut rng = Prng::seed_from_u64(9);
        let idx = rng.sample_indices(3, 10);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::seed_from_u64(10);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent_but_reproducible() {
        let mut parent1 = Prng::seed_from_u64(11);
        let mut parent2 = Prng::seed_from_u64(11);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..10 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = Prng::seed_from_u64(12);
        assert_eq!(rng.poisson(0.0), 0);
    }
}
