//! Transfer-learning derivation.
//!
//! "Model variants are frequently derived from a common model base, but
//! *transferred* and *fine-tuned* to different downstream tasks"
//! (paper Section 4). This module reproduces that lineage: a downstream
//! model keeps the base model's feature extractor (input projection and
//! body) verbatim, swaps the readout for the downstream task's head, and
//! optionally fine-tunes a suffix of the copied layers. The resulting pair
//! shares structurally identical segments — exactly the scenario the
//! segment-equivalence analysis of Section 4.2 targets.
//!
//! Downstream teachers are *derived* from the base task's teacher: they
//! share its feature extractor (`W₁`) and differ only in their readout.
//! This mirrors the empirical premise of transfer learning — base features
//! transfer because downstream ground truth is (approximately) a function
//! of them.

use crate::finetune;
use crate::teacher::{DatasetBias, Teacher};
use sommelier_graph::layer::{Layer, LayerId, Params};
use sommelier_graph::task::OutputStyle;
use sommelier_graph::{Model, Op, TaskKind};
use sommelier_tensor::{Prng, Tensor};

/// Derive a downstream task's teacher from a base teacher: shared `W₁`
/// feature extractor, fresh readout of the given width.
pub fn derive_teacher(
    base: &Teacher,
    task: TaskKind,
    output_width: usize,
    seed: u64,
) -> Teacher {
    derive_teacher_shifted(base, task, output_width, 0.0, seed)
}

/// Derive a downstream teacher whose feature extractor is *shifted* away
/// from the base's by relative magnitude `shift` (same decaying
/// importance spectrum). With `shift > 0` the base features are good but
/// not optimal for the downstream task — fine-tuning toward the
/// downstream features genuinely improves QoR, and undoing it (replacing
/// the tuned segment with the original, paper Figure 10) genuinely costs.
pub fn derive_teacher_shifted(
    base: &Teacher,
    task: TaskKind,
    output_width: usize,
    shift: f64,
    seed: u64,
) -> Teacher {
    let mut rng = Prng::seed_from_u64(seed ^ 0xd04a_57a5_4e11_0b1e);
    let mut spec = base.spec;
    spec.task = task;
    spec.output_width = output_width;
    let w1 = if shift > 0.0 {
        let std = shift * (2.0 / spec.input_width as f64).sqrt();
        let mut delta = Tensor::gaussian(spec.input_width, spec.hidden, std, &mut rng);
        for r in 0..delta.rows() {
            let row = delta.row_mut(r);
            for (j, v) in row.iter_mut().enumerate() {
                *v *= ((j + 1) as f32).powf(-(Teacher::FEATURE_DECAY as f32));
            }
        }
        base.w1.zip_with(&delta, |a, b| a + b)
    } else {
        base.w1.clone()
    };
    let w2 = Tensor::gaussian(
        spec.hidden,
        output_width,
        (2.0 / spec.hidden as f64).sqrt(),
        &mut rng,
    );
    Teacher { spec, w1, w2 }
}

/// Interpolate a transferred model's feature extractor toward the
/// downstream consensus: the first copied linear layer's weights become
/// `(1 − adapt)·current + adapt·downstream`, emulating fine-tuning that
/// adapts base features to the new task. `adapt = 0` leaves the base
/// frozen; `adapt = 1` is a full re-tune. Optional `jitter` adds
/// relative weight noise to the adapted layer (the "noisy fine-tuning"
/// worst case of Figure 10).
pub fn adapt_features(
    transferred: &Model,
    downstream: &Teacher,
    downstream_bias: &DatasetBias,
    adapt: f64,
    jitter: f64,
    rng: &mut Prng,
) -> Model {
    let mut out = transferred.clone();
    let first_linear = *out
        .linear_layers()
        .first()
        .expect("transferred model has a feature extractor");
    let (w1c, _) = downstream_bias.consensus(downstream);
    let current = out
        .layer(first_linear)
        .params
        .weight
        .clone()
        .expect("linear layer has weights");
    assert_eq!(
        (current.rows(), current.cols()),
        (w1c.rows(), w1c.cols()),
        "downstream teacher must share the base feature geometry"
    );
    let a = adapt.clamp(0.0, 1.0) as f32;
    let mut blended = current.zip_with(&w1c, move |old, new| (1.0 - a) * old + a * new);
    if jitter > 0.0 {
        let n = blended.len().max(1);
        let std = jitter * blended.frobenius_norm() / (n as f64).sqrt();
        let noise = Tensor::gaussian(blended.rows(), blended.cols(), std, rng);
        blended = blended.zip_with(&noise, |x, y| x + y);
    }
    let mut params = out.layer(first_linear).params.clone();
    params.weight = Some(blended);
    out.set_params(first_linear, params)
        .expect("blend preserves shapes");
    out
}

/// Transfer a base model to a downstream task.
///
/// * The base's feature extractor (everything before its final linear
///   readout) is copied verbatim.
/// * A new readout embedding the downstream dataset's consensus `W₂` (plus
///   private noise `head_noise`) replaces the base head, followed by
///   softmax for classification tasks.
/// * The last `tune_fraction` of the copied linear layers is perturbed at
///   `tune_level` — the "fine-tune by freezing different numbers of base
///   layers" protocol of the paper's Figure 10.
#[allow(clippy::too_many_arguments)]
pub fn transfer(
    name: impl Into<String>,
    base_model: &Model,
    downstream: &Teacher,
    downstream_bias: &DatasetBias,
    head_noise: f64,
    tune_fraction: f64,
    tune_level: f64,
    rng: &mut Prng,
) -> Model {
    // Locate the base readout: the last linear layer.
    let linear = base_model.linear_layers();
    let head_id = *linear.last().expect("base model has a readout");
    assert_eq!(
        base_model.width_of(base_model.layer(head_id).inputs[0]),
        downstream.spec.hidden,
        "base feature width must match the downstream teacher's hidden width"
    );

    // Copy the feature extractor (all layers strictly before the head).
    let mut layers: Vec<Layer> = base_model.layers()[..head_id.index()].to_vec();
    let feature_layer = base_model.layer(head_id).inputs[0];

    // Build the downstream readout from the consensus weights.
    let (_, w2c) = downstream_bias.consensus(downstream);
    let w2m = if head_noise > 0.0 {
        let n = w2c.len().max(1);
        let std = head_noise * w2c.frobenius_norm() / (n as f64).sqrt();
        let delta = Tensor::gaussian(w2c.rows(), w2c.cols(), std, rng);
        w2c.zip_with(&delta, |a, b| a + b)
    } else {
        w2c
    };
    let units = w2m.cols();
    layers.push(Layer::new(
        "transfer_head",
        Op::Dense { units },
        vec![feature_layer],
        Params::with_weight_bias(w2m, Tensor::zeros(1, units)),
    ));
    if downstream.spec.output_style() == OutputStyle::Classification {
        let head = LayerId(layers.len() - 1);
        layers.push(Layer::new(
            "transfer_softmax",
            Op::Softmax,
            vec![head],
            Params::none(),
        ));
    }

    let mut model = Model::new(
        name,
        downstream.spec.task,
        base_model.input_shape.clone(),
        layers,
    )
    .expect("transfer surgery preserves validity");
    model
        .metadata
        .insert("base".into(), base_model.name.clone());
    for (k, v) in &base_model.metadata {
        model.metadata.entry(k.clone()).or_insert_with(|| v.clone());
    }
    model
        .metadata
        .insert("transfer-task".into(), downstream.spec.task.slug().into());

    // Fine-tune: perturb the tail of the *copied* linear layers (exclude
    // the fresh head, which is already noised).
    if tune_fraction > 0.0 && tune_level > 0.0 {
        let copied_linear: Vec<LayerId> = model
            .linear_layers()
            .into_iter()
            .filter(|id| id.index() < head_id.index())
            .collect();
        let tuned = ((copied_linear.len() as f64) * tune_fraction.clamp(0.0, 1.0)).round() as usize;
        let start = copied_linear.len() - tuned;
        model = finetune::perturb_layers(&model, &copied_linear[start..], tune_level, rng);
    }
    model
}

/// The layer ids (in the transferred model) of the copied base segment —
/// everything up to but excluding the new head. Useful for experiments
/// that swap the segment back to the base's weights.
pub fn shared_segment(base_model: &Model) -> Vec<LayerId> {
    let linear = base_model.linear_layers();
    let head_id = *linear.last().expect("base model has a readout");
    (1..head_id.index()).map(LayerId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{embed_model, BodyStyle, EmbedSpec};
    use sommelier_runtime::execute;
    use sommelier_runtime::metrics::top1_accuracy;

    fn base() -> (Teacher, DatasetBias, Model) {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 5);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let mut rng = Prng::seed_from_u64(1);
        let model = embed_model(
            "resnetish-base",
            &teacher,
            &bias,
            &EmbedSpec {
                style: BodyStyle::Residual,
                body_width: 96,
                depth: 4,
                noise: 0.01,
            },
            &mut rng,
        );
        (teacher, bias, model)
    }

    #[test]
    fn derived_teacher_shares_features() {
        let (teacher, _, _) = base();
        let d = derive_teacher(&teacher, TaskKind::ObjectDetection, 24, 9);
        assert_eq!(d.w1, teacher.w1);
        assert_ne!(d.w2.cols(), teacher.w2.cols());
        assert_eq!(d.spec.task, TaskKind::ObjectDetection);
    }

    #[test]
    fn transferred_model_performs_downstream_task() {
        let (teacher, _, base_model) = base();
        let d = derive_teacher(&teacher, TaskKind::SemanticSegmentation, 64, 9);
        let dbias = DatasetBias::new(&d, "ade20k", 0.05);
        let mut rng = Prng::seed_from_u64(3);
        let m = transfer("seg-1", &base_model, &d, &dbias, 0.01, 0.25, 0.05, &mut rng);
        assert_eq!(m.task, TaskKind::SemanticSegmentation);
        assert_eq!(m.output_width(), 64);
        assert_eq!(m.metadata["base"], "resnetish-base");

        // Downstream QoR: regression task — outputs should track the
        // derived teacher's targets well.
        let x = Tensor::gaussian(100, m.input_width(), 1.0, &mut rng);
        let out = execute(&m, &x).unwrap();
        let targets = d.outputs(&x);
        let diff = sommelier_runtime::metrics::qor_difference(
            OutputStyle::Regression,
            &targets,
            &out,
        );
        assert!(diff < 0.5, "downstream QoR diff too large: {diff}");
    }

    #[test]
    fn classification_transfer_gets_softmax_head() {
        let (teacher, _, base_model) = base();
        let d = derive_teacher(&teacher, TaskKind::SentimentAnalysis, 8, 10);
        let dbias = DatasetBias::new(&d, "imdb", 0.05);
        let mut rng = Prng::seed_from_u64(4);
        let m = transfer("sent-1", &base_model, &d, &dbias, 0.01, 0.0, 0.0, &mut rng);
        assert_eq!(m.op_tags().last().unwrap(), "softmax");
        let x = Tensor::gaussian(150, m.input_width(), 1.0, &mut rng);
        let acc = top1_accuracy(&execute(&m, &x).unwrap(), &d.labels(&x));
        assert!(acc > 0.5, "transfer accuracy {acc}");
    }

    #[test]
    fn frozen_transfer_shares_base_weights_exactly() {
        let (teacher, _, base_model) = base();
        let d = derive_teacher(&teacher, TaskKind::QuestionAnswering, 32, 11);
        let dbias = DatasetBias::new(&d, "squad1.1", 0.05);
        let mut rng = Prng::seed_from_u64(5);
        let m = transfer("qa-1", &base_model, &d, &dbias, 0.01, 0.0, 0.0, &mut rng);
        for id in shared_segment(&base_model) {
            assert_eq!(
                base_model.layer(id).params,
                m.layer(id).params,
                "frozen transfer must share base weights at layer {id:?}"
            );
        }
    }

    #[test]
    fn shifted_teacher_moves_features_by_the_requested_amount() {
        let (teacher, _, _) = base();
        let zero = derive_teacher_shifted(&teacher, TaskKind::ObjectDetection, 24, 0.0, 9);
        assert_eq!(zero.w1, teacher.w1);
        let small = derive_teacher_shifted(&teacher, TaskKind::ObjectDetection, 24, 0.1, 9);
        let large = derive_teacher_shifted(&teacher, TaskKind::ObjectDetection, 24, 0.5, 9);
        let drift = |t: &Teacher| {
            t.w1.zip_with(&teacher.w1, |a, b| a - b).frobenius_norm()
        };
        assert!(drift(&small) > 0.0);
        assert!(drift(&large) > 4.0 * drift(&small));
    }

    #[test]
    fn adapt_features_interpolates_toward_downstream_consensus() {
        let (teacher, _, base_model) = base();
        let d = derive_teacher_shifted(&teacher, TaskKind::ObjectDetection, 24, 0.3, 9);
        let dbias = DatasetBias::new(&d, "mscoco", 0.05);
        let mut rng = Prng::seed_from_u64(7);
        let frozen = transfer("det", &base_model, &d, &dbias, 0.01, 0.0, 0.0, &mut rng);

        let first = frozen.linear_layers()[0];
        let (w1c, _) = dbias.consensus(&d);
        let dist_to_consensus = |m: &Model| {
            m.layer(first)
                .params
                .weight
                .as_ref()
                .unwrap()
                .zip_with(&w1c, |a, b| a - b)
                .frobenius_norm()
        };
        let d0 = dist_to_consensus(&frozen);
        let half = adapt_features(&frozen, &d, &dbias, 0.5, 0.0, &mut rng);
        let full = adapt_features(&frozen, &d, &dbias, 1.0, 0.0, &mut rng);
        let dh = dist_to_consensus(&half);
        let df = dist_to_consensus(&full);
        assert!(dh < d0, "half-adaptation moves toward consensus");
        assert!(df < 1e-4, "full adaptation lands on consensus, got {df}");
        // Only the first linear layer changes.
        for id in frozen.linear_layers().into_iter().skip(1) {
            assert_eq!(frozen.layer(id).params, full.layer(id).params);
        }
        // Adaptation genuinely improves downstream QoR.
        let mut xrng = Prng::seed_from_u64(8);
        let x = Tensor::gaussian(400, frozen.input_width(), 1.0, &mut xrng);
        let targets = d.outputs(&x);
        let qor = |m: &Model| {
            let out = sommelier_runtime::execute(m, &x).unwrap();
            sommelier_runtime::metrics::qor_difference(OutputStyle::Regression, &targets, &out)
        };
        assert!(qor(&full) < qor(&frozen), "adapted features must fit better");
    }

    #[test]
    fn adapt_features_jitter_adds_noise() {
        let (teacher, _, base_model) = base();
        let d = derive_teacher_shifted(&teacher, TaskKind::ObjectDetection, 24, 0.3, 9);
        let dbias = DatasetBias::new(&d, "mscoco", 0.05);
        let mut rng = Prng::seed_from_u64(7);
        let frozen = transfer("det", &base_model, &d, &dbias, 0.01, 0.0, 0.0, &mut rng);
        let clean = adapt_features(&frozen, &d, &dbias, 0.5, 0.0, &mut rng);
        let noisy = adapt_features(&frozen, &d, &dbias, 0.5, 0.3, &mut rng);
        let first = frozen.linear_layers()[0];
        assert_ne!(clean.layer(first).params, noisy.layer(first).params);
    }

    #[test]
    fn tuned_transfer_modifies_only_the_tail() {
        let (teacher, _, base_model) = base();
        let d = derive_teacher(&teacher, TaskKind::QuestionAnswering, 32, 11);
        let dbias = DatasetBias::new(&d, "squad1.1", 0.05);
        let mut rng = Prng::seed_from_u64(6);
        let m = transfer("qa-2", &base_model, &d, &dbias, 0.01, 0.3, 0.1, &mut rng);
        let shared = shared_segment(&base_model);
        let changed: Vec<bool> = shared
            .iter()
            .map(|&id| base_model.layer(id).params != m.layer(id).params)
            .collect();
        assert!(changed.iter().any(|&c| c), "some layers must be tuned");
        assert!(!changed.iter().all(|&c| c), "some layers must stay frozen");
        // Changes are confined to the tail: no changed layer precedes an
        // unchanged linear layer.
        let linear_changed: Vec<bool> = shared
            .iter()
            .zip(&changed)
            .filter(|(&id, _)| base_model.layer(id).op.has_params())
            .map(|(_, &c)| c)
            .collect();
        let first_changed = linear_changed.iter().position(|&c| c).unwrap();
        assert!(linear_changed[first_changed..].iter().all(|&c| c));
    }
}
