//! Function embedding: building a model of a given architectural style
//! that approximately computes a dataset's consensus function.
//!
//! Real pre-trained models are the product of training different
//! architectures on the same data; what matters to Sommelier is the
//! *result*: models whose input/output behaviour is highly (but not
//! perfectly) correlated, with fidelity degrading as architectures shrink.
//! We manufacture that result directly. A model is assembled as
//!
//! ```text
//! input ─ Dense(W₁ᶜ+η) ─ ReLU ─ project(h→w) ─ body blocks ─ project(w→h)
//!       ─ Dense(W₂ᶜ+η) ─ [Softmax]
//! ```
//!
//! where `(W₁ᶜ, W₂ᶜ)` are the dataset's consensus weights, `η` is the
//! model's private noise, and the *body* is a family-styled stack of
//! near-identity blocks at internal width `w`. When `w < h` the projection
//! is lossy, so narrow (cheap) models are genuinely less accurate — the
//! size/accuracy gradient of EfficientNet/BiT series. Body styles span the
//! operator vocabulary (residual adds, plain stacks, pooling bottlenecks,
//! parallel branches, normalization, convolutions) so segment extraction
//! and error-propagation analysis see realistic structural diversity.

use crate::teacher::{DatasetBias, Teacher};
use serde::{Deserialize, Serialize};
use sommelier_graph::task::OutputStyle;
use sommelier_graph::{Model, ModelBuilder};
use sommelier_tensor::{Prng, Shape, Tensor};

/// Architectural idiom of a model body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BodyStyle {
    /// Small-branch residual blocks (ResNet/BiT/EfficientNet idiom).
    Residual,
    /// Plain dense+ReLU stacks (VGG idiom).
    Plain,
    /// Mean-pool bottleneck + expansion (MobileNet-style cheap blocks;
    /// inherently lossy).
    Bottleneck,
    /// Parallel half-width branches concatenated (Inception/ResNeXt idiom).
    Branchy,
    /// L2-normalized residual blocks (transformer/BERT idiom).
    Normalized,
    /// Convolution + realignment stacks (AlexNet idiom).
    ConvStack,
}

/// Geometry and fidelity of an embedded model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmbedSpec {
    /// Body style.
    pub style: BodyStyle,
    /// Internal body width `w`; lossy when smaller than the task's hidden
    /// width.
    pub body_width: usize,
    /// Number of body blocks.
    pub depth: usize,
    /// Private weight-noise scale (relative to each layer's weight scale).
    pub noise: f64,
}

/// Rectangular identity: ones on the main diagonal.
pub fn rect_identity(rows: usize, cols: usize) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    for i in 0..rows.min(cols) {
        t.set(i, i, 1.0);
    }
    t
}

/// Rectangular identity plus i.i.d. Gaussian noise of scale
/// `eta / sqrt(rows)` (so the noise's spectral contribution stays
/// proportional to `eta` regardless of size).
pub fn noisy_identity(rows: usize, cols: usize, eta: f64, rng: &mut Prng) -> Tensor {
    let base = rect_identity(rows, cols);
    if eta == 0.0 {
        return base;
    }
    let std = eta / (rows as f64).sqrt();
    let noise = Tensor::gaussian(rows, cols, std, rng);
    base.zip_with(&noise, |a, b| a + b)
}

fn perturbed(weights: &Tensor, noise: f64, rng: &mut Prng) -> Tensor {
    if noise == 0.0 {
        return weights.clone();
    }
    let n = weights.len().max(1);
    let std = noise * weights.frobenius_norm() / (n as f64).sqrt();
    let delta = Tensor::gaussian(weights.rows(), weights.cols(), std, rng);
    weights.zip_with(&delta, |a, b| a + b)
}

/// Build a model that approximates the dataset consensus function with the
/// given architecture. The caller supplies a fork of its RNG; the same
/// fork reproduces the same model.
pub fn embed_model(
    name: impl Into<String>,
    teacher: &Teacher,
    bias: &DatasetBias,
    spec: &EmbedSpec,
    rng: &mut Prng,
) -> Model {
    let task_spec = teacher.spec;
    let (w1c, w2c) = bias.consensus(teacher);
    let w1m = perturbed(&w1c, spec.noise, rng);
    let w2m = perturbed(&w2c, spec.noise, rng);

    let h = task_spec.hidden;
    let w = spec.body_width;
    let mut b = ModelBuilder::new(
        name,
        task_spec.task,
        Shape::vector(task_spec.input_width),
    );
    b.dense_with(w1m, Some(Tensor::zeros(1, h))).relu();

    // Project into the body width (lossy when w < h).
    if w != h {
        b.dense_with(noisy_identity(h, w, spec.noise, rng), None);
    }
    for _ in 0..spec.depth {
        push_block(&mut b, spec, rng);
    }
    // Project back to the hidden width for the readout.
    if b.current_width() != h {
        b.dense_with(noisy_identity(b.current_width(), h, spec.noise, rng), None);
    }
    b.dense_with(w2m, Some(Tensor::zeros(1, task_spec.output_width)));
    if task_spec.output_style() == OutputStyle::Classification {
        b.softmax();
    }
    let mut model = b.build().expect("embedding produces a valid graph");
    model
        .metadata
        .insert("style".into(), format!("{:?}", spec.style));
    model
}

/// Append one body block of the given style at the current width.
fn push_block(b: &mut ModelBuilder, spec: &EmbedSpec, rng: &mut Prng) {
    let w = b.current_width();
    let eta = spec.noise;
    match spec.style {
        BodyStyle::Residual => {
            // trunk + small perturbation branch
            let entry = b.cursor();
            let branch_scale = (eta.max(1e-3)) / (w as f64).sqrt();
            let wa = Tensor::gaussian(w, w, branch_scale, rng);
            let wb = Tensor::gaussian(w, w, branch_scale, rng);
            b.dense_with(wa, None).relu().dense_with(wb, None);
            let branch = b.cursor();
            b.add_from(&[entry, branch]).relu();
        }
        BodyStyle::Plain => {
            // dense + batch-norm(affine) + relu, the VGG-era idiom.
            b.dense_with(noisy_identity(w, w, eta, rng), None)
                .scale(eta * 0.3, rng)
                .relu();
        }
        BodyStyle::Bottleneck => {
            // Squeeze into the leading half of the feature space, then
            // expand back. Dropping the trailing (least informative under
            // the zoo's decaying feature spectrum) half is idempotent
            // across stacked blocks — the cheap-but-lossy character of
            // depthwise-separable designs.
            let half = (w / 2).max(1);
            b.dense_with(noisy_identity(w, half, eta, rng), None).relu();
            b.dense_with(noisy_identity(half, w, eta, rng), None).relu();
        }
        BodyStyle::Branchy => {
            assert!(w >= 2, "branchy blocks need width >= 2");
            let left_w = w / 2;
            let right_w = w - left_w;
            let entry = b.cursor();
            // Left branch selects the first half of the features…
            let mut left = Tensor::zeros(w, left_w);
            for i in 0..left_w {
                left.set(i, i, 1.0);
            }
            // …right branch the second half.
            let mut right = Tensor::zeros(w, right_w);
            for i in 0..right_w {
                right.set(left_w + i, i, 1.0);
            }
            let jitter = |t: Tensor, rng: &mut Prng| {
                if eta > 0.0 {
                    let std = eta / (w as f64).sqrt();
                    let n = Tensor::gaussian(t.rows(), t.cols(), std, rng);
                    t.zip_with(&n, |a, b| a + b)
                } else {
                    t
                }
            };
            b.dense_with(jitter(left, rng), None).relu();
            let lb = b.cursor();
            b.goto(entry).dense_with(jitter(right, rng), None).relu();
            let rb = b.cursor();
            b.concat_from(&[lb, rb]);
        }
        BodyStyle::Normalized => {
            // norm → affine → projection branch + residual add, the
            // transformer block idiom (LayerNorm = l2norm + learned
            // affine).
            let entry = b.cursor();
            let branch_scale = (eta.max(1e-3)) / (w as f64).sqrt();
            let wa = Tensor::gaussian(w, w, branch_scale, rng);
            b.l2_normalize().scale(eta * 0.3, rng).dense_with(wa, None);
            let branch = b.cursor();
            b.add_from(&[entry, branch]).relu();
        }
        BodyStyle::ConvStack => {
            // Near-identity 3-tap convolution followed by a realignment
            // projection restoring the width. The kernel is a delta at
            // tap 0, so conv output `i` holds feature `i`; only the two
            // trailing (least informative) features are clipped by the
            // valid-convolution shrink.
            let mut kernel = Tensor::zeros(1, 3);
            kernel.set(0, 0, 1.0);
            let kernel = if eta > 0.0 {
                let n = Tensor::gaussian(1, 3, eta * 0.3, rng);
                kernel.zip_with(&n, |a, b| a + b)
            } else {
                kernel
            };
            b.conv1d_with(kernel, 1);
            let shrunk = b.current_width();
            b.dense_with(noisy_identity(shrunk, w, eta, rng), None).relu();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::TaskKind;
    use sommelier_runtime::metrics::top1_accuracy;
    use sommelier_runtime::execute;

    fn setup() -> (Teacher, DatasetBias, Tensor, Vec<usize>) {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 42);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let mut rng = Prng::seed_from_u64(7);
        let x = Tensor::gaussian(200, teacher.spec.input_width, 1.0, &mut rng);
        let labels = teacher.labels(&x);
        (teacher, bias, x, labels)
    }

    fn spec(style: BodyStyle) -> EmbedSpec {
        EmbedSpec {
            style,
            body_width: 96,
            depth: 3,
            noise: 0.01,
        }
    }

    #[test]
    fn rect_identity_shapes() {
        let t = rect_identity(3, 5);
        assert_eq!(t.get(2, 2), 1.0);
        assert_eq!(t.get(2, 4), 0.0);
    }

    #[test]
    fn all_styles_produce_valid_accurate_models() {
        let (teacher, bias, x, labels) = setup();
        for style in [
            BodyStyle::Residual,
            BodyStyle::Plain,
            BodyStyle::Bottleneck,
            BodyStyle::Branchy,
            BodyStyle::Normalized,
            BodyStyle::ConvStack,
        ] {
            let mut rng = Prng::seed_from_u64(99);
            let m = embed_model("m", &teacher, &bias, &spec(style), &mut rng);
            let out = execute(&m, &x).unwrap();
            let acc = top1_accuracy(&out, &labels);
            // Bottleneck halves the feature space, so it is allowed to be
            // rough; everything else must track the teacher closely.
            let floor = if style == BodyStyle::Bottleneck { 0.30 } else { 0.70 };
            assert!(acc >= floor, "{style:?} accuracy {acc} below {floor}");
        }
    }

    #[test]
    fn zero_noise_full_width_residual_is_near_perfect() {
        let (teacher, _, x, labels) = setup();
        let no_bias = DatasetBias::new(&teacher, "imagenet", 0.0);
        let mut rng = Prng::seed_from_u64(1);
        let m = embed_model(
            "exact",
            &teacher,
            &no_bias,
            &EmbedSpec {
                style: BodyStyle::Residual,
                body_width: 96,
                depth: 2,
                noise: 0.0,
            },
            &mut rng,
        );
        let out = execute(&m, &x).unwrap();
        let acc = top1_accuracy(&out, &labels);
        assert!(acc > 0.97, "zero-noise embedding accuracy {acc}");
    }

    #[test]
    fn narrower_bodies_are_less_accurate() {
        let (teacher, bias, x, labels) = setup();
        let acc_at = |width: usize| {
            let mut rng = Prng::seed_from_u64(5);
            let m = embed_model(
                "m",
                &teacher,
                &bias,
                &EmbedSpec {
                    style: BodyStyle::Residual,
                    body_width: width,
                    depth: 3,
                    noise: 0.02,
                },
                &mut rng,
            );
            top1_accuracy(&execute(&m, &x).unwrap(), &labels)
        };
        let wide = acc_at(96);
        let narrow = acc_at(24);
        assert!(
            wide > narrow + 0.05,
            "wide={wide} should beat narrow={narrow}"
        );
    }

    #[test]
    fn more_noise_is_less_accurate() {
        let (teacher, bias, x, labels) = setup();
        let acc_at = |noise: f64| {
            let mut rng = Prng::seed_from_u64(5);
            let m = embed_model(
                "m",
                &teacher,
                &bias,
                &EmbedSpec {
                    style: BodyStyle::Plain,
                    body_width: 96,
                    depth: 3,
                    noise,
                },
                &mut rng,
            );
            top1_accuracy(&execute(&m, &x).unwrap(), &labels)
        };
        assert!(acc_at(0.005) > acc_at(0.6));
    }

    #[test]
    fn models_sharing_a_dataset_agree_more_than_they_score() {
        // The Figure 3 phenomenon: two models embedding the same dataset
        // consensus agree with each other more than either agrees with the
        // ground truth.
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 42);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.35);
        let mut rng = Prng::seed_from_u64(8);
        let x = Tensor::gaussian(400, teacher.spec.input_width, 1.0, &mut rng);
        let labels = teacher.labels(&x);
        let mut r1 = Prng::seed_from_u64(100);
        let mut r2 = Prng::seed_from_u64(200);
        let m1 = embed_model("a", &teacher, &bias, &spec(BodyStyle::Residual), &mut r1);
        let m2 = embed_model("b", &teacher, &bias, &spec(BodyStyle::Plain), &mut r2);
        let o1 = execute(&m1, &x).unwrap();
        let o2 = execute(&m2, &x).unwrap();
        let acc1 = top1_accuracy(&o1, &labels);
        let acc2 = top1_accuracy(&o2, &labels);
        let agree = sommelier_runtime::metrics::agreement_ratio(&o1, &o2);
        assert!(
            agree > acc1.max(acc2),
            "agreement {agree} must exceed accuracies {acc1}/{acc2}"
        );
    }

    #[test]
    fn regression_tasks_skip_softmax() {
        let teacher = Teacher::for_task(TaskKind::ObjectDetection, 3);
        let bias = DatasetBias::new(&teacher, "mscoco", 0.05);
        let mut rng = Prng::seed_from_u64(2);
        let m = embed_model("det", &teacher, &bias, &spec(BodyStyle::Residual), &mut rng);
        assert!(!m
            .op_tags()
            .iter()
            .any(|t| t == "softmax"));
    }
}
