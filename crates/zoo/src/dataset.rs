//! Synthetic labeled datasets.
//!
//! Stand-ins for the validation datasets of the paper's evaluation
//! (ImageNet, Caltech256, SUN397, PascalVOC, MSCOCO, Ade20k, SQuAD, IMDB,
//! CoNLL03 — Section 7 "Datasets"). A dataset is a batch of inputs plus
//! ground truth derived from the task's [`Teacher`]; its *name* seeds both
//! the sampling and the dataset's consensus bias, so "the same dataset"
//! is bit-identical across experiments.

use crate::teacher::Teacher;
use sommelier_graph::task::OutputStyle;
use sommelier_graph::TaskKind;
use sommelier_runtime::metrics::GroundTruth;
use sommelier_tensor::{Prng, Tensor};

/// A named batch of inputs with ground truth.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (e.g. `"imagenet"`).
    pub name: String,
    /// Task the ground truth pertains to.
    pub task: TaskKind,
    /// `[n, input_width]` input batch.
    pub inputs: Tensor,
    /// Ground truth, matching the task's output style.
    pub truth: GroundTruth,
}

/// Stable 64-bit hash of a dataset name (FNV-1a), used to seed sampling.
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Dataset {
    /// Sample `n` records for `teacher`'s task. The same
    /// `(name, teacher, n)` always produces the same dataset; different
    /// `salt`s produce disjoint draws from the same distribution (used by
    /// experiments that need many independent validation sets, e.g. the
    /// ModelDiff variance study of Figure 11).
    pub fn synthetic(name: &str, teacher: &Teacher, n: usize, salt: u64) -> Dataset {
        let mut rng = Prng::seed_from_u64(name_seed(name) ^ salt.wrapping_mul(0x9e37_79b9));
        let inputs = Tensor::gaussian(n, teacher.spec.input_width, 1.0, &mut rng);
        let truth = match teacher.spec.output_style() {
            OutputStyle::Classification => GroundTruth::Labels(teacher.labels(&inputs)),
            OutputStyle::Regression => GroundTruth::Targets(teacher.outputs(&inputs)),
        };
        Dataset {
            name: name.to_string(),
            task: teacher.spec.task,
            inputs,
            truth,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inputs.rows()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical dataset names for each task, mirroring the paper's
    /// benchmark/tuning sets (Section 7).
    pub fn names_for(task: TaskKind) -> &'static [&'static str] {
        match task {
            TaskKind::ImageRecognition => &["imagenet", "caltech256", "sun397"],
            TaskKind::ObjectDetection => &["pascalvoc", "mscoco"],
            TaskKind::SemanticSegmentation => &["ade20k"],
            TaskKind::QuestionAnswering => &["squad1.1"],
            TaskKind::SentimentAnalysis => &["imdb"],
            TaskKind::NamedEntityRecognition => &["conll03"],
            TaskKind::Other => &["generic"],
        }
    }

    /// The default (first-listed) dataset name for a task.
    pub fn default_name_for(task: TaskKind) -> &'static str {
        Self::names_for(task)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let t = Teacher::for_task(TaskKind::ImageRecognition, 1);
        let a = Dataset::synthetic("imagenet", &t, 32, 0);
        let b = Dataset::synthetic("imagenet", &t, 32, 0);
        assert_eq!(a.inputs, b.inputs);
    }

    #[test]
    fn salt_changes_the_draw() {
        let t = Teacher::for_task(TaskKind::ImageRecognition, 1);
        let a = Dataset::synthetic("imagenet", &t, 32, 0);
        let b = Dataset::synthetic("imagenet", &t, 32, 1);
        assert_ne!(a.inputs, b.inputs);
    }

    #[test]
    fn classification_truth_is_labels() {
        let t = Teacher::for_task(TaskKind::ImageRecognition, 1);
        let d = Dataset::synthetic("imagenet", &t, 16, 0);
        match &d.truth {
            GroundTruth::Labels(l) => assert_eq!(l.len(), 16),
            _ => panic!("expected labels"),
        }
    }

    #[test]
    fn regression_truth_is_targets() {
        let t = Teacher::for_task(TaskKind::ObjectDetection, 1);
        let d = Dataset::synthetic("mscoco", &t, 16, 0);
        match &d.truth {
            GroundTruth::Targets(t) => assert_eq!(t.rows(), 16),
            _ => panic!("expected targets"),
        }
    }

    #[test]
    fn every_task_has_named_datasets() {
        for task in TaskKind::ALL {
            assert!(!Dataset::names_for(task).is_empty());
            assert_eq!(
                Dataset::default_name_for(task),
                Dataset::names_for(task)[0]
            );
        }
    }

    #[test]
    fn name_seed_is_stable_and_distinct() {
        assert_eq!(name_seed("imagenet"), name_seed("imagenet"));
        assert_ne!(name_seed("imagenet"), name_seed("mscoco"));
    }
}
