//! TF-Hub-style catalogs.
//!
//! The paper's two benchmark sets (Section 7, "DNN model benchmarks"):
//!
//! 1. a *synthetic repository* of 200+ models transferred from six widely
//!    used pre-trained bases, with fine-grained control over functional
//!    equivalence levels — [`synthetic_repository`];
//! 2. 163 widely used TF-Hub models from the top 30 series, where each
//!    series is "a family of models derived from a common basis" ranging
//!    from small to large — [`tfhub_catalog`], including the named
//!    [`bit_series`] (5 models) and [`efficientnet_series`] (8 models)
//!    that Figure 12 examines.

use crate::families::{Family, FamilyScale};
use crate::finetune;
use crate::teacher::{DatasetBias, Teacher};
use crate::transfer;
use crate::Dataset;
use sommelier_graph::{Model, TaskKind};
use sommelier_tensor::Prng;

/// A family of models derived from a common basis, small to large.
#[derive(Clone, Debug)]
pub struct Series {
    /// Series name (e.g. `"bitish"`).
    pub name: String,
    /// Architectural family.
    pub family: Family,
    /// Task the series targets.
    pub task: TaskKind,
    /// Dataset the series was "trained" on.
    pub dataset: String,
    /// Member models, ordered small → large.
    pub models: Vec<Model>,
}

impl Series {
    /// Total number of member models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// Geometry ladder for a series of `n` sizes: width grows, depth grows,
/// private noise shrinks — so larger members are more accurate, the
/// "sequence of increasingly large and accurate models" of Section 7.3.
///
/// Families scale down with different grace: BiT ("Big Transfer") is
/// engineered for the large end and degrades steeply when shrunk, whereas
/// EfficientNet's compound scaling keeps small members competitive — the
/// asymmetry behind the paper's Figure 12(b) observation that the best
/// one-eighth-size replacement for BiT-R152x4 comes from EfficientNet.
fn ladder(family: Family, base: &FamilyScale, n: usize) -> Vec<FamilyScale> {
    let (noise_hi, noise_slope) = match family {
        Family::Bitish => (22.0, 21.0),
        Family::Efficientnetish => (1.3, 0.9),
        _ => (1.8, 1.4),
    };
    (0..n)
        .map(|i| {
            let t = i as f64 / (n.max(2) - 1) as f64; // 0 → 1
            FamilyScale {
                width_factor: base.width_factor * (0.35 + 1.35 * t),
                depth: base.depth + i,
                noise: base.noise * (noise_hi - noise_slope * t),
            }
        })
        .collect()
}

/// Build one series of `n` models.
#[allow(clippy::too_many_arguments)]
pub fn build_series(
    name: &str,
    family: Family,
    task: TaskKind,
    dataset: &str,
    n: usize,
    teacher_seed: u64,
    bias_strength: f64,
    rng: &mut Prng,
) -> Series {
    let teacher = Teacher::for_task(task, teacher_seed);
    // Series identity: members share the dataset consensus *and* a
    // series-specific deviation (common basis, common training recipe),
    // so intra-series models agree more than cross-series ones — the
    // structure Figure 13 measures.
    let bias = DatasetBias::new(&teacher, dataset, bias_strength)
        .compose(&DatasetBias::new(&teacher, &format!("series/{name}"), 0.10));
    let scales = ladder(family, &family.default_scale(), n);
    let models = scales
        .iter()
        .enumerate()
        .map(|(i, scale)| {
            let mut frng = rng.fork();
            let mut m = family.build_scaled(
                format!("{name}-{}", size_tag(family, i)),
                &teacher,
                &bias,
                scale,
                &mut frng,
            );
            m.metadata.insert("series".into(), name.to_string());
            m.metadata.insert("dataset".into(), dataset.to_string());
            m.metadata.insert("size-index".into(), i.to_string());
            m.metadata
                .insert("base".into(), format!("{name}-{}", size_tag(family, 0)));
            m
        })
        .collect();
    Series {
        name: name.to_string(),
        family,
        task,
        dataset: dataset.to_string(),
        models,
    }
}

fn size_tag(family: Family, i: usize) -> String {
    match family {
        Family::Bitish => ["r50x1", "r101x1", "r50x3", "r101x3", "r152x4"]
            .get(i)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("r{}", i)),
        Family::Efficientnetish => format!("b{i}"),
        _ => format!("s{i}"),
    }
}

/// The BiT series of Figure 12: five increasingly large models.
pub fn bit_series(seed: u64) -> Series {
    let mut rng = Prng::seed_from_u64(seed ^ 0xb17);
    build_series(
        "bitish",
        Family::Bitish,
        TaskKind::ImageRecognition,
        "imagenet",
        5,
        seed,
        0.12,
        &mut rng,
    )
}

/// The EfficientNet series of Figure 12: eight models b0–b7.
pub fn efficientnet_series(seed: u64) -> Series {
    let mut rng = Prng::seed_from_u64(seed ^ 0xeff);
    build_series(
        "efficientnetish",
        Family::Efficientnetish,
        TaskKind::ImageRecognition,
        "imagenet",
        8,
        seed, // same teacher seed: same task ground truth as BiT
        0.12,
        &mut rng,
    )
}

/// The 30-series / 163-model TF-Hub catalog of Section 7.3.
///
/// Series cycle through the architectural families and the six task
/// categories; all series of the same task share that task's teacher
/// (seeded by `seed`), and series are spread over the task's canonical
/// datasets — so cross-series functional correlation arises exactly the
/// way the paper observes it in TF-Hub: common tasks, common data, common
/// structures.
pub fn tfhub_catalog(seed: u64) -> Vec<Series> {
    let mut rng = Prng::seed_from_u64(seed ^ 0x7f4b);
    let mut out = Vec::with_capacity(30);
    out.push(bit_series(seed));
    out.push(efficientnet_series(seed));
    // Remaining 28 series hold 150 models (20×5 + 6×6 + 2×7), landing
    // the catalog exactly on the paper's 163 models over 30 series.
    let sizes = [
        5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 6, 6, 6, 6, 6, 6, 7, 7,
    ];
    debug_assert_eq!(sizes.iter().sum::<usize>(), 150);
    let families = [
        Family::Resnetish,
        Family::Vggish,
        Family::Mobilenetish,
        Family::Inceptionish,
        Family::Resnextish,
        Family::Alexnetish,
        Family::Bertish,
    ];
    for (i, &n) in sizes.iter().enumerate() {
        let family = families[i % families.len()];
        let task = TaskKind::ALL[i % TaskKind::ALL.len()];
        let datasets = Dataset::names_for(task);
        let dataset = datasets[i % datasets.len()];
        let name = format!("{}-{}-v{}", family.slug(), task.slug(), i / 7 + 1);
        out.push(build_series(
            &name,
            family,
            task,
            dataset,
            n,
            seed,
            0.12,
            &mut rng,
        ));
    }
    out
}

/// Total model count across a catalog.
pub fn catalog_model_count(catalog: &[Series]) -> usize {
    catalog.iter().map(Series::len).sum()
}

/// The synthetic repository of Figure 9(a): `per_base` variants derived
/// from each of six pre-trained bases (three vision, three NLP), with
/// fine-tune levels swept so pairwise functional differences spread over
/// `[0, max_level]`.
pub fn synthetic_repository(per_base: usize, max_level: f64, seed: u64) -> Vec<Model> {
    let mut rng = Prng::seed_from_u64(seed ^ 0x5e9);
    let mut out = Vec::with_capacity(per_base * 6);
    for (t, task) in TaskKind::ALL.into_iter().enumerate() {
        let teacher = Teacher::for_task(task, seed);
        let dataset = Dataset::default_name_for(task);
        let bias = DatasetBias::new(&teacher, dataset, 0.10);
        let family = if task.is_vision() {
            Family::Resnetish
        } else {
            Family::Bertish
        };
        let mut brng = rng.fork();
        let base = family.build_scaled(
            format!("{}-{}-base", family.slug(), task.slug()),
            &teacher,
            &bias,
            &FamilyScale::new(1.0, 5, 0.005),
            &mut brng,
        );
        for i in 0..per_base {
            let level = if per_base > 1 {
                max_level * i as f64 / (per_base - 1) as f64
            } else {
                0.0
            };
            let mut vrng = rng.fork();
            let mut v = finetune::perturb_all(&base, level, &mut vrng);
            v.name = format!("{}-{}-v{:03}", family.slug(), task.slug(), i);
            v.metadata.insert("base".into(), base.name.clone());
            v.metadata.insert("dataset".into(), dataset.to_string());
            v.metadata
                .insert("finetune-level".into(), format!("{level:.4}"));
            v.metadata.insert("task-index".into(), t.to_string());
            out.push(v);
        }
    }
    out
}

/// Six transferred downstream models from a shared vision base — the
/// "six widely used pre-trained models: three for vision … and three for
/// NLP" setup, linked by transfer so segment-level equivalence exists.
pub fn transfer_suite(seed: u64) -> (Model, Vec<Model>) {
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, seed);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.08);
    let mut rng = Prng::seed_from_u64(seed ^ 0x7a5);
    let base = Family::Resnetish.build_scaled(
        "resnetish-50",
        &teacher,
        &bias,
        &FamilyScale::new(1.0, 6, 0.005),
        &mut rng,
    );
    let downstream_specs: [(TaskKind, usize, &str); 3] = [
        (TaskKind::ObjectDetection, 24, "mscoco"),
        (TaskKind::SemanticSegmentation, 64, "ade20k"),
        (TaskKind::QuestionAnswering, 32, "squad1.1"),
    ];
    let mut derived = Vec::new();
    for (i, (task, width, ds)) in downstream_specs.into_iter().enumerate() {
        let d = transfer::derive_teacher(&teacher, task, width, seed + i as u64);
        let dbias = DatasetBias::new(&d, ds, 0.08);
        let mut trng = rng.fork();
        derived.push(transfer::transfer(
            format!("{}-from-resnetish", task.slug()),
            &base,
            &d,
            &dbias,
            0.01,
            0.25,
            0.05,
            &mut trng,
        ));
    }
    (base, derived)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::cost::model_cost;
    use sommelier_runtime::execute;
    use sommelier_runtime::metrics::top1_accuracy;
    use sommelier_tensor::Tensor;

    #[test]
    fn bit_series_has_five_increasing_models() {
        let s = bit_series(1);
        assert_eq!(s.len(), 5);
        assert_eq!(s.models[4].name, "bitish-r152x4");
        let costs: Vec<u64> = s.models.iter().map(|m| model_cost(m).flops).collect();
        for w in costs.windows(2) {
            assert!(w[1] > w[0], "series must grow: {costs:?}");
        }
    }

    #[test]
    fn efficientnet_series_has_eight_models() {
        let s = efficientnet_series(1);
        assert_eq!(s.len(), 8);
        assert_eq!(s.models[0].name, "efficientnetish-b0");
    }

    #[test]
    fn larger_series_members_are_more_accurate() {
        let s = bit_series(3);
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 3);
        let mut rng = Prng::seed_from_u64(9);
        let x = Tensor::gaussian(300, teacher.spec.input_width, 1.0, &mut rng);
        let labels = teacher.labels(&x);
        let accs: Vec<f64> = s
            .models
            .iter()
            .map(|m| top1_accuracy(&execute(m, &x).unwrap(), &labels))
            .collect();
        assert!(
            accs[4] > accs[0],
            "largest must beat smallest: {accs:?}"
        );
    }

    #[test]
    fn catalog_has_thirty_series_and_163_models() {
        let catalog = tfhub_catalog(7);
        assert_eq!(catalog.len(), 30);
        assert_eq!(catalog_model_count(&catalog), 163);
        // Metadata is attached everywhere.
        for s in &catalog {
            for m in &s.models {
                assert_eq!(m.metadata["series"], s.name);
                assert!(m.metadata.contains_key("dataset"));
            }
        }
    }

    #[test]
    fn catalog_series_names_are_unique() {
        let catalog = tfhub_catalog(7);
        let mut names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn synthetic_repository_spans_tasks_and_levels() {
        let repo = synthetic_repository(5, 0.4, 11);
        assert_eq!(repo.len(), 30);
        let tasks: std::collections::BTreeSet<_> = repo.iter().map(|m| m.task).collect();
        assert_eq!(tasks.len(), 6);
        // Levels ascend within a task's block.
        let levels: Vec<f64> = repo[..5]
            .iter()
            .map(|m| m.metadata["finetune-level"].parse::<f64>().unwrap())
            .collect();
        assert!(levels.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(levels[0], 0.0);
    }

    #[test]
    fn transfer_suite_links_downstream_models_to_base() {
        let (base, derived) = transfer_suite(13);
        assert_eq!(derived.len(), 3);
        for m in &derived {
            assert_eq!(m.metadata["base"], base.name);
            assert_ne!(m.task, base.task);
        }
    }
}
