//! Model families.
//!
//! Named architectural families mirroring the models the paper evaluates:
//! ResNet50, InceptionV3, ResNeXt101, VGG19, MobileNet (Figure 3 and
//! Table 1), AlexNet and BERT (Table 2), and the BiT / EfficientNet series
//! of the TF-Hub case study (Section 7.3). Family names carry an `-ish`
//! suffix as a reminder that these are synthetic look-alikes: same
//! structural idioms and relative cost profiles, not the original weights.

use crate::embed::{embed_model, BodyStyle, EmbedSpec};
use crate::teacher::{DatasetBias, Teacher};
use serde::{Deserialize, Serialize};
use sommelier_graph::Model;
use sommelier_tensor::Prng;
use std::fmt;

/// An architectural family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Deep residual network (ResNet).
    Resnetish,
    /// Plain very deep stack (VGG).
    Vggish,
    /// Cheap bottlenecked network (MobileNet).
    Mobilenetish,
    /// Parallel-branch network (Inception).
    Inceptionish,
    /// Grouped-branch residual network (ResNeXt).
    Resnextish,
    /// Compound-scaled residual network (EfficientNet).
    Efficientnetish,
    /// Big Transfer: very wide residual network (BiT).
    Bitish,
    /// Early convolutional network (AlexNet).
    Alexnetish,
    /// Transformer-style normalized residual network (BERT).
    Bertish,
}

impl Family {
    /// All families.
    pub const ALL: [Family; 9] = [
        Family::Resnetish,
        Family::Vggish,
        Family::Mobilenetish,
        Family::Inceptionish,
        Family::Resnextish,
        Family::Efficientnetish,
        Family::Bitish,
        Family::Alexnetish,
        Family::Bertish,
    ];

    /// The body style each family builds with.
    pub fn style(&self) -> BodyStyle {
        match self {
            Family::Resnetish | Family::Efficientnetish | Family::Bitish => BodyStyle::Residual,
            Family::Vggish => BodyStyle::Plain,
            Family::Mobilenetish => BodyStyle::Bottleneck,
            Family::Inceptionish | Family::Resnextish => BodyStyle::Branchy,
            Family::Alexnetish => BodyStyle::ConvStack,
            Family::Bertish => BodyStyle::Normalized,
        }
    }

    /// Canonical lowercase name.
    pub fn slug(&self) -> &'static str {
        match self {
            Family::Resnetish => "resnetish",
            Family::Vggish => "vggish",
            Family::Mobilenetish => "mobilenetish",
            Family::Inceptionish => "inceptionish",
            Family::Resnextish => "resnextish",
            Family::Efficientnetish => "efficientnetish",
            Family::Bitish => "bitish",
            Family::Alexnetish => "alexnetish",
            Family::Bertish => "bertish",
        }
    }

    /// Default geometry relative to the task's hidden width `h`:
    /// `(body_width_factor, depth, noise)`. Factors express each family's
    /// character: BiT is wide and deep, MobileNet narrow and shallow, etc.
    pub fn default_scale(&self) -> FamilyScale {
        match self {
            Family::Resnetish => FamilyScale::new(1.0, 6, 0.010),
            Family::Vggish => FamilyScale::new(1.0, 8, 0.012),
            Family::Mobilenetish => FamilyScale::new(0.8, 3, 0.020),
            Family::Inceptionish => FamilyScale::new(1.0, 5, 0.012),
            Family::Resnextish => FamilyScale::new(1.25, 6, 0.010),
            Family::Efficientnetish => FamilyScale::new(0.75, 5, 0.012),
            Family::Bitish => FamilyScale::new(1.5, 8, 0.008),
            Family::Alexnetish => FamilyScale::new(1.0, 4, 0.015),
            Family::Bertish => FamilyScale::new(1.0, 6, 0.010),
        }
    }

    /// Build a model of this family for the given teacher/dataset with
    /// explicit geometry.
    pub fn build_scaled(
        &self,
        name: impl Into<String>,
        teacher: &Teacher,
        bias: &DatasetBias,
        scale: &FamilyScale,
        rng: &mut Prng,
    ) -> Model {
        let spec = scale.to_embed_spec(self.style(), teacher.spec.hidden);
        let mut model = embed_model(name, teacher, bias, &spec, rng);
        model.metadata.insert("family".into(), self.slug().into());
        model
    }

    /// Build with the family's default geometry.
    pub fn build(
        &self,
        name: impl Into<String>,
        teacher: &Teacher,
        bias: &DatasetBias,
        rng: &mut Prng,
    ) -> Model {
        self.build_scaled(name, teacher, bias, &self.default_scale(), rng)
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Geometry knobs of one family instance, expressed relative to the task.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FamilyScale {
    /// Body width as a multiple of the task's hidden width.
    pub width_factor: f64,
    /// Number of body blocks.
    pub depth: usize,
    /// Private weight-noise scale.
    pub noise: f64,
}

impl FamilyScale {
    pub fn new(width_factor: f64, depth: usize, noise: f64) -> FamilyScale {
        FamilyScale {
            width_factor,
            depth,
            noise,
        }
    }

    /// Resolve against a hidden width (body width is floored at 4 and
    /// rounded to even so Branchy/Bottleneck blocks stay well-formed).
    pub fn to_embed_spec(&self, style: BodyStyle, hidden: usize) -> EmbedSpec {
        let mut w = ((hidden as f64 * self.width_factor).round() as usize).max(4);
        if w % 2 == 1 {
            w += 1;
        }
        EmbedSpec {
            style,
            body_width: w,
            depth: self.depth,
            noise: self.noise,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::cost::model_cost;
    use sommelier_graph::TaskKind;
    use sommelier_runtime::execute;
    use sommelier_runtime::metrics::top1_accuracy;
    use sommelier_tensor::Tensor;

    fn setup() -> (Teacher, DatasetBias) {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 11);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.1);
        (teacher, bias)
    }

    #[test]
    fn every_family_builds_and_predicts() {
        let (teacher, bias) = setup();
        let mut rng = Prng::seed_from_u64(1);
        let x = Tensor::gaussian(100, teacher.spec.input_width, 1.0, &mut rng);
        let labels = teacher.labels(&x);
        for family in Family::ALL {
            let mut frng = rng.fork();
            let m = family.build(format!("{family}-test"), &teacher, &bias, &mut frng);
            assert_eq!(m.metadata["family"], family.slug());
            let acc = top1_accuracy(&execute(&m, &x).unwrap(), &labels);
            assert!(acc > 0.25, "{family} collapsed: accuracy {acc}");
        }
    }

    #[test]
    fn mobilenetish_is_cheaper_than_bitish() {
        let (teacher, bias) = setup();
        let mut r1 = Prng::seed_from_u64(2);
        let mut r2 = Prng::seed_from_u64(3);
        let mobile = Family::Mobilenetish.build("m", &teacher, &bias, &mut r1);
        let bit = Family::Bitish.build("b", &teacher, &bias, &mut r2);
        let cm = model_cost(&mobile);
        let cb = model_cost(&bit);
        assert!(cb.flops > 2 * cm.flops, "BiT should dominate on FLOPs");
        assert!(cb.memory_bytes() > cm.memory_bytes());
    }

    #[test]
    fn family_scale_resolves_width() {
        let spec = FamilyScale::new(0.5, 3, 0.01).to_embed_spec(BodyStyle::Plain, 96);
        assert_eq!(spec.body_width, 48);
        assert_eq!(spec.depth, 3);
        // Odd widths round to even, tiny widths floor at 4.
        let odd = FamilyScale::new(0.33, 1, 0.0).to_embed_spec(BodyStyle::Plain, 97);
        assert_eq!(odd.body_width % 2, 0);
        let tiny = FamilyScale::new(0.001, 1, 0.0).to_embed_spec(BodyStyle::Plain, 96);
        assert!(tiny.body_width >= 4);
    }

    #[test]
    fn slugs_are_unique() {
        let mut slugs: Vec<&str> = Family::ALL.iter().map(Family::slug).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), Family::ALL.len());
    }
}
