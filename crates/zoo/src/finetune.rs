//! Fine-tuning simulation via weight perturbation.
//!
//! The paper's experiments repeatedly derive model variants by fine-tuning
//! a base model "to certain levels" (Figures 10 and 11) and by adding
//! worst-case noise to parameters (the "noisy" line of Figure 10). In this
//! reproduction a fine-tune of level `ℓ` adds zero-mean Gaussian noise of
//! relative scale `ℓ` to the weights of a chosen suffix of the linear
//! layers — layer-wise, so freezing a prefix (transfer learning's frozen
//! base) corresponds exactly to leaving those layers untouched.

use sommelier_graph::{LayerId, Model};
use sommelier_tensor::{Prng, Tensor};

/// Perturb the weights (and biases) of the given linear layers by relative
/// Gaussian noise of scale `level`. `level = 0` returns an identical
/// model. The input model is not modified.
pub fn perturb_layers(model: &Model, layers: &[LayerId], level: f64, rng: &mut Prng) -> Model {
    let mut out = model.clone();
    if level == 0.0 {
        return out;
    }
    for &id in layers {
        let layer = model.layer(id);
        let mut params = layer.params.clone();
        if let Some(w) = &params.weight {
            params.weight = Some(noised(w, level, rng));
        }
        if let Some(b) = &params.bias {
            params.bias = Some(noised(b, level, rng));
        }
        out.set_params(id, params)
            .expect("perturbation preserves shapes");
    }
    out
}

/// Perturb *all* linear layers (whole-model fine-tune of the given level).
pub fn perturb_all(model: &Model, level: f64, rng: &mut Prng) -> Model {
    perturb_layers(model, &model.linear_layers(), level, rng)
}

/// Perturb only the last `fraction` of linear layers (e.g. `0.25` retunes
/// the top quarter and keeps the base frozen), mimicking "freezing
/// different numbers of base layers" in the paper's Figure 10 setup.
/// `fraction` is clamped to `[0, 1]`.
pub fn perturb_suffix(model: &Model, fraction: f64, level: f64, rng: &mut Prng) -> Model {
    let linear = model.linear_layers();
    let f = fraction.clamp(0.0, 1.0);
    let tuned = ((linear.len() as f64) * f).round() as usize;
    let start = linear.len() - tuned;
    perturb_layers(model, &linear[start..], level, rng)
}

/// Sparse fine-tune: perturb only a `density` fraction of the elements
/// of the last `fraction` of linear layers, leaving every other element
/// (and the whole frozen prefix) bit-identical to the base. This is the
/// regime delta storage exploits — a realistic "last-layers, light
/// touch" fine-tune where most weights survive verbatim.
pub fn perturb_sparse(
    model: &Model,
    fraction: f64,
    level: f64,
    density: f64,
    rng: &mut Prng,
) -> Model {
    let mut out = model.clone();
    if level == 0.0 || density <= 0.0 {
        return out;
    }
    let linear = model.linear_layers();
    let f = fraction.clamp(0.0, 1.0);
    let tuned = ((linear.len() as f64) * f).round() as usize;
    let start = linear.len() - tuned;
    let density = density.min(1.0);
    for &id in &linear[start..] {
        let mut params = model.layer(id).params.clone();
        for slot in [&mut params.weight, &mut params.bias] {
            if let Some(t) = slot.as_mut() {
                *t = sparse_noised(t, level, density, rng);
            }
        }
        out.set_params(id, params)
            .expect("sparse perturbation preserves shapes");
    }
    out
}

/// Build a fine-tune family: the base model followed by `variants`
/// sparse fine-tunes of it, named `<base>-ft1…`, each carrying its
/// provenance in `metadata["base"]` — the hint `sommelier dedup` uses
/// to pick delta bases when migrating a flat store.
pub fn finetune_family(
    base: &Model,
    variants: usize,
    fraction: f64,
    level: f64,
    density: f64,
    rng: &mut Prng,
) -> Vec<Model> {
    let mut out = Vec::with_capacity(variants + 1);
    out.push(base.clone());
    for i in 0..variants {
        let mut v = perturb_sparse(base, fraction, level, density, rng);
        v.name = format!("{}-ft{}", base.name, i + 1);
        v.metadata.insert("base".to_string(), base.name.clone());
        out.push(v);
    }
    out
}

fn sparse_noised(t: &Tensor, level: f64, density: f64, rng: &mut Prng) -> Tensor {
    let n = t.len().max(1);
    let std = level * t.frobenius_norm() / (n as f64).sqrt();
    let mut data = t.as_slice().to_vec();
    for v in &mut data {
        if rng.flip(density) {
            *v += (rng.gaussian() * std) as f32;
        }
    }
    Tensor::from_vec(t.rows(), t.cols(), data)
}

fn noised(t: &Tensor, level: f64, rng: &mut Prng) -> Tensor {
    let n = t.len().max(1);
    let std = level * t.frobenius_norm() / (n as f64).sqrt();
    let delta = Tensor::gaussian(t.rows(), t.cols(), std, rng);
    t.zip_with(&delta, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::teacher::{DatasetBias, Teacher};
    use crate::{BodyStyle, EmbedSpec};
    use sommelier_graph::TaskKind;
    use sommelier_runtime::execute;
    use sommelier_runtime::metrics::agreement_ratio;
    use sommelier_tensor::Tensor;

    fn base_model() -> Model {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 17);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let mut rng = Prng::seed_from_u64(1);
        crate::embed::embed_model(
            "base",
            &teacher,
            &bias,
            &EmbedSpec {
                style: BodyStyle::Residual,
                body_width: 96,
                depth: 3,
                noise: 0.01,
            },
            &mut rng,
        )
    }

    #[test]
    fn zero_level_is_identity() {
        let m = base_model();
        let mut rng = Prng::seed_from_u64(2);
        let tuned = perturb_all(&m, 0.0, &mut rng);
        assert_eq!(m, tuned);
    }

    #[test]
    fn perturbation_changes_weights_not_structure() {
        let m = base_model();
        let mut rng = Prng::seed_from_u64(2);
        let tuned = perturb_all(&m, 0.1, &mut rng);
        assert_eq!(m.op_tags(), tuned.op_tags());
        assert_ne!(m, tuned);
    }

    #[test]
    fn frozen_prefix_is_untouched() {
        let m = base_model();
        let mut rng = Prng::seed_from_u64(3);
        let tuned = perturb_suffix(&m, 0.5, 0.2, &mut rng);
        let linear = m.linear_layers();
        let boundary = linear.len() - linear.len() / 2;
        for (i, &id) in linear.iter().enumerate() {
            let same = m.layer(id).params == tuned.layer(id).params;
            if i < boundary {
                assert!(same, "frozen layer {i} was modified");
            }
        }
        // At least one tuned layer differs.
        assert!(linear
            .iter()
            .any(|&id| m.layer(id).params != tuned.layer(id).params));
    }

    #[test]
    fn heavier_tuning_drifts_further() {
        let m = base_model();
        let mut rng = Prng::seed_from_u64(5);
        let x = Tensor::gaussian(200, m.input_width(), 1.0, &mut rng);
        let base_out = execute(&m, &x).unwrap();
        let agree_at = |level: f64| {
            let mut r = Prng::seed_from_u64(77);
            let tuned = perturb_all(&m, level, &mut r);
            agreement_ratio(&base_out, &execute(&tuned, &x).unwrap())
        };
        let light = agree_at(0.01);
        let heavy = agree_at(0.8);
        assert!(light > heavy, "light={light} heavy={heavy}");
        assert!(light > 0.9);
    }

    #[test]
    fn sparse_perturbation_touches_few_elements() {
        let m = base_model();
        let mut rng = Prng::seed_from_u64(9);
        let tuned = perturb_sparse(&m, 0.5, 0.1, 0.05, &mut rng);
        assert_eq!(m.op_tags(), tuned.op_tags());
        assert_ne!(m, tuned);
        let linear = m.linear_layers();
        let boundary = linear.len() - linear.len() / 2;
        let mut total = 0usize;
        let mut changed = 0usize;
        for (i, &id) in linear.iter().enumerate() {
            let before = m.layer(id).params.weight.as_ref().unwrap();
            let after = tuned.layer(id).params.weight.as_ref().unwrap();
            let diff = before
                .as_slice()
                .iter()
                .zip(after.as_slice())
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
            if i < boundary {
                assert_eq!(diff, 0, "frozen layer {i} was modified");
            } else {
                total += before.len();
                changed += diff;
            }
        }
        assert!(changed > 0);
        // ~5% density: comfortably under a quarter of the elements.
        assert!(
            (changed as f64) < (total as f64) * 0.25,
            "{changed}/{total} changed"
        );
    }

    #[test]
    fn sparse_zero_density_is_identity() {
        let m = base_model();
        let mut rng = Prng::seed_from_u64(10);
        assert_eq!(m, perturb_sparse(&m, 1.0, 0.1, 0.0, &mut rng));
        assert_eq!(m, perturb_sparse(&m, 1.0, 0.0, 0.5, &mut rng));
    }

    #[test]
    fn finetune_family_records_provenance() {
        let m = base_model();
        let mut rng = Prng::seed_from_u64(11);
        let family = finetune_family(&m, 3, 0.5, 0.05, 0.05, &mut rng);
        assert_eq!(family.len(), 4);
        assert_eq!(family[0], m);
        for (i, v) in family.iter().enumerate().skip(1) {
            assert_eq!(v.name, format!("base-ft{i}"));
            assert_eq!(v.metadata.get("base").map(String::as_str), Some("base"));
            assert_eq!(v.op_tags(), m.op_tags());
        }
    }

    #[test]
    fn suffix_fraction_clamps() {
        let m = base_model();
        let mut rng = Prng::seed_from_u64(6);
        // Out-of-range fractions behave as 0 / 1 rather than panicking.
        let all = perturb_suffix(&m, 5.0, 0.1, &mut rng);
        assert_ne!(m, all);
        let none = perturb_suffix(&m, -1.0, 0.1, &mut rng);
        assert_eq!(m, none);
    }
}
