//! Controlled defect injection for audit testing.
//!
//! A *sabotaged zoo* is a seeded, indexed repository directory with one
//! known defect planted on disk — the ground truth for the deep audit's
//! detection matrix: `sommelier audit` must find every planted defect
//! and report nothing on an unsabotaged zoo. Each [`Defect`] maps to
//! exactly one diagnostic family the audit is supposed to raise
//! ([`Defect::expected_code`]).
//!
//! Defects are planted the way real corruption arrives: by rewriting
//! the artifacts *behind the library's back* — text surgery on
//! `*.model.json` files, value surgery on `sommelier.index.json`,
//! deleting a store file — never through an API that would revalidate
//! or reindex. Victim selection is deterministic (first key in sorted
//! order), so a given `(seed, defect)` pair always produces the same
//! sabotaged repository.

use serde::Value;
use std::path::{Path, PathBuf};

/// The persisted-indices file name, mirroring the CLI's layout.
const INDEX_FILE: &str = "sommelier.index.json";

/// The binary (`.somb`) snapshot file name, mirroring the CLI's layout.
const INDEX_FILE_BIN: &str = "sommelier.index.somb";

/// One plantable defect class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Defect {
    /// A stored model's `widths` array is rewritten to disagree with
    /// the widths its operators recompute.
    ShapeBreak,
    /// A stored weight becomes `+inf` (the JSON token `1e999`, which
    /// parses to an infinity).
    NonFiniteWeights,
    /// A new model whose graph contains a subgraph with no data path to
    /// the output is published into the store.
    DeadSubgraph,
    /// A stored weight is perturbed (finite, shape-preserving) without
    /// reindexing, so the semantic index carries a stale fingerprint.
    FingerprintDrift,
    /// A model file referenced by the persisted index is deleted.
    StaleIndexEntry,
    /// A semantic-index candidate is rewritten into a `Transitive`
    /// record whose bound falls outside the triangle interval spanned
    /// by its measured `Whole` legs.
    BrokenTriangle,
    /// One byte of the binary (`.somb`) snapshot's resource slab is
    /// flipped on disk, breaking the section CRC the way a silent media
    /// tear would. A JSON-only zoo is compacted to binary first.
    BinarySnapshotTear,
    /// A live resource slot is tombstoned in the persisted index
    /// without purging the LSH buckets that reference it — the bucket
    /// id now dangles from the resource slab, the exact inconsistency a
    /// removal path that skips the LSH purge would leave behind.
    LshDanglingIds,
}

impl Defect {
    /// Every plantable defect, in a fixed order (the detection matrix).
    pub const ALL: [Defect; 8] = [
        Defect::ShapeBreak,
        Defect::NonFiniteWeights,
        Defect::DeadSubgraph,
        Defect::FingerprintDrift,
        Defect::StaleIndexEntry,
        Defect::BrokenTriangle,
        Defect::BinarySnapshotTear,
        Defect::LshDanglingIds,
    ];

    /// Stable snake-case name (test labels, bench output).
    pub fn name(self) -> &'static str {
        match self {
            Defect::ShapeBreak => "shape_break",
            Defect::NonFiniteWeights => "non_finite_weights",
            Defect::DeadSubgraph => "dead_subgraph",
            Defect::FingerprintDrift => "fingerprint_drift",
            Defect::StaleIndexEntry => "stale_index_entry",
            Defect::BrokenTriangle => "broken_triangle",
            Defect::BinarySnapshotTear => "binary_snapshot_tear",
            Defect::LshDanglingIds => "lsh_dangling_ids",
        }
    }

    /// The diagnostic code `sommelier audit` must raise for this
    /// defect. Literal `SOM` codes rather than `sommelier_lint`
    /// constants: the zoo stays independent of the lint crate, and the
    /// codes are a stable public contract.
    pub fn expected_code(self) -> &'static str {
        match self {
            Defect::ShapeBreak => "SOM080",
            Defect::NonFiniteWeights => "SOM081",
            Defect::DeadSubgraph => "SOM082",
            Defect::FingerprintDrift => "SOM090",
            Defect::StaleIndexEntry => "SOM020",
            Defect::BrokenTriangle => "SOM092",
            Defect::BinarySnapshotTear => "SOM054",
            Defect::LshDanglingIds => "SOM057",
        }
    }
}

/// Plant `defect` into the repository at `dir` (seeded and indexed).
/// Returns a human-readable description of the edit for test logs.
pub fn plant(dir: &Path, defect: Defect) -> Result<String, String> {
    match defect {
        Defect::ShapeBreak => plant_shape_break(dir),
        Defect::NonFiniteWeights => plant_non_finite_weights(dir),
        Defect::DeadSubgraph => plant_dead_subgraph(dir),
        Defect::FingerprintDrift => plant_fingerprint_drift(dir),
        Defect::StaleIndexEntry => plant_stale_index_entry(dir),
        Defect::BrokenTriangle => plant_broken_triangle(dir),
        Defect::BinarySnapshotTear => plant_binary_snapshot_tear(dir),
        Defect::LshDanglingIds => plant_lsh_dangling_ids(dir),
    }
}

/// Sorted `*.model.json` paths in `dir`.
fn model_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read '{}': {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".model.json"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no model files in '{}'", dir.display()));
    }
    Ok(files)
}

/// The deterministic sabotage victim: the first model file in sorted
/// order.
fn victim(dir: &Path) -> Result<PathBuf, String> {
    Ok(model_files(dir)?.remove(0))
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read '{}': {e}", path.display()))
}

fn write(path: &Path, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("cannot write '{}': {e}", path.display()))
}

/// Rewrite the second entry of the victim's `widths` array: the stored
/// width no longer matches the width its producer recomputes.
fn plant_shape_break(dir: &Path) -> Result<String, String> {
    let path = victim(dir)?;
    let text = read(&path)?;
    let start = text
        .find("\"widths\":[")
        .ok_or("victim model has no widths array")?
        + "\"widths\":[".len();
    let end = start + text[start..].find(']').ok_or("unterminated widths array")?;
    let mut widths: Vec<usize> = text[start..end]
        .split(',')
        .map(|t| t.trim().parse().map_err(|e| format!("bad width: {e}")))
        .collect::<Result<_, String>>()?;
    if widths.len() < 2 {
        return Err("victim model has fewer than two layers".into());
    }
    widths[1] += 1;
    let patched: Vec<String> = widths.iter().map(usize::to_string).collect();
    let text = format!("{}{}{}", &text[..start], patched.join(","), &text[end..]);
    write(&path, &text)?;
    Ok(format!(
        "bumped widths[1] to {} in '{}'",
        widths[1],
        path.display()
    ))
}

/// Replace the first token of `"data":[` in `path` with `replacement`.
/// `1e999` parses to `+inf`; any other token plants a finite drift.
fn patch_first_weight(path: &Path, replacement: &str) -> Result<String, String> {
    let text = read(path)?;
    let start = text
        .find("\"data\":[")
        .ok_or("victim model has no weight data")?
        + "\"data\":[".len();
    let end = start
        + text[start..]
            .find([',', ']'])
            .ok_or("unterminated weight data")?;
    let old = text[start..end].to_string();
    if old == replacement {
        return Err(format!("weight already equals the replacement '{old}'"));
    }
    let text = format!("{}{replacement}{}", &text[..start], &text[end..]);
    write(path, &text)?;
    Ok(old)
}

fn plant_non_finite_weights(dir: &Path) -> Result<String, String> {
    let path = victim(dir)?;
    patch_first_weight(&path, "1e999")?;
    Ok(format!(
        "replaced the first stored weight of '{}' with 1e999 (+inf)",
        path.display()
    ))
}

fn plant_fingerprint_drift(dir: &Path) -> Result<String, String> {
    let path = victim(dir)?;
    // 0.40625 is exactly representable, so the drift survives the JSON
    // round-trip bit-for-bit; it is also far from any He-initialized
    // weight, so the replacement cannot be a no-op.
    let old = patch_first_weight(&path, "0.40625")?;
    Ok(format!(
        "perturbed the first stored weight of '{}' ({old} -> 0.40625) without reindexing",
        path.display()
    ))
}

/// Publish a model whose graph carries a two-layer chain with no data
/// path to the output. `ModelBuilder` permits the construction (only
/// the shape algebra is validated at build time), and the store accepts
/// any well-formed artifact.
fn plant_dead_subgraph(dir: &Path) -> Result<String, String> {
    use sommelier_graph::{serde_model, ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};
    model_files(dir)?; // only an existing zoo can be sabotaged
    let mut rng = Prng::seed_from_u64(0xdead);
    let mut b = ModelBuilder::new("sabotage-dead", TaskKind::Other, Shape::vector(8));
    b.dense(8, &mut rng);
    let trunk = b.cursor();
    b.relu();
    let live = b.cursor();
    b.goto(trunk);
    b.dense(4, &mut rng);
    b.relu(); // dead: nothing consumes this chain
    b.goto(live);
    b.dense(3, &mut rng);
    b.softmax();
    let model = b.build().map_err(|e| e.to_string())?;
    let path = dir.join("sabotage-dead.model.json");
    serde_model::save(&model, &path).map_err(|e| e.to_string())?;
    Ok(format!(
        "published '{}' with an unreachable two-layer chain",
        path.display()
    ))
}

fn plant_stale_index_entry(dir: &Path) -> Result<String, String> {
    let path = victim(dir)?;
    if !dir.join(INDEX_FILE).exists() {
        return Err(format!("'{}' has no persisted index to go stale", dir.display()));
    }
    std::fs::remove_file(&path).map_err(|e| format!("cannot delete '{}': {e}", path.display()))?;
    Ok(format!(
        "deleted '{}' out from under the persisted index",
        path.display()
    ))
}

/// Rewrite one measured `Whole` candidate into a `Transitive` record
/// whose bound (7.5) cannot lie inside any triangle interval its legs
/// span (diffs are capped near 1, so `hi * slack` stays far below it).
fn plant_broken_triangle(dir: &Path) -> Result<String, String> {
    let path = dir.join(INDEX_FILE);
    let mut root: Value = serde_json::from_str(&read(&path)?)
        .map_err(|e| format!("cannot parse '{}': {e}", path.display()))?;
    let description = {
        let entries = field_mut(&mut root, "semantic")
            .and_then(|s| field_mut(s, "entries"))
            .ok_or("index has no semantic entries")?;
        let Value::Map(entries) = entries else {
            return Err("semantic entries are not a map".into());
        };
        let mut planted = None;
        'entries: for (_, entry) in entries.iter_mut() {
            let owner = match entry.get_field("key") {
                Some(Value::Str(k)) => k.clone(),
                _ => continue,
            };
            let Some(Value::Seq(candidates)) = field_mut(entry, "candidates") else {
                continue;
            };
            // Two measured Whole records: the first becomes the forged
            // Transitive record, the second donates its key as the via.
            let whole: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    matches!(c.get_field("kind"), Some(Value::Str(k)) if k == "Whole")
                })
                .map(|(i, _)| i)
                .collect();
            if whole.len() < 2 {
                continue;
            }
            let via = match candidates[whole[1]].get_field("key") {
                Some(Value::Str(k)) => k.clone(),
                _ => continue,
            };
            let forged = &mut candidates[whole[0]];
            let target = match forged.get_field("key") {
                Some(Value::Str(k)) => k.clone(),
                _ => continue,
            };
            set_field(forged, "diff_bound", Value::Float(7.5));
            set_field(forged, "score", Value::Float(0.0));
            set_field(
                forged,
                "kind",
                Value::Map(vec![(
                    "Transitive".into(),
                    Value::Map(vec![("via".into(), Value::Str(via.clone()))]),
                )]),
            );
            planted = Some(format!(
                "forged '{owner}' -> '{target}' via '{via}' with bound 7.5"
            ));
            break 'entries;
        }
        planted.ok_or("no entry with two Whole candidates to forge")?
    };
    let text = serde_json::to_string(&root).map_err(|e| e.to_string())?;
    write(&path, &text)?;
    Ok(description)
}

/// Flip one byte of the binary snapshot's resource slab on disk. A
/// JSON-only zoo is compacted to `.somb` first (re-encoding the
/// snapshot verbatim, the way `sommelier compact` does), so the defect
/// always lands on a real binary image. The flip happens behind the
/// library's back with a plain `std::fs::write` — no CRC re-stamping —
/// so the slab section's stored CRC no longer matches its bytes.
fn plant_binary_snapshot_tear(dir: &Path) -> Result<String, String> {
    use sommelier_index::{persist, somb};
    model_files(dir)?; // only an existing zoo can be sabotaged
    let bin = dir.join(INDEX_FILE_BIN);
    if !bin.exists() {
        let json = dir.join(INDEX_FILE);
        if !json.exists() {
            return Err(format!("'{}' has no persisted index to tear", dir.display()));
        }
        let snapshot = persist::read_snapshot(&json)
            .map_err(|e| format!("cannot load '{}': {e}", json.display()))?;
        let image = somb::encode(&snapshot.semantic, &snapshot.resource, snapshot.stats.as_ref());
        write_bytes(&bin, &image)?;
        std::fs::remove_file(&json)
            .map_err(|e| format!("cannot remove '{}': {e}", json.display()))?;
    }
    let mut bytes = std::fs::read(&bin)
        .map_err(|e| format!("cannot read '{}': {e}", bin.display()))?;
    let header = somb::validate_header(&bytes)
        .map_err(|e| format!("'{}' is not an intact binary snapshot: {e}", bin.display()))?;
    let slab = somb::SECTION_NAMES
        .iter()
        .position(|n| *n == "slab")
        .expect("slab section is part of the format");
    let (off, len) = header.sections[slab];
    // An empty slab (no resource rows) leaves nothing thematic to hit;
    // flip the image's last byte instead — still a section tear.
    let target = if len > 0 { off + len / 2 } else { bytes.len() - 1 };
    bytes[target] ^= 0x40;
    write_bytes(&bin, &bytes)?;
    Ok(format!(
        "flipped byte {target} of '{}' inside the {} section",
        bin.display(),
        if len > 0 { "slab" } else { "final" }
    ))
}

/// Tombstone the first resource slot in the persisted index without
/// purging the LSH buckets that still reference it. Incremental
/// maintenance purges bucket ids eagerly at removal time, so a
/// surviving id over a tombstoned slot is exactly what a buggy (or
/// interrupted) removal path leaves behind — `SOM057`.
fn plant_lsh_dangling_ids(dir: &Path) -> Result<String, String> {
    let path = dir.join(INDEX_FILE);
    if !path.exists() {
        return Err(format!("'{}' has no persisted index to sabotage", dir.display()));
    }
    let mut root: Value = serde_json::from_str(&read(&path)?)
        .map_err(|e| format!("cannot parse '{}': {e}", path.display()))?;
    let description = {
        let resource =
            field_mut(&mut root, "resource").ok_or("index has no resource section")?;
        let key = match resource.get_field("entries") {
            Some(Value::Seq(entries)) if !entries.is_empty() => match &entries[0] {
                Value::Seq(pair) => match pair.first() {
                    Some(Value::Str(k)) => k.clone(),
                    _ => return Err("resource entry 0 has no key".into()),
                },
                _ => return Err("resource entries are not key/profile pairs".into()),
            },
            _ => return Err("resource index has no entries".into()),
        };
        let Some(Value::Seq(removed)) = field_mut(resource, "removed") else {
            return Err("resource index has no removed flags".into());
        };
        if removed.is_empty() {
            return Err("resource index has no slots to tombstone".into());
        }
        removed[0] = Value::Bool(true);
        format!("tombstoned resource slot 0 ('{key}') while LSH buckets still reference it")
    };
    let text = serde_json::to_string(&root).map_err(|e| e.to_string())?;
    write(&path, &text)?;
    Ok(description)
}

fn write_bytes(path: &Path, bytes: &[u8]) -> Result<(), String> {
    std::fs::write(path, bytes).map_err(|e| format!("cannot write '{}': {e}", path.display()))
}

fn field_mut<'a>(v: &'a mut Value, key: &str) -> Option<&'a mut Value> {
    match v {
        Value::Map(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn set_field(v: &mut Value, key: &str, value: Value) {
    if let Some(slot) = field_mut(v, key) {
        *slot = value;
    } else if let Value::Map(pairs) = v {
        pairs.push((key.to_string(), value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defect_names_and_codes_are_distinct() {
        let names: std::collections::BTreeSet<_> =
            Defect::ALL.iter().map(|d| d.name()).collect();
        let codes: std::collections::BTreeSet<_> =
            Defect::ALL.iter().map(|d| d.expected_code()).collect();
        assert_eq!(names.len(), Defect::ALL.len());
        assert_eq!(codes.len(), Defect::ALL.len());
        for code in codes {
            assert!(code.starts_with("SOM") && code.len() == 6, "{code}");
        }
    }

    #[test]
    fn planting_in_an_empty_dir_fails_cleanly() {
        let dir = std::env::temp_dir().join("sommelier-sabotage-empty");
        std::fs::create_dir_all(&dir).unwrap();
        for defect in Defect::ALL {
            assert!(plant(&dir, defect).is_err(), "{defect:?} should fail");
        }
    }
}
