//! Synthetic model hub — the reproduction's stand-in for TF-Hub.
//!
//! The paper evaluates Sommelier on (i) a synthetic repository of 200+
//! models transferred from six pre-trained bases, and (ii) 163 real TF-Hub
//! models from 30 series (Section 7). Real pre-trained weights are not
//! loadable here, so this crate manufactures models whose *functional
//! relationships* mirror the real ecosystem's:
//!
//! * every task has a hidden ground-truth [`teacher`] function;
//! * every dataset carries a shared *consensus bias* — the systematic
//!   deviation all models trained on that data inherit. This reproduces
//!   the paper's Figure 3 observation that distinct models agree with each
//!   other more than with the ground truth;
//! * a model of a given *family* ([`families`]) embeds the consensus
//!   function inside a family-specific near-identity body ([`embed`]) with
//!   a controllable fidelity knob, so accuracy degrades smoothly with the
//!   body's width, depth, and noise — the size/accuracy tradeoff of
//!   BiT/EfficientNet-style series;
//! * [`transfer`] derives downstream-task models that share base segments
//!   with their origin (the scenario of paper Section 4.2), and
//!   [`finetune`] perturbs weights to emulate tuning levels;
//! * [`series`] assembles TF-Hub-style catalogs: 30 series / 163 models,
//!   plus the 200-model synthetic repository of Figure 9(a).

pub mod dataset;
pub mod embed;
pub mod families;
pub mod finetune;
pub mod sabotage;
pub mod series;
pub mod teacher;
pub mod transfer;

pub use dataset::Dataset;
pub use embed::{BodyStyle, EmbedSpec};
pub use families::Family;
pub use teacher::{DatasetBias, TaskSpec, Teacher};
