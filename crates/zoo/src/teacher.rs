//! Ground-truth teacher functions and dataset consensus biases.
//!
//! Each inference task is defined by a hidden *teacher*: a fixed two-layer
//! random network `T(x) = relu(x·W₁)·W₂` that supplies ground-truth labels
//! (classification: arg-max of `T(x)`) or targets (regression: `T(x)`
//! itself). A teacher plays the role ImageNet/SQuAD annotations play in
//! the paper: the unknowable function every model approximates.
//!
//! Models never see the teacher exactly. Everything "trained on" a given
//! dataset inherits that dataset's [`DatasetBias`] — a shared perturbation
//! of the teacher's weights. This shared systematic error is what makes
//! distinct models agree with one another more than with the ground truth
//! (paper Figure 3 / Section 3.2: "the common training data … generate
//! implicit correlation between feature extraction in distinct DNNs").

use serde::{Deserialize, Serialize};
use sommelier_graph::task::OutputStyle;
use sommelier_graph::TaskKind;
use sommelier_tensor::{ops, Prng, Tensor};

/// Dimensional contract of a task: what its models consume and produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task category.
    pub task: TaskKind,
    /// Flattened input width.
    pub input_width: usize,
    /// Hidden feature width shared by the teacher and all embedded models.
    pub hidden: usize,
    /// Output width (class count, or regression vector width).
    pub output_width: usize,
}

impl TaskSpec {
    /// The default specs used throughout the evaluation, one per paper
    /// task category. Widths are chosen so experiments run in seconds while
    /// keeping realistic proportions (inputs ≫ hidden ≫ output).
    pub fn default_for(task: TaskKind) -> TaskSpec {
        let (input_width, hidden, output_width) = match task {
            TaskKind::ImageRecognition => (192, 96, 48),
            TaskKind::ObjectDetection => (192, 96, 24),
            TaskKind::SemanticSegmentation => (192, 96, 64),
            TaskKind::SentimentAnalysis => (128, 64, 8),
            TaskKind::QuestionAnswering => (160, 80, 32),
            TaskKind::NamedEntityRecognition => (128, 64, 16),
            TaskKind::Other => (64, 32, 8),
        };
        TaskSpec {
            task,
            input_width,
            hidden,
            output_width,
        }
    }

    /// Output style inherited from the task.
    pub fn output_style(&self) -> OutputStyle {
        self.task.output_style()
    }
}

/// The hidden ground-truth function of a task.
#[derive(Clone, Debug)]
pub struct Teacher {
    /// Dimensional contract.
    pub spec: TaskSpec,
    /// First-layer weights `[input, hidden]`.
    pub w1: Tensor,
    /// Readout weights `[hidden, output]`.
    pub w2: Tensor,
}

impl Teacher {
    /// Exponent of the feature-importance decay: hidden feature `j` is
    /// scaled by `(j+1)^(-DECAY)`. Trained networks concentrate
    /// information in a low-dimensional leading subspace (their feature
    /// spectra decay); without this, truncating a quarter of the features
    /// would flip most arg-max decisions and no two differently-sized
    /// models would ever agree the way paper Figure 3 observes.
    pub const FEATURE_DECAY: f64 = 0.85;

    /// Deterministically derive the teacher for a task from a seed.
    pub fn new(spec: TaskSpec, seed: u64) -> Teacher {
        let mut rng = Prng::seed_from_u64(seed ^ 0x7eac_4e2d);
        let base_std = (2.0 / spec.input_width as f64).sqrt();
        let mut w1 = Tensor::gaussian(spec.input_width, spec.hidden, base_std, &mut rng);
        // Impose the decaying importance spectrum column-wise.
        for r in 0..w1.rows() {
            let row = w1.row_mut(r);
            for (j, v) in row.iter_mut().enumerate() {
                *v *= ((j + 1) as f32).powf(-(Self::FEATURE_DECAY as f32));
            }
        }
        let w2 = Tensor::gaussian(
            spec.hidden,
            spec.output_width,
            (2.0 / spec.hidden as f64).sqrt(),
            &mut rng,
        );
        Teacher { spec, w1, w2 }
    }

    /// Teacher with the default spec for a task.
    pub fn for_task(task: TaskKind, seed: u64) -> Teacher {
        Teacher::new(TaskSpec::default_for(task), seed)
    }

    /// Raw teacher outputs `relu(x·W₁)·W₂`.
    pub fn outputs(&self, x: &Tensor) -> Tensor {
        let h = ops::relu(&ops::matmul(x, &self.w1));
        ops::matmul(&h, &self.w2)
    }

    /// Ground-truth class labels (arg-max of the outputs).
    pub fn labels(&self, x: &Tensor) -> Vec<usize> {
        let out = self.outputs(x);
        (0..out.rows()).map(|r| out.argmax_row(r)).collect()
    }
}

/// The shared systematic deviation a dataset imparts to every model
/// trained on it.
#[derive(Clone, Debug)]
pub struct DatasetBias {
    /// Additive perturbation to the teacher's `W₁`.
    pub d1: Tensor,
    /// Additive perturbation to the teacher's `W₂`.
    pub d2: Tensor,
    /// Scale of the bias relative to the weight magnitudes.
    pub strength: f64,
}

impl DatasetBias {
    /// Derive a dataset's bias deterministically from its name.
    pub fn new(teacher: &Teacher, dataset_name: &str, strength: f64) -> DatasetBias {
        let mut h: u64 = 0xda7a_b1a5;
        for b in dataset_name.bytes() {
            h = h.wrapping_mul(0x100000001b3).wrapping_add(u64::from(b));
        }
        let mut rng = Prng::seed_from_u64(h);
        let spec = teacher.spec;
        let s1 = strength * (2.0 / spec.input_width as f64).sqrt();
        let s2 = strength * (2.0 / spec.hidden as f64).sqrt();
        let mut d1 = Tensor::gaussian(spec.input_width, spec.hidden, s1, &mut rng);
        // The bias perturbs each feature proportionally to its importance
        // (same decaying spectrum as the teacher), so "training bias" is a
        // relative, not absolute, distortion.
        for r in 0..d1.rows() {
            let row = d1.row_mut(r);
            for (j, v) in row.iter_mut().enumerate() {
                *v *= ((j + 1) as f32).powf(-(Teacher::FEATURE_DECAY as f32));
            }
        }
        DatasetBias {
            d1,
            d2: Tensor::gaussian(spec.hidden, spec.output_width, s2, &mut rng),
            strength,
        }
    }

    /// The consensus weights: teacher weights with this dataset's shared
    /// deviation applied. Every model trained on the dataset embeds these
    /// (plus its own private noise).
    pub fn consensus(&self, teacher: &Teacher) -> (Tensor, Tensor) {
        (
            teacher.w1.zip_with(&self.d1, |w, d| w + d),
            teacher.w2.zip_with(&self.d2, |w, d| w + d),
        )
    }

    /// Stack another bias on top of this one (deviations add). Used to
    /// layer a *series identity* over a dataset bias: members of one
    /// model series share a common basis and training recipe, so they
    /// deviate from the dataset consensus together — which is what makes
    /// intra-series models more interchangeable than cross-series ones.
    pub fn compose(&self, other: &DatasetBias) -> DatasetBias {
        DatasetBias {
            d1: self.d1.zip_with(&other.d1, |a, b| a + b),
            d2: self.d2.zip_with(&other.d2, |a, b| a + b),
            strength: self.strength + other.strength,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teacher_is_deterministic_per_seed() {
        let a = Teacher::for_task(TaskKind::ImageRecognition, 1);
        let b = Teacher::for_task(TaskKind::ImageRecognition, 1);
        assert_eq!(a.w1, b.w1);
        let c = Teacher::for_task(TaskKind::ImageRecognition, 2);
        assert_ne!(a.w1, c.w1);
    }

    #[test]
    fn labels_are_argmax_of_outputs() {
        let t = Teacher::for_task(TaskKind::SentimentAnalysis, 3);
        let mut rng = Prng::seed_from_u64(4);
        let x = Tensor::gaussian(10, t.spec.input_width, 1.0, &mut rng);
        let out = t.outputs(&x);
        let labels = t.labels(&x);
        for (r, &l) in labels.iter().enumerate() {
            assert_eq!(out.argmax_row(r), l);
            assert!(l < t.spec.output_width);
        }
    }

    #[test]
    fn dataset_bias_is_stable_per_name() {
        let t = Teacher::for_task(TaskKind::ImageRecognition, 1);
        let a = DatasetBias::new(&t, "imagenet", 0.1);
        let b = DatasetBias::new(&t, "imagenet", 0.1);
        let c = DatasetBias::new(&t, "caltech256", 0.1);
        assert_eq!(a.d1, b.d1);
        assert_ne!(a.d1, c.d1);
    }

    #[test]
    fn consensus_shifts_teacher_weights() {
        let t = Teacher::for_task(TaskKind::ImageRecognition, 1);
        let bias = DatasetBias::new(&t, "imagenet", 0.2);
        let (w1c, _) = bias.consensus(&t);
        assert_ne!(w1c, t.w1);
        // Zero-strength bias is exactly the teacher.
        let zero = DatasetBias::new(&t, "imagenet", 0.0);
        let (w1z, w2z) = zero.consensus(&t);
        assert_eq!(w1z, t.w1);
        assert_eq!(w2z, t.w2);
    }

    #[test]
    fn stronger_bias_lowers_consensus_accuracy() {
        // Accuracy of the consensus function against teacher labels must
        // decrease as the dataset bias grows — this is the control knob
        // for the Figure 3 phenomenon.
        let t = Teacher::for_task(TaskKind::ImageRecognition, 1);
        let mut rng = Prng::seed_from_u64(9);
        let x = Tensor::gaussian(400, t.spec.input_width, 1.0, &mut rng);
        let labels = t.labels(&x);
        let acc_at = |strength: f64| {
            let bias = DatasetBias::new(&t, "imagenet", strength);
            let (w1, w2) = bias.consensus(&t);
            let out = ops::matmul(&ops::relu(&ops::matmul(&x, &w1)), &w2);
            sommelier_runtime::metrics::top1_accuracy(&out, &labels)
        };
        let high = acc_at(0.0);
        let mid = acc_at(0.3);
        let low = acc_at(1.0);
        assert_eq!(high, 1.0);
        assert!(mid < 1.0 && mid > low, "mid={mid} low={low}");
    }

    #[test]
    fn default_specs_have_sane_proportions() {
        for task in TaskKind::ALL {
            let s = TaskSpec::default_for(task);
            assert!(s.input_width >= s.hidden);
            assert!(s.hidden >= s.output_width);
        }
    }
}
