//! Property-based tests over the model-embedding machinery: every body
//! style must produce valid, finite, reasonably faithful models across
//! random geometry and noise settings.

use proptest::prelude::*;
use sommelier_graph::TaskKind;
use sommelier_runtime::execute;
use sommelier_runtime::metrics::top1_accuracy;
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::embed::{embed_model, BodyStyle, EmbedSpec};
use sommelier_zoo::teacher::{DatasetBias, Teacher};

fn style_strategy() -> impl Strategy<Value = BodyStyle> {
    proptest::sample::select(vec![
        BodyStyle::Residual,
        BodyStyle::Plain,
        BodyStyle::Bottleneck,
        BodyStyle::Branchy,
        BodyStyle::Normalized,
        BodyStyle::ConvStack,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_style_and_geometry_yields_finite_outputs(
        style in style_strategy(),
        width_steps in 1usize..6,   // body width 32..160 in steps of 32
        depth in 1usize..5,
        noise in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 5);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.1);
        let spec = EmbedSpec {
            style,
            body_width: 32 * width_steps,
            depth,
            noise,
        };
        let mut rng = Prng::seed_from_u64(seed);
        let model = embed_model("prop", &teacher, &bias, &spec, &mut rng);
        prop_assert_eq!(model.input_width(), teacher.spec.input_width);
        prop_assert_eq!(model.output_width(), teacher.spec.output_width);

        let mut xrng = Prng::seed_from_u64(seed ^ 1);
        let x = Tensor::gaussian(8, model.input_width(), 1.0, &mut xrng);
        let out = execute(&model, &x).expect("embedded models execute");
        prop_assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn low_noise_full_width_models_beat_chance_everywhere(
        style in style_strategy(),
        seed in any::<u64>(),
    ) {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 5);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let spec = EmbedSpec {
            style,
            body_width: 96,
            depth: 2,
            noise: 0.01,
        };
        let mut rng = Prng::seed_from_u64(seed);
        let model = embed_model("prop", &teacher, &bias, &spec, &mut rng);
        let mut xrng = Prng::seed_from_u64(seed ^ 2);
        let x = Tensor::gaussian(150, model.input_width(), 1.0, &mut xrng);
        let labels = teacher.labels(&x);
        let acc = top1_accuracy(&execute(&model, &x).expect("runs"), &labels);
        // 48 classes → chance ≈ 2%. Any functioning embedding clears 25%.
        prop_assert!(acc > 0.25, "style {:?} collapsed: accuracy {}", style, acc);
    }
}
