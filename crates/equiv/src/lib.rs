//! Functional-equivalence assessment between DNN models and segments.
//!
//! This crate implements Section 4 of the paper — the algorithmic core of
//! Sommelier:
//!
//! * [`iocheck`] — the fast input/output "type check" that filters out
//!   incomparable models before any execution (Section 4.1);
//! * [`genbound`] — the generalization error bound that turns a
//!   dataset-*dependent* empirical QoR difference into a
//!   dataset-*independent* bound (the Arora-et-al-style compression bound
//!   the paper cites);
//! * [`whole`] — whole-model equivalence: empirical QoR difference on a
//!   validation set, refined by the generalization bound and compared to
//!   the threshold ε (Section 4.1);
//! * [`segment`] — extraction of structurally identical model segments via
//!   longest-common-operator-sequence matching in `O(N²)` (Section 4.2,
//!   Figure 4);
//! * [`propagation`] — the inductive layer-wise output-difference bound:
//!   linear operators scale errors by their largest singular value,
//!   activations/pooling are non-expansive, normalization rescales
//!   (Section 4.2);
//! * [`assessment`] — completing the segment analysis: noise-injected
//!   twin-model QoR estimation with progressive segment removal
//!   (Section 4.2, steps i–iii), plus actual segment replacement surgery;
//! * [`modeldiff`] — the ModelDiff baseline (testing-based cosine
//!   similarity over decision distance vectors) compared against in
//!   Section 7.2 / Figure 11;
//! * [`paircache`] — a concurrency-safe memoized cache of pairwise
//!   analysis results, so reindexing and repeated queries never recompute
//!   an equivalence bound.

pub mod assessment;
pub mod explain;
pub mod genbound;
pub mod iocheck;
pub mod modeldiff;
pub mod paircache;
pub mod propagation;
pub mod segment;
pub mod whole;

pub use explain::{explain, Explanation};
pub use paircache::{CacheStats, PairKey, PairKind, PairwiseCache};
pub use genbound::GenBoundConfig;
pub use iocheck::{check_io, IoCompat};
pub use segment::MatchedSegment;
pub use whole::{assess_whole, EquivConfig, WholeModelReport};
