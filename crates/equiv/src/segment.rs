//! Extraction of structurally identical model segments (paper Section 4.2).
//!
//! Optimal common-subgraph detection is NP-hard, so Sommelier exploits the
//! mostly sequential structure of DNNs: decompose each DAG into maximal
//! operator chains (`sommelier-graph::chains`, the recursive extraction of
//! Figure 4), then find the longest common *contiguous* operator runs
//! between the two chain sets with an `O(N²)` dynamic program. A match
//! must be layer-wise structurally identical — operator type, geometry,
//! and tensor widths — and contain at least one parameter-carrying layer
//! (otherwise replacement is a no-op).

use sommelier_graph::chains::extract_chains;
use sommelier_graph::{LayerId, Model, OpKind};
use serde::{Deserialize, Serialize};

/// Longest segment reported as a single match; longer common runs are
/// split into consecutive pieces of at most this many layers.
pub const MAX_SEGMENT_LEN: usize = 6;

/// A pair of structurally identical segments: `host_layers` in the host
/// model and `donor_layers` in the donor model, position-aligned.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchedSegment {
    /// Layers of the segment within the host model, in execution order.
    pub host_layers: Vec<LayerId>,
    /// The donor model's counterpart layers, position-aligned with
    /// `host_layers`.
    pub donor_layers: Vec<LayerId>,
}

impl MatchedSegment {
    /// Number of layers in the segment.
    pub fn len(&self) -> usize {
        self.host_layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.host_layers.is_empty()
    }

    /// Total FLOPs of the host-side segment — the "computational
    /// complexity" ordering used when progressively removing segments
    /// (Section 4.2, step iii).
    pub fn host_flops(&self, host: &Model) -> u64 {
        self.host_layers
            .iter()
            .map(|&id| sommelier_graph::cost::layer_cost_in(host, id).flops)
            .sum()
    }

    /// The last (output) layer of the host-side segment.
    pub fn host_tail(&self) -> LayerId {
        *self.host_layers.last().expect("segments are non-empty")
    }

    /// The first layer of the host-side segment.
    pub fn host_head(&self) -> LayerId {
        *self.host_layers.first().expect("segments are non-empty")
    }
}

/// Whether two layers are structurally identical in their model contexts:
/// same operator tag (type + geometry) and same input/output widths.
fn layers_match(a: &Model, ida: LayerId, b: &Model, idb: LayerId) -> bool {
    let la = a.layer(ida);
    let lb = b.layer(idb);
    if la.op.type_tag() != lb.op.type_tag() {
        return false;
    }
    if a.width_of(ida) != b.width_of(idb) {
        return false;
    }
    let wa: Vec<usize> = la.inputs.iter().map(|i| a.width_of(*i)).collect();
    let wb: Vec<usize> = lb.inputs.iter().map(|i| b.width_of(*i)).collect();
    wa == wb
}

/// Find structurally identical segments between `host` and `donor`.
///
/// Returns non-overlapping matches (greedy longest-first on both sides) of
/// at least `min_len` layers containing at least one linear layer, sorted
/// by descending length.
pub fn find_matched_segments(host: &Model, donor: &Model, min_len: usize) -> Vec<MatchedSegment> {
    let host_chains = extract_chains(host, 1);
    let donor_chains = extract_chains(donor, 1);

    // All maximal common runs across all chain pairs.
    let mut candidates: Vec<MatchedSegment> = Vec::new();
    for hc in &host_chains {
        for dc in &donor_chains {
            // O(|hc|·|dc|) DP over common-suffix lengths.
            let n = hc.layers.len();
            let m = dc.layers.len();
            let mut run = vec![vec![0usize; m + 1]; n + 1];
            for i in 1..=n {
                for j in 1..=m {
                    if layers_match(host, hc.layers[i - 1], donor, dc.layers[j - 1]) {
                        run[i][j] = run[i - 1][j - 1] + 1;
                    }
                }
            }
            // Collect maximal runs (cells whose run is not extended).
            for i in 1..=n {
                for j in 1..=m {
                    let len = run[i][j];
                    if len == 0 {
                        continue;
                    }
                    let extends = i < n && j < m && run[i + 1][j + 1] > len;
                    if extends || len < min_len {
                        continue;
                    }
                    // Long runs are split into pieces of at most
                    // MAX_SEGMENT_LEN so the progressive segment-removal
                    // refinement (Section 4.2 step iii) has granularity —
                    // a fully sequential model would otherwise match as
                    // one monolithic all-or-nothing segment.
                    let mut start = 0usize;
                    while start < len {
                        let piece = (len - start).min(MAX_SEGMENT_LEN);
                        if piece < min_len && start > 0 {
                            break; // leftover shorter than min_len
                        }
                        let host_layers: Vec<LayerId> =
                            hc.layers[i - len + start..i - len + start + piece].to_vec();
                        let donor_layers: Vec<LayerId> =
                            dc.layers[j - len + start..j - len + start + piece].to_vec();
                        let has_linear = host_layers
                            .iter()
                            .any(|&id| host.layer(id).op.kind() == OpKind::Linear);
                        if has_linear {
                            candidates.push(MatchedSegment {
                                host_layers,
                                donor_layers,
                            });
                        }
                        start += piece;
                    }
                }
            }
        }
    }

    // Greedy longest-first selection of non-overlapping segments (each
    // layer of either model belongs to at most one accepted match).
    candidates.sort_by(|a, b| {
        b.len()
            .cmp(&a.len())
            .then_with(|| a.host_layers[0].cmp(&b.host_layers[0]))
            .then_with(|| a.donor_layers[0].cmp(&b.donor_layers[0]))
    });
    let mut host_used = vec![false; host.num_layers()];
    let mut donor_used = vec![false; donor.num_layers()];
    let mut accepted = Vec::new();
    for cand in candidates {
        let clash = cand
            .host_layers
            .iter()
            .any(|id| host_used[id.index()])
            || cand
                .donor_layers
                .iter()
                .any(|id| donor_used[id.index()]);
        if clash {
            continue;
        }
        for id in &cand.host_layers {
            host_used[id.index()] = true;
        }
        for id in &cand.donor_layers {
            donor_used[id.index()] = true;
        }
        accepted.push(cand);
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn rng(seed: u64) -> Prng {
        Prng::seed_from_u64(seed)
    }

    fn mlp(widths: &[usize], input: usize, seed: u64) -> Model {
        let mut r = rng(seed);
        let mut b = ModelBuilder::new("m", TaskKind::Other, Shape::vector(input));
        for &w in widths {
            b.dense(w, &mut r).relu();
        }
        b.build().unwrap()
    }

    #[test]
    fn identical_structures_match_fully() {
        let a = mlp(&[16, 16, 8], 32, 1);
        let b = mlp(&[16, 16, 8], 32, 2); // same shape, different weights
        let segs = find_matched_segments(&a, &b, 2);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len(), 6); // 3 × (dense, relu)
    }

    #[test]
    fn partial_overlap_matches_common_prefix() {
        let a = mlp(&[16, 16, 8], 32, 1);
        let b = mlp(&[16, 16, 4], 32, 2); // diverges at the last dense
        let segs = find_matched_segments(&a, &b, 2);
        assert_eq!(segs.len(), 1);
        // dense16, relu, dense16, relu (+ trailing relu of dense:4? no —
        // the dense:8 vs dense:4 tags differ, and the final relus differ
        // in width).
        assert_eq!(segs[0].len(), 4);
    }

    #[test]
    fn width_mismatch_blocks_matching() {
        let a = mlp(&[16, 8], 32, 1);
        let b = mlp(&[12, 8], 32, 2);
        let segs = find_matched_segments(&a, &b, 2);
        // dense:8+relu in b is fed by width 12, in a by width 16 → the
        // dense tag "dense:8" matches but input widths differ.
        assert!(segs.is_empty(), "{segs:?}");
    }

    #[test]
    fn pure_activation_runs_are_ignored() {
        let mut ra = rng(1);
        let mut rb = rng(2);
        let a = ModelBuilder::new("a", TaskKind::Other, Shape::vector(8))
            .dense(8, &mut ra)
            .relu()
            .tanh()
            .build()
            .unwrap();
        let b = ModelBuilder::new("b", TaskKind::Other, Shape::vector(8))
            .dense(4, &mut rb) // different linear layer
            .relu()
            .tanh()
            .build()
            .unwrap();
        // relu+tanh alone carries no parameters → no useful match.
        let segs = find_matched_segments(&a, &b, 2);
        assert!(segs.is_empty());
    }

    #[test]
    fn residual_models_match_block_wise() {
        let build = |seed: u64| {
            let mut r = rng(seed);
            ModelBuilder::new("m", TaskKind::Other, Shape::vector(16))
                .residual_block(&mut r)
                .residual_block(&mut r)
                .build()
                .unwrap()
        };
        let a = build(1);
        let b = build(2);
        let segs = find_matched_segments(&a, &b, 2);
        assert!(!segs.is_empty());
        // Every match must be non-overlapping within each model.
        let mut seen = std::collections::BTreeSet::new();
        for s in &segs {
            for id in &s.host_layers {
                assert!(seen.insert(id.index()));
            }
        }
    }

    #[test]
    fn matches_are_position_aligned() {
        let a = mlp(&[16, 8], 32, 1);
        let b = mlp(&[16, 8], 32, 2);
        let segs = find_matched_segments(&a, &b, 2);
        for s in &segs {
            assert_eq!(s.host_layers.len(), s.donor_layers.len());
            for (ha, hb) in s.host_layers.iter().zip(&s.donor_layers) {
                assert_eq!(
                    a.layer(*ha).op.type_tag(),
                    b.layer(*hb).op.type_tag()
                );
            }
        }
    }

    #[test]
    fn min_len_is_respected() {
        let a = mlp(&[16], 32, 1);
        let b = mlp(&[16], 32, 2);
        assert!(!find_matched_segments(&a, &b, 2).is_empty()); // dense+relu = 2
        assert!(find_matched_segments(&a, &b, 3).is_empty());
    }

    #[test]
    fn recurrent_cells_match_as_segments() {
        // "Each recurrent operator itself can be treated as a model
        // segment" (paper Section 4.2): two unrolled RNNs with the same
        // geometry but different weights share matched segments covering
        // their cells.
        let build = |seed: u64| {
            let mut r = rng(seed);
            ModelBuilder::new("rnn", TaskKind::Other, Shape::vector(8))
                .unrolled_rnn(2, &mut r)
                .build()
                .unwrap()
        };
        let a = build(1);
        let b = build(2);
        let segs = find_matched_segments(&a, &b, 2);
        assert!(!segs.is_empty(), "recurrent compositions must match");
        // The matched cell segment spans the recurrent composition's core
        // (the add → tanh → dense chain of the cell) and carries weights.
        let covered: usize = segs.iter().map(MatchedSegment::len).sum();
        assert!(covered >= 3, "cells should be covered, got {covered}");
        assert!(segs.iter().any(|s| s
            .host_layers
            .iter()
            .any(|id| a.layer(*id).op.has_params())));
    }

    #[test]
    fn scale_layers_participate_in_matching() {
        let build = |seed: u64| {
            let mut r = rng(seed);
            ModelBuilder::new("m", TaskKind::Other, Shape::vector(8))
                .dense(8, &mut r)
                .scale(0.01, &mut r)
                .relu()
                .build()
                .unwrap()
        };
        let a = build(1);
        let b = build(2);
        let segs = find_matched_segments(&a, &b, 2);
        assert_eq!(segs.len(), 1);
        assert!(segs[0]
            .host_layers
            .iter()
            .any(|id| a.layer(*id).op.type_tag() == "scale"));
    }

    #[test]
    fn flops_ordering_prefers_wider_segments() {
        let a = mlp(&[64, 8], 128, 1);
        let b = mlp(&[64, 8], 128, 2);
        let segs = find_matched_segments(&a, &b, 2);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].host_flops(&a) > 0);
    }
}
