//! Whole-model equivalence assessment (paper Section 4.1).
//!
//! Three phases, mirroring a compiler's type-check → value-check →
//! refinement: (1) the I/O layer check, (2) an empirical QoR difference on
//! a validation set, (3) refinement with the generalization error bound to
//! obtain a dataset-independent QoR difference bound, compared against the
//! user's threshold ε.
//!
//! The resulting metric is deliberately *asymmetric* (Section 4.3): the
//! regression-style QoR difference normalizes by the *reference* model's
//! output scale, so swapping reference and candidate can change the score.

use crate::genbound::{generalization_term, GenBoundConfig};
use crate::iocheck::{check_io, IoCompat};
use sommelier_graph::task::OutputStyle;
use sommelier_graph::Model;
use sommelier_runtime::metrics::qor_difference;
use sommelier_runtime::{execute, ExecError};
use sommelier_tensor::Tensor;

/// Whether and how to run the generalization-bound refinement — the
/// on/off/custom knob of paper Section 5.5 (custom = caller supplies its
/// own probe dataset when invoking [`assess_whole`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GenBoundMode {
    /// Refine the empirical difference with the bound.
    On(GenBoundConfig),
    /// Report the raw empirical difference (testing-only mode; this is
    /// what the Figure 11 comparison calls "testing-only Sommelier").
    Off,
}

/// Configuration for whole-model assessment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EquivConfig {
    /// Equivalence threshold ε on the QoR difference bound.
    pub epsilon: f64,
    /// Generalization-bound mode.
    pub genbound: GenBoundMode,
}

impl Default for EquivConfig {
    fn default() -> Self {
        EquivConfig {
            epsilon: 0.05,
            genbound: GenBoundMode::On(GenBoundConfig::default()),
        }
    }
}

/// Outcome of a whole-model assessment.
#[derive(Clone, Debug)]
pub struct WholeModelReport {
    /// Empirical QoR difference on the validation set (disagreement ratio
    /// for classification, normalized mean l2 for regression).
    pub empirical_diff: f64,
    /// Generalization term added to make the difference dataset-
    /// independent (0 when the bound is off).
    pub gen_term: f64,
    /// The dataset-independent QoR difference bound.
    pub diff_bound: f64,
    /// Functional-equivalence score `max(0, 1 − diff_bound)` — the value
    /// stored in the semantic index's candidate lists.
    pub score: f64,
    /// Whether the bound is within the configured ε.
    pub equivalent: bool,
}

/// Failures of whole-model assessment.
#[derive(Clone, Debug, PartialEq)]
pub enum AssessError {
    /// The I/O check rejected the pair.
    Incompatible(String),
    /// A model failed to execute on the validation inputs.
    Exec(ExecError),
}

impl std::fmt::Display for AssessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssessError::Incompatible(s) => write!(f, "models are incomparable: {s}"),
            AssessError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for AssessError {}

impl From<ExecError> for AssessError {
    fn from(e: ExecError) -> Self {
        AssessError::Exec(e)
    }
}

/// Assess the functional equivalence of `candidate` with respect to
/// `reference` on a validation set.
///
/// `validation` is the `[n, input_width]` input batch; `n` (used in the
/// generalization bound) is its row count. The QoR style is taken from the
/// *reference* model's task.
pub fn assess_whole(
    reference: &Model,
    candidate: &Model,
    validation: &Tensor,
    config: &EquivConfig,
) -> Result<WholeModelReport, AssessError> {
    match check_io(reference, candidate) {
        IoCompat::Compatible => {}
        IoCompat::Incompatible(reason) => return Err(AssessError::Incompatible(reason)),
    }
    let style = reference.task.output_style();
    let ref_out = execute(reference, validation)?;
    let cand_out = execute(candidate, validation)?;
    let empirical_diff = qor_difference(style, &ref_out, &cand_out);

    let gen_term = match &config.genbound {
        GenBoundMode::Off => 0.0,
        GenBoundMode::On(gb) => {
            let n = validation.rows().max(1);
            // The estimation error of the empirical difference has a
            // contribution from each model's generalization gap; we charge
            // the average of the two architectural terms.
            let t_ref = generalization_term(reference, validation, n, gb);
            let t_cand = generalization_term(candidate, validation, n, gb);
            0.5 * (t_ref + t_cand)
        }
    };
    let diff_bound = empirical_diff + gen_term;
    Ok(WholeModelReport {
        empirical_diff,
        gen_term,
        diff_bound,
        score: (1.0 - diff_bound).max(0.0),
        equivalent: diff_bound <= config.epsilon,
    })
}

/// The QoR style used when two models are compared (reference's task).
pub fn comparison_style(reference: &Model) -> OutputStyle {
    reference.task.output_style()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::TaskKind;
    use sommelier_tensor::Prng;
    use sommelier_zoo::finetune::perturb_all;
    use sommelier_zoo::teacher::{DatasetBias, Teacher};
    use sommelier_zoo::{BodyStyle, EmbedSpec};

    fn setup() -> (Model, Tensor) {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 21);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let mut rng = Prng::seed_from_u64(1);
        let m = sommelier_zoo::embed::embed_model(
            "ref",
            &teacher,
            &bias,
            &EmbedSpec {
                style: BodyStyle::Residual,
                body_width: 96,
                depth: 3,
                noise: 0.01,
            },
            &mut rng,
        );
        let x = Tensor::gaussian(256, teacher.spec.input_width, 1.0, &mut rng);
        (m, x)
    }

    #[test]
    fn self_assessment_is_equivalent_with_zero_empirical_diff() {
        let (m, x) = setup();
        let cfg = EquivConfig {
            epsilon: 0.15,
            ..EquivConfig::default()
        };
        let report = assess_whole(&m, &m, &x, &cfg).unwrap();
        assert_eq!(report.empirical_diff, 0.0);
        assert!(report.gen_term > 0.0);
        // With a 256-row validation set the concentration floor alone is
        // ~0.094, so a 15% threshold certifies a model against itself.
        assert!(report.equivalent, "bound {}", report.diff_bound);
    }

    #[test]
    fn light_finetune_stays_equivalent_heavy_does_not() {
        let (m, x) = setup();
        let mut rng = Prng::seed_from_u64(2);
        let light = perturb_all(&m, 0.01, &mut rng);
        let heavy = perturb_all(&m, 1.5, &mut rng);
        let cfg = EquivConfig {
            epsilon: 0.20,
            ..EquivConfig::default()
        };
        let rl = assess_whole(&m, &light, &x, &cfg).unwrap();
        let rh = assess_whole(&m, &heavy, &x, &cfg).unwrap();
        assert!(rl.equivalent, "light diff bound {}", rl.diff_bound);
        assert!(!rh.equivalent, "heavy diff bound {}", rh.diff_bound);
        assert!(rh.empirical_diff > rl.empirical_diff);
    }

    #[test]
    fn disabling_the_bound_drops_the_term() {
        let (m, x) = setup();
        let mut rng = Prng::seed_from_u64(3);
        let v = perturb_all(&m, 0.05, &mut rng);
        let with = assess_whole(&m, &v, &x, &EquivConfig::default()).unwrap();
        let without = assess_whole(
            &m,
            &v,
            &x,
            &EquivConfig {
                epsilon: 0.05,
                genbound: GenBoundMode::Off,
            },
        )
        .unwrap();
        assert_eq!(without.gen_term, 0.0);
        assert!(with.diff_bound > without.diff_bound);
        assert_eq!(with.empirical_diff, without.empirical_diff);
    }

    #[test]
    fn incompatible_models_are_rejected_before_execution() {
        let (m, x) = setup();
        let mut rng = Prng::seed_from_u64(4);
        let other = sommelier_graph::ModelBuilder::new(
            "tiny",
            TaskKind::ImageRecognition,
            sommelier_tensor::Shape::vector(10),
        )
        .dense(4, &mut rng)
        .softmax()
        .build()
        .unwrap();
        let err = assess_whole(&m, &other, &x, &EquivConfig::default()).unwrap_err();
        assert!(matches!(err, AssessError::Incompatible(_)));
    }

    #[test]
    fn score_is_one_minus_bound_clamped() {
        let (m, x) = setup();
        let mut rng = Prng::seed_from_u64(5);
        let v = perturb_all(&m, 0.05, &mut rng);
        let r = assess_whole(&m, &v, &x, &EquivConfig::default()).unwrap();
        assert!((r.score - (1.0 - r.diff_bound)).abs() < 1e-12);
        assert!(r.score >= 0.0 && r.score <= 1.0);
    }
}
