//! The generalization error bound (paper Section 4.1).
//!
//! Sommelier refines the empirically measured QoR difference with a
//! generalization bound so the equivalence verdict holds *independent of
//! the validation dataset* — the property that separates it from purely
//! testing-based approaches like ModelDiff (Figure 11). The paper uses the
//! compression-based bound of Arora et al.:
//!
//! ```text
//! Õ{ ( d² · max‖f(x)‖₂ · Σᵢ 1/(μᵢ² μᵢ→²) / (γ² n) )^{1/2} }
//! ```
//!
//! where `γ` is the margin implied by the accuracy metric, `n` the
//! validation size, `d` the layer count, `max‖f(x)‖₂` the largest output
//! norm, and `μᵢ`, `μᵢ→` the *layer cushion* and *interlayer cushion* of
//! each linear layer — how much of a layer's Frobenius mass actually acts
//! on typical activations. We estimate the cushions from activations on a
//! probe batch, exactly as the cited work does empirically. The `Õ`
//! constant is a configuration knob ([`GenBoundConfig::constant`]),
//! calibrated once so bounds are conservative-but-informative; the paper's
//! knob surface exposes the same on/off/custom control (Section 5.5).

use sommelier_graph::{LayerId, Model};
use sommelier_runtime::execute_traced;
use sommelier_tensor::{linalg, Tensor};

/// Configuration of the generalization bound analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenBoundConfig {
    /// Margin parameter γ implied by the QoR metric.
    pub gamma: f64,
    /// The calibration constant hidden in Õ{·}.
    pub constant: f64,
    /// Distribution-free concentration floor: the empirical QoR estimate
    /// itself concentrates at `O(1/√n)` (Hoeffding), so the term never
    /// drops below `concentration / √n` regardless of architecture.
    pub concentration: f64,
    /// Cap on probe rows used to estimate cushions and output norms.
    pub probe_rows: usize,
}

impl Default for GenBoundConfig {
    fn default() -> Self {
        GenBoundConfig {
            gamma: 1.0,
            constant: 3.0e-4,
            concentration: 1.5,
            probe_rows: 64,
        }
    }
}

/// Per-layer cushion estimates for one model.
#[derive(Clone, Debug)]
pub struct Cushions {
    /// `(layer, μᵢ, μᵢ→)` for each linear layer.
    pub per_layer: Vec<(LayerId, f64, f64)>,
}

/// Estimate layer cushions on a probe batch.
///
/// For linear layer `i` with dense-equivalent weight `Wᵢ`, activations
/// `xᵢ` (its input) and `xᵢ₊₁ = xᵢWᵢ`:
///
/// * layer cushion `μᵢ  = mean ‖xᵢWᵢ‖ / (‖Wᵢ‖_F ‖xᵢ‖)` — the fraction of
///   the layer's Frobenius capacity exercised by real activations;
/// * interlayer cushion `μᵢ→ = σ_max(Wᵢ) / ‖Wᵢ‖_F`, the spectral-to-
///   Frobenius ratio governing how the layer passes perturbations onward.
///
/// Both are in `(0, 1]` up to estimation noise; small cushions mean the
/// model is "less compressible" and earns a larger bound.
pub fn estimate_cushions(model: &Model, probe: &Tensor) -> Cushions {
    let trace = execute_traced(model, probe).expect("probe must match the model input width");
    let mut per_layer = Vec::new();
    for id in model.linear_layers() {
        let w = model
            .dense_equivalent(id)
            .expect("linear layers have dense equivalents");
        let frob = w.frobenius_norm().max(1e-12);
        let x_in = &trace[model.layer(id).inputs[0].index()];
        let x_out = &trace[id.index()];
        let mut ratio_sum = 0.0;
        let mut rows = 0usize;
        for r in 0..x_in.rows() {
            let nin = linalg::l2_norm(x_in.row(r));
            let nout = linalg::l2_norm(x_out.row(r));
            if nin > 1e-9 {
                ratio_sum += nout / (frob * nin);
                rows += 1;
            }
        }
        let mu = if rows > 0 {
            (ratio_sum / rows as f64).clamp(1e-4, 1.0)
        } else {
            1e-4
        };
        let sigma = linalg::spectral_norm_default(&w);
        let mu_fwd = (sigma / frob).clamp(1e-4, 1.0);
        per_layer.push((id, mu, mu_fwd));
    }
    Cushions { per_layer }
}

/// The architecture-dependent factor `√(d² · max‖f(x)‖ · Σ 1/(μ²μ→²))` of
/// the bound. It depends only on the model (and mildly on the probe), so
/// callers indexing many models cache it per fingerprint and rescale by
/// `1/(γ√n)` per query — see `sommelier-query::engine::EquivAnalyzer`.
pub fn architecture_factor(model: &Model, probe: &Tensor, config: &GenBoundConfig) -> f64 {
    let probe = clamp_rows(probe, config.probe_rows);
    let cushions = estimate_cushions(model, &probe);
    let d = model.depth() as f64;
    let outputs = sommelier_runtime::execute(model, &probe).expect("probe executes");
    let max_out = (0..outputs.rows())
        .map(|r| linalg::l2_norm(outputs.row(r)))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let cushion_sum: f64 = cushions
        .per_layer
        .iter()
        .map(|(_, mu, mu_fwd)| 1.0 / (mu * mu * mu_fwd * mu_fwd))
        .sum::<f64>()
        .max(1.0);
    (d * d * max_out * cushion_sum).sqrt()
}

/// The dataset-independent generalization term for `model` evaluated with
/// an `n`-record validation set. Added to the empirical QoR difference to
/// form the difference *bound* (paper Section 4.1).
pub fn generalization_term(
    model: &Model,
    probe: &Tensor,
    n: usize,
    config: &GenBoundConfig,
) -> f64 {
    assert!(n > 0, "validation size must be positive");
    let factor = architecture_factor(model, probe, config);
    let sqrt_n = (n as f64).sqrt();
    config.constant * factor / (config.gamma * sqrt_n) + config.concentration / sqrt_n
}

fn clamp_rows(t: &Tensor, max_rows: usize) -> Tensor {
    if t.rows() <= max_rows {
        return t.clone();
    }
    let rows: Vec<Tensor> = (0..max_rows).map(|r| t.row_tensor(r)).collect();
    Tensor::stack_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn model(depth: usize, seed: u64) -> Model {
        let mut rng = Prng::seed_from_u64(seed);
        let mut b = ModelBuilder::new("m", TaskKind::ImageRecognition, Shape::vector(32));
        for _ in 0..depth {
            b.dense(32, &mut rng).relu();
        }
        b.dense(8, &mut rng).softmax();
        b.build().unwrap()
    }

    fn probe(seed: u64) -> Tensor {
        let mut rng = Prng::seed_from_u64(seed);
        Tensor::gaussian(32, 32, 1.0, &mut rng)
    }

    #[test]
    fn cushions_are_in_unit_interval() {
        let m = model(3, 1);
        let c = estimate_cushions(&m, &probe(2));
        assert_eq!(c.per_layer.len(), 4);
        for (_, mu, mu_fwd) in &c.per_layer {
            assert!(*mu > 0.0 && *mu <= 1.0, "mu = {mu}");
            assert!(*mu_fwd > 0.0 && *mu_fwd <= 1.0, "mu_fwd = {mu_fwd}");
        }
    }

    #[test]
    fn bound_shrinks_with_dataset_size() {
        let m = model(3, 1);
        let cfg = GenBoundConfig::default();
        let p = probe(2);
        let b100 = generalization_term(&m, &p, 100, &cfg);
        let b1k = generalization_term(&m, &p, 1_000, &cfg);
        let b10k = generalization_term(&m, &p, 10_000, &cfg);
        assert!(b100 > b1k && b1k > b10k);
        // 1/sqrt(n) scaling: ×10 data → bound shrinks by √10.
        assert!((b100 / b1k - 10f64.sqrt()).abs() < 0.2);
    }

    #[test]
    fn deeper_models_earn_larger_bounds() {
        let cfg = GenBoundConfig::default();
        let p = probe(2);
        let shallow = generalization_term(&model(1, 1), &p, 1000, &cfg);
        let deep = generalization_term(&model(8, 1), &p, 1000, &cfg);
        assert!(deep > shallow, "deep={deep} shallow={shallow}");
    }

    #[test]
    fn smaller_gamma_means_larger_bound() {
        let m = model(2, 1);
        let p = probe(2);
        let loose = generalization_term(
            &m,
            &p,
            1000,
            &GenBoundConfig {
                gamma: 1.0,
                ..GenBoundConfig::default()
            },
        );
        let tight = generalization_term(
            &m,
            &p,
            1000,
            &GenBoundConfig {
                gamma: 0.5,
                ..GenBoundConfig::default()
            },
        );
        // Only the architecture part scales with 1/γ; the concentration
        // floor is γ-independent.
        assert!(tight > loose);
        let floor = 1.5 / 1000f64.sqrt();
        assert!(((tight - floor) / (loose - floor) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn probe_rows_are_capped() {
        let m = model(2, 1);
        let mut rng = Prng::seed_from_u64(3);
        let big_probe = Tensor::gaussian(4096, 32, 1.0, &mut rng);
        // Must not blow up on huge probes: runs on a capped subset.
        let b = generalization_term(&m, &big_probe, 1000, &GenBoundConfig::default());
        assert!(b.is_finite() && b > 0.0);
    }

    #[test]
    fn bound_is_deterministic() {
        let m = model(3, 5);
        let p = probe(6);
        let cfg = GenBoundConfig::default();
        assert_eq!(
            generalization_term(&m, &p, 500, &cfg),
            generalization_term(&m, &p, 500, &cfg)
        );
    }
}
