//! Layer-wise error propagation bounds (paper Section 4.2).
//!
//! Given two structurally identical segments `S` (host) and `S'` (donor),
//! we bound the output difference of splicing `S'` into the host in place
//! of `S`, inductively from the segment entry to its tail. The inductive
//! state is the difference bound `Δⁱ = max‖ΔXⁱ‖`; each step additionally
//! needs `Xⁱ = max‖Xⁱ‖`, a bound on the activation magnitude entering the
//! layer.
//!
//! Per operator category:
//!
//! * **linear** (`W` host, `W'` donor):
//!   `Δ' ≤ λ_max(W)·Δ + λ_max(W′−W)·X` (plus the bias-difference norm) —
//!   the paper's displayed inequality, with convolutions handled through
//!   their dense-equivalent 2-D matrix;
//! * **activation**: 1-Lipschitz and `|act(x)| ≤ |x|` for the ReLU family
//!   and tanh (sigmoid is ¼-Lipschitz), so `Δ' ≤ L·Δ`;
//! * **pooling**: non-expansive in l2 → `Δ' ≤ Δ`;
//! * **normalization**: outputs live on the unit sphere; the difference is
//!   rescaled by the input magnitude: `Δ' = Δ / max(X, ε)`;
//! * **multi-source**: the non-segment inputs are identical on both sides,
//!   so `add`/`concat` pass `Δ` through; `multiply` scales the difference
//!   by the magnitude of the other operand.
//!
//! The activation-magnitude series `Xⁱ` can be obtained two ways:
//! analytically ([`analytic_norms`], `Xⁱ⁺¹ = λ_max(W)·Xⁱ`, fully
//! dataset-independent but loose over deep segments) or from a recorded
//! execution trace of the *host* ([`measured_norms`]) — still sound,
//! because the `(ΔW)·X` term acts on the host's actual activations, and
//! much tighter. The index-building assessment uses measured norms.

use crate::segment::MatchedSegment;
use sommelier_graph::{LayerId, Model, Op};
use sommelier_tensor::linalg::{self, spectral_norm_default};
use sommelier_tensor::Tensor;

/// Spectral norm of the difference of two same-shaped weight tensors.
fn diff_spectral(host_w: &Tensor, donor_w: &Tensor) -> f64 {
    let d = donor_w.zip_with(host_w, |a, b| a - b);
    spectral_norm_default(&d)
}

/// Advance the difference bound through one aligned layer pair.
///
/// `delta` bounds the activation difference entering the layer;
/// `input_norm` bounds the (host) activation magnitude entering it.
pub fn step(
    host: &Model,
    host_id: LayerId,
    donor: &Model,
    donor_id: LayerId,
    delta: f64,
    input_norm: f64,
) -> f64 {
    let hl = host.layer(host_id);
    let dl = donor.layer(donor_id);
    debug_assert_eq!(hl.op.type_tag(), dl.op.type_tag(), "segments must align");
    match &hl.op {
        Op::Input { .. } => delta,
        Op::Dense { .. } | Op::Conv1d { .. } | Op::Scale => {
            let w = host
                .dense_equivalent(host_id)
                .expect("linear layer has dense equivalent");
            let w2 = donor
                .dense_equivalent(donor_id)
                .expect("linear layer has dense equivalent");
            let lambda = spectral_norm_default(&w);
            let lambda_diff = diff_spectral(&w, &w2);
            let bias_diff = match (&hl.params.bias, &dl.params.bias) {
                (Some(a), Some(b)) => b.zip_with(a, |x, y| x - y).frobenius_norm(),
                (None, None) => 0.0,
                (Some(a), None) | (None, Some(a)) => a.frobenius_norm(),
            };
            lambda * delta + lambda_diff * input_norm + bias_diff
        }
        Op::Relu | Op::Tanh | Op::Softmax => delta,
        Op::LeakyRelu { slope } => delta * f64::from(slope.abs().max(1.0)),
        Op::Sigmoid => 0.25 * delta,
        Op::MaxPool { .. } | Op::MeanPool { .. } => delta,
        Op::L2Normalize => delta / input_norm.max(1e-9),
        Op::Add | Op::Concat => delta,
        Op::Multiply => delta * input_norm,
    }
}

/// How one (host) layer transforms an activation-magnitude bound — the
/// analytic `Xⁱ⁺¹` update.
pub fn norm_step(host: &Model, host_id: LayerId, input_norm: f64) -> f64 {
    let hl = host.layer(host_id);
    match &hl.op {
        Op::Input { .. } => input_norm,
        Op::Dense { .. } | Op::Conv1d { .. } | Op::Scale => {
            let w = host
                .dense_equivalent(host_id)
                .expect("linear layer has dense equivalent");
            let bias = hl
                .params
                .bias
                .as_ref()
                .map_or(0.0, Tensor::frobenius_norm);
            spectral_norm_default(&w) * input_norm + bias
        }
        // |act(x)| ≤ |x| for the ReLU family and tanh; softmax outputs lie
        // in the simplex (‖·‖₂ ≤ 1); sigmoid is bounded by 1 per element.
        Op::Relu | Op::LeakyRelu { .. } | Op::Tanh => input_norm,
        Op::Softmax => input_norm.min(1.0),
        Op::Sigmoid => {
            let width = host.width_of(host_id) as f64;
            input_norm.min(width.sqrt())
        }
        Op::MaxPool { .. } | Op::MeanPool { .. } => input_norm,
        Op::L2Normalize => 1.0,
        Op::Add => hl.inputs.len() as f64 * input_norm,
        Op::Concat => (hl.inputs.len() as f64).sqrt() * input_norm,
        Op::Multiply => input_norm * input_norm,
    }
}

/// The analytic activation-magnitude series along a segment: entry norm at
/// position 0, then `norm_step` per layer. Returns one value per segment
/// layer (the norm *entering* that layer).
pub fn analytic_norms(host: &Model, seg: &MatchedSegment, entry_norm: f64) -> Vec<f64> {
    let mut norms = Vec::with_capacity(seg.len());
    let mut n = entry_norm.max(0.0);
    for &id in &seg.host_layers {
        norms.push(n);
        n = norm_step(host, id, n);
    }
    norms
}

/// Measured activation-magnitude series from a host execution trace
/// (`sommelier-runtime::execute_traced` output): the max row-l2 of the
/// activation *entering* each segment layer.
pub fn measured_norms(host: &Model, seg: &MatchedSegment, trace: &[Tensor]) -> Vec<f64> {
    seg.host_layers
        .iter()
        .map(|&id| {
            let input = host.layer(id).inputs.first().copied();
            let act = match input {
                Some(prev) => &trace[prev.index()],
                None => &trace[0],
            };
            (0..act.rows())
                .map(|r| linalg::l2_norm(act.row(r)))
                .fold(0.0f64, f64::max)
        })
        .collect()
}

/// Output-difference bound of replacing the host segment with the donor's
/// counterpart, given the activation-magnitude series (one bound per
/// segment layer, as produced by [`analytic_norms`] or
/// [`measured_norms`]).
///
/// Propagation follows the segment's *graph*, not just its layer order: a
/// layer's incoming difference is the sum of the difference bounds of its
/// in-segment inputs (inputs outside the segment are identical on both
/// sides and contribute zero). For purely sequential segments this
/// reduces to a chain walk; for residual segments it correctly carries
/// the trunk's error through `Add` merges instead of losing it down the
/// low-gain branch.
pub fn segment_diff_bound_with_norms(
    host: &Model,
    donor: &Model,
    seg: &MatchedSegment,
    norms: &[f64],
) -> f64 {
    assert_eq!(norms.len(), seg.len(), "one norm per segment layer");
    let mut delta: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    for ((h, d), &norm) in seg
        .host_layers
        .iter()
        .zip(&seg.donor_layers)
        .zip(norms)
    {
        let incoming: f64 = host
            .layer(*h)
            .inputs
            .iter()
            .map(|i| delta.get(&i.index()).copied().unwrap_or(0.0))
            .sum();
        let out = step(host, *h, donor, *d, incoming, norm);
        delta.insert(h.index(), out);
    }
    delta
        .get(&seg.host_tail().index())
        .copied()
        .unwrap_or(0.0)
}

/// Trace-measured variant of [`segment_diff_bound_with_norms`]: the
/// weight-difference injection term of each linear layer is measured
/// directly on the host's recorded activations —
/// `max_r ‖x_r·(W′−W)‖ (+ bias diff)` — instead of the looser
/// `λ_max(W′−W) · max_r ‖x_r‖`. Both dominate the true per-layer
/// injection on the probe; the measured form avoids the spectral norm's
/// worst-case alignment assumption and is what the index-building
/// assessment uses.
pub fn segment_diff_bound_traced(
    host: &Model,
    donor: &Model,
    seg: &MatchedSegment,
    trace: &[Tensor],
) -> f64 {
    use sommelier_graph::Op;
    let norms = measured_norms(host, seg, trace);
    let mut delta: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    for ((h, d), &norm) in seg
        .host_layers
        .iter()
        .zip(&seg.donor_layers)
        .zip(&norms)
    {
        let incoming: f64 = host
            .layer(*h)
            .inputs
            .iter()
            .map(|i| delta.get(&i.index()).copied().unwrap_or(0.0))
            .sum();
        let hl = host.layer(*h);
        let out = match &hl.op {
            Op::Dense { .. } | Op::Conv1d { .. } | Op::Scale => {
                let w = host
                    .dense_equivalent(*h)
                    .expect("linear layer has dense equivalent");
                let w2 = donor
                    .dense_equivalent(*d)
                    .expect("linear layer has dense equivalent");
                let lambda = spectral_norm_default(&w);
                let dw = w2.zip_with(&w, |a, b| a - b);
                // Measured injection: the real activations entering the
                // layer, pushed through ΔW.
                let x_in = &trace[hl.inputs[0].index()];
                let injected = sommelier_tensor::ops::matmul(x_in, &dw);
                let inj = (0..injected.rows())
                    .map(|r| linalg::l2_norm(injected.row(r)))
                    .fold(0.0f64, f64::max);
                let bias_diff = match (&hl.params.bias, &donor.layer(*d).params.bias) {
                    (Some(a), Some(b)) => b.zip_with(a, |x, y| x - y).frobenius_norm(),
                    (None, None) => 0.0,
                    (Some(a), None) | (None, Some(a)) => a.frobenius_norm(),
                };
                lambda * incoming + inj + bias_diff
            }
            _ => step(host, *h, donor, *d, incoming, norm),
        };
        delta.insert(h.index(), out);
    }
    delta
        .get(&seg.host_tail().index())
        .copied()
        .unwrap_or(0.0)
}

/// Fully dataset-independent bound: identical inputs of magnitude at most
/// `entry_norm`, analytic norm propagation.
pub fn segment_diff_bound(
    host: &Model,
    donor: &Model,
    seg: &MatchedSegment,
    entry_norm: f64,
) -> f64 {
    let norms = analytic_norms(host, seg, entry_norm);
    segment_diff_bound_with_norms(host, donor, seg, &norms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::find_matched_segments;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_runtime::{execute, execute_traced};
    use sommelier_tensor::{Prng, Shape};

    fn mlp(seed: u64, perturb: f32) -> Model {
        // Same structure for any seed; weights differ by `perturb`.
        let mut r = Prng::seed_from_u64(7); // common base weights
        let mut b = ModelBuilder::new("m", TaskKind::Other, Shape::vector(12));
        b.dense(12, &mut r).relu().dense(12, &mut r).relu();
        let m = b.build().unwrap();
        if perturb == 0.0 {
            return m;
        }
        let mut pr = Prng::seed_from_u64(seed);
        let mut out = m.clone();
        for id in m.linear_layers() {
            let mut p = m.layer(id).params.clone();
            let w = p.weight.take().unwrap();
            let noise = Tensor::gaussian(w.rows(), w.cols(), perturb as f64, &mut pr);
            p.weight = Some(w.zip_with(&noise, |a, b| a + b));
            out.set_params(id, p).unwrap();
        }
        out
    }

    #[test]
    fn identical_segments_have_zero_bound() {
        let a = mlp(1, 0.0);
        let b = mlp(2, 0.0);
        let segs = find_matched_segments(&a, &b, 2);
        assert!(!segs.is_empty());
        for s in &segs {
            assert_eq!(segment_diff_bound(&a, &b, s, 3.0), 0.0);
        }
    }

    #[test]
    fn bound_grows_with_weight_difference() {
        let a = mlp(1, 0.0);
        let small = mlp(2, 0.01);
        let large = mlp(2, 0.2);
        let segs_s = find_matched_segments(&a, &small, 2);
        let segs_l = find_matched_segments(&a, &large, 2);
        let bs = segment_diff_bound(&a, &small, &segs_s[0], 3.0);
        let bl = segment_diff_bound(&a, &large, &segs_l[0], 3.0);
        assert!(bl > bs, "bl={bl} bs={bs}");
        assert!(bs > 0.0);
    }

    #[test]
    fn bound_scales_with_entry_norm() {
        let a = mlp(1, 0.0);
        let b = mlp(2, 0.05);
        let segs = find_matched_segments(&a, &b, 2);
        let b1 = segment_diff_bound(&a, &b, &segs[0], 1.0);
        let b2 = segment_diff_bound(&a, &b, &segs[0], 2.0);
        assert!((b2 / b1 - 2.0).abs() < 1e-9, "linear in entry norm");
    }

    #[test]
    fn analytic_and_measured_bounds_are_sound() {
        // For random inputs, the actual output difference between the two
        // segments never exceeds either bound, and the measured-norm bound
        // is at least as tight as the analytic one.
        let a = mlp(1, 0.0);
        let b = mlp(2, 0.05);
        let segs = find_matched_segments(&a, &b, 2);
        let seg = &segs[0];

        let mut rng = Prng::seed_from_u64(3);
        let x = Tensor::gaussian(64, 12, 1.0, &mut rng);
        let entry_norm = (0..x.rows())
            .map(|r| linalg::l2_norm(x.row(r)))
            .fold(0.0f64, f64::max);
        let analytic = segment_diff_bound(&a, &b, seg, entry_norm);
        let trace = execute_traced(&a, &x).unwrap();
        let norms = measured_norms(&a, seg, &trace);
        let measured = segment_diff_bound_with_norms(&a, &b, seg, &norms);

        let oa = execute(&a, &x).unwrap();
        let ob = execute(&b, &x).unwrap();
        let worst = (0..x.rows())
            .map(|r| {
                let d: f64 = oa
                    .row(r)
                    .iter()
                    .zip(ob.row(r))
                    .map(|(p, q)| ((p - q) as f64).powi(2))
                    .sum();
                d.sqrt()
            })
            .fold(0.0f64, f64::max);
        assert!(measured >= worst, "measured {measured} vs actual {worst}");
        assert!(analytic >= measured, "analytic {analytic} < measured {measured}");
        assert!(analytic < worst * 500.0, "bound {analytic} is vacuous vs {worst}");
    }

    #[test]
    fn sigmoid_contracts_and_normalize_rescales() {
        let mut r = Prng::seed_from_u64(1);
        let host = ModelBuilder::new("h", TaskKind::Other, Shape::vector(4))
            .dense(4, &mut r)
            .sigmoid()
            .l2_normalize()
            .build()
            .unwrap();
        let after_sigmoid = step(&host, LayerId(2), &host, LayerId(2), 1.0, 4.0);
        assert_eq!(after_sigmoid, 0.25);
        let after_norm = step(&host, LayerId(3), &host, LayerId(3), 0.25, 4.0);
        assert_eq!(after_norm, 0.0625);
        assert_eq!(norm_step(&host, LayerId(3), 4.0), 1.0);
    }

    #[test]
    fn norm_step_caps_bounded_activations() {
        let mut r = Prng::seed_from_u64(2);
        let host = ModelBuilder::new("h", TaskKind::Other, Shape::vector(4))
            .dense(4, &mut r)
            .softmax()
            .build()
            .unwrap();
        // Softmax outputs have l2 norm ≤ 1 regardless of input magnitude.
        assert_eq!(norm_step(&host, LayerId(2), 100.0), 1.0);
        assert_eq!(norm_step(&host, LayerId(2), 0.5), 0.5);
    }

    #[test]
    fn scale_layer_bounds_follow_diagonal() {
        // Scale with all-ones host and a donor differing by +0.5 on one
        // feature: λ(W)=1, λ(ΔW)=0.5 → delta' = delta + 0.5·norm.
        let host = ModelBuilder::new("h", TaskKind::Other, Shape::vector(3))
            .scale_with(Tensor::ones(1, 3), None)
            .build()
            .unwrap();
        let mut donor_scale = Tensor::ones(1, 3);
        donor_scale.set(0, 1, 1.5);
        let donor = ModelBuilder::new("d", TaskKind::Other, Shape::vector(3))
            .scale_with(donor_scale, None)
            .build()
            .unwrap();
        let out = step(&host, LayerId(1), &donor, LayerId(1), 0.2, 4.0);
        assert!((out - (0.2 + 0.5 * 4.0)).abs() < 1e-3, "got {out}");
    }

    #[test]
    fn analytic_norms_one_per_layer() {
        let a = mlp(1, 0.0);
        let b = mlp(2, 0.01);
        let segs = find_matched_segments(&a, &b, 2);
        let norms = analytic_norms(&a, &segs[0], 5.0);
        assert_eq!(norms.len(), segs[0].len());
        assert_eq!(norms[0], 5.0);
    }
}
