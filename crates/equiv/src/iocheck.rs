//! Input/output layer checking (paper Section 4.1).
//!
//! The cheap first phase of equivalence assessment: "check the 'structures'
//! of the input and the output … to quickly filter out completely
//! different models", resembling a compiler's type check. Input shapes are
//! compared strictly unless a model declares a preprocessor; outputs are
//! compared by shape for regression tasks and additionally by syntax
//! labels for classification tasks when both models publish them.

use sommelier_graph::task::OutputStyle;
use sommelier_graph::Model;

/// Metadata key under which a model may declare its input preprocessor.
/// When both models declare one, strict input-shape comparison is skipped
/// (the preprocessors are assumed to adapt the raw source).
pub const PREPROCESSOR_KEY: &str = "preprocessor";

/// Outcome of the I/O compatibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoCompat {
    /// Models may capture the same semantics; proceed to value checking.
    Compatible,
    /// Models cannot be equivalent; the reason is reported.
    Incompatible(String),
}

impl IoCompat {
    pub fn is_compatible(&self) -> bool {
        matches!(self, IoCompat::Compatible)
    }
}

/// Run the input and output layer check between two models.
pub fn check_io(a: &Model, b: &Model) -> IoCompat {
    // Input check: strict shape comparison, waived if both models declare
    // preprocessing of the raw source.
    let both_preprocess = a.metadata.contains_key(PREPROCESSOR_KEY)
        && b.metadata.contains_key(PREPROCESSOR_KEY);
    if !both_preprocess && !a.input_shape.strictly_matches(&b.input_shape) {
        return IoCompat::Incompatible(format!(
            "input shapes differ: {} vs {}",
            a.input_shape, b.input_shape
        ));
    }

    // Output check: shapes must agree for either style.
    if a.output_width() != b.output_width() {
        return IoCompat::Incompatible(format!(
            "output widths differ: {} vs {}",
            a.output_width(),
            b.output_width()
        ));
    }

    // Classification-style outputs additionally carry syntax: if both
    // models publish per-dimension labels, those must agree.
    let classification = a.task.output_style() == OutputStyle::Classification
        || b.task.output_style() == OutputStyle::Classification;
    if classification {
        if let (Some(sa), Some(sb)) = (&a.output_syntax, &b.output_syntax) {
            if sa != sb {
                return IoCompat::Incompatible(
                    "output syntax labels differ between models".into(),
                );
            }
        }
    }
    IoCompat::Compatible
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn model(input: usize, output: usize, task: TaskKind, seed: u64) -> Model {
        let mut rng = Prng::seed_from_u64(seed);
        ModelBuilder::new("m", task, Shape::vector(input))
            .dense(output, &mut rng)
            .softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn identical_shapes_are_compatible() {
        let a = model(8, 4, TaskKind::ImageRecognition, 1);
        let b = model(8, 4, TaskKind::ImageRecognition, 2);
        assert!(check_io(&a, &b).is_compatible());
    }

    #[test]
    fn input_shape_mismatch_rejected() {
        let a = model(8, 4, TaskKind::ImageRecognition, 1);
        let b = model(10, 4, TaskKind::ImageRecognition, 2);
        let r = check_io(&a, &b);
        assert!(matches!(r, IoCompat::Incompatible(ref s) if s.contains("input shapes")));
    }

    #[test]
    fn preprocessors_waive_input_check() {
        let mut a = model(8, 4, TaskKind::ImageRecognition, 1);
        let mut b = model(10, 4, TaskKind::ImageRecognition, 2);
        a.metadata
            .insert(PREPROCESSOR_KEY.into(), "resize-224".into());
        b.metadata
            .insert(PREPROCESSOR_KEY.into(), "resize-299".into());
        assert!(check_io(&a, &b).is_compatible());
        // One-sided declaration is not enough.
        b.metadata.remove(PREPROCESSOR_KEY);
        assert!(!check_io(&a, &b).is_compatible());
    }

    #[test]
    fn output_width_mismatch_rejected() {
        let a = model(8, 4, TaskKind::ImageRecognition, 1);
        let b = model(8, 5, TaskKind::ImageRecognition, 2);
        let r = check_io(&a, &b);
        assert!(matches!(r, IoCompat::Incompatible(ref s) if s.contains("output widths")));
    }

    #[test]
    fn syntax_labels_must_agree_when_published() {
        let mut a = model(8, 2, TaskKind::ImageRecognition, 1);
        let mut b = model(8, 2, TaskKind::ImageRecognition, 2);
        a.output_syntax = Some(vec!["cat".into(), "dog".into()]);
        b.output_syntax = Some(vec!["dog".into(), "cat".into()]);
        assert!(!check_io(&a, &b).is_compatible());
        b.output_syntax = a.output_syntax.clone();
        assert!(check_io(&a, &b).is_compatible());
    }

    #[test]
    fn missing_syntax_is_tolerated() {
        let mut a = model(8, 2, TaskKind::ImageRecognition, 1);
        let b = model(8, 2, TaskKind::ImageRecognition, 2);
        a.output_syntax = Some(vec!["cat".into(), "dog".into()]);
        // b publishes none → only the finer-grained check is skipped.
        assert!(check_io(&a, &b).is_compatible());
    }

    #[test]
    fn regression_tasks_ignore_syntax() {
        let mut a = model(8, 4, TaskKind::ObjectDetection, 1);
        let mut b = model(8, 4, TaskKind::ObjectDetection, 2);
        a.output_syntax = Some(vec!["x".into(); 4]);
        b.output_syntax = Some(vec!["y".into(); 4]);
        // Syntax differs but both tasks are regression-style.
        assert!(check_io(&a, &b).is_compatible());
    }
}
