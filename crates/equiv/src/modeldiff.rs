//! The ModelDiff baseline (paper Section 7.2, Figure 11).
//!
//! ModelDiff [Li et al., ISSTA 2021] quantifies whole-model similarity as
//! the cosine similarity between the two models' *decision distance
//! vectors* (DDVs): for a fixed set of test-input pairs, the DDV of a
//! model is the vector of output distances over those pairs. The metric is
//! purely testing-based — its value depends on the dataset used — which is
//! exactly the weakness the generalization-bound refinement in
//! [`crate::whole`] addresses: Figure 11 shows ModelDiff scores swinging
//! ~30% across dataset draws while Sommelier's bound stays put.

use sommelier_runtime::{execute, ExecError};
use sommelier_graph::Model;
use sommelier_tensor::{linalg, Tensor};

/// Decision distance vector of a model over consecutive input pairs
/// `(0,1), (2,3), …`: entry `k` is the l2 distance between the model's
/// outputs on the pair.
pub fn decision_distance_vector(model: &Model, inputs: &Tensor) -> Result<Vec<f32>, ExecError> {
    let out = execute(model, inputs)?;
    let pairs = out.rows() / 2;
    let mut ddv = Vec::with_capacity(pairs);
    for k in 0..pairs {
        let a = out.row(2 * k);
        let b = out.row(2 * k + 1);
        let d: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| ((x - y) as f64).powi(2))
            .sum();
        ddv.push(d.sqrt() as f32);
    }
    Ok(ddv)
}

/// ModelDiff similarity score between two models on a test set: cosine
/// similarity of their DDVs, in `[-1, 1]` (≈1 for near-identical decision
/// structure).
pub fn modeldiff_similarity(a: &Model, b: &Model, inputs: &Tensor) -> Result<f64, ExecError> {
    let da = decision_distance_vector(a, inputs)?;
    let db = decision_distance_vector(b, inputs)?;
    Ok(linalg::cosine_similarity(&da, &db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::TaskKind;
    use sommelier_tensor::Prng;
    use sommelier_zoo::finetune::perturb_all;
    use sommelier_zoo::teacher::{DatasetBias, Teacher};
    use sommelier_zoo::{BodyStyle, EmbedSpec};

    fn model(seed: u64) -> Model {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 41);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let mut rng = Prng::seed_from_u64(seed);
        sommelier_zoo::embed::embed_model(
            "m",
            &teacher,
            &bias,
            &EmbedSpec {
                style: BodyStyle::Residual,
                body_width: 96,
                depth: 3,
                noise: 0.01,
            },
            &mut rng,
        )
    }

    fn inputs(seed: u64, n: usize) -> Tensor {
        let mut rng = Prng::seed_from_u64(seed);
        Tensor::gaussian(n, 192, 1.0, &mut rng)
    }

    #[test]
    fn ddv_has_one_entry_per_pair() {
        let m = model(1);
        let ddv = decision_distance_vector(&m, &inputs(2, 20)).unwrap();
        assert_eq!(ddv.len(), 10);
        assert!(ddv.iter().all(|d| *d >= 0.0));
    }

    #[test]
    fn self_similarity_is_one() {
        let m = model(1);
        let s = modeldiff_similarity(&m, &m, &inputs(2, 40)).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn finetuned_variants_score_high_unrelated_low() {
        let m = model(1);
        let mut rng = Prng::seed_from_u64(5);
        let variant = perturb_all(&m, 0.05, &mut rng);
        let x = inputs(2, 60);
        let close = modeldiff_similarity(&m, &variant, &x).unwrap();
        let far_model = perturb_all(&m, 3.0, &mut rng);
        let far = modeldiff_similarity(&m, &far_model, &x).unwrap();
        assert!(close > far, "close={close} far={far}");
        assert!(close > 0.9);
    }

    #[test]
    fn score_varies_across_dataset_draws() {
        // The testing-based score is dataset-dependent — the weakness
        // Figure 11 exposes. Different draws must give different numbers.
        let m = model(1);
        let mut rng = Prng::seed_from_u64(6);
        let variant = perturb_all(&m, 0.35, &mut rng);
        let s1 = modeldiff_similarity(&m, &variant, &inputs(10, 40)).unwrap();
        let s2 = modeldiff_similarity(&m, &variant, &inputs(11, 40)).unwrap();
        assert_ne!(s1, s2);
    }
}
