//! Human-readable equivalence explanations.
//!
//! The paper positions Sommelier as "an explanation database for DNNs"
//! (Section 1): beyond a yes/no verdict, users want to see *why* two
//! models are (or are not) interchangeable. An [`Explanation`] assembles
//! the full evidence trail — the I/O check, the empirical difference, the
//! generalization term, and the matched segments with their per-segment
//! bounds — and renders it as a report.

use crate::assessment::assess_replacement;
use crate::iocheck::{check_io, IoCompat};
use crate::segment::MatchedSegment;
use crate::whole::{assess_whole, AssessError, EquivConfig, WholeModelReport};
use sommelier_graph::Model;
use sommelier_tensor::{Prng, Tensor};
use std::fmt;

/// One matched segment, summarized for reporting.
#[derive(Clone, Debug)]
pub struct SegmentEvidence {
    /// Operator tags along the host-side segment.
    pub signature: Vec<String>,
    /// The propagated output-difference bound.
    pub bound: f64,
    /// Whether the segment survived the progressive-removal refinement.
    pub kept: bool,
}

/// The assembled evidence for one (reference, candidate) pair.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Reference model name.
    pub reference: String,
    /// Candidate model name.
    pub candidate: String,
    /// Outcome of the I/O type check.
    pub io: IoCompat,
    /// Whole-model report (absent when the I/O check failed).
    pub whole: Option<WholeModelReport>,
    /// Matched segments with bounds (absent when no structure matches).
    pub segments: Vec<SegmentEvidence>,
    /// Estimated QoR difference of the kept segment replacements.
    pub segment_qor_diff: Option<f64>,
}

impl Explanation {
    /// Whether any form of interchangeability (whole or segment) was
    /// certified under the configured threshold.
    pub fn interchangeable(&self) -> bool {
        self.whole.as_ref().map(|w| w.equivalent).unwrap_or(false)
            || self.segments.iter().any(|s| s.kept)
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "equivalence of '{}' w.r.t. '{}'", self.candidate, self.reference)?;
        match &self.io {
            IoCompat::Compatible => writeln!(f, "  i/o check:       compatible")?,
            IoCompat::Incompatible(reason) => {
                writeln!(f, "  i/o check:       INCOMPATIBLE ({reason})")?
            }
        }
        if let Some(w) = &self.whole {
            writeln!(f, "  empirical diff:  {:.4}", w.empirical_diff)?;
            writeln!(f, "  gen. term:       {:.4}", w.gen_term)?;
            writeln!(f, "  diff bound:      {:.4}", w.diff_bound)?;
            writeln!(f, "  equiv. score:    {:.4}", w.score)?;
            writeln!(
                f,
                "  whole-model:     {}",
                if w.equivalent { "equivalent" } else { "not equivalent" }
            )?;
        }
        if self.segments.is_empty() {
            writeln!(f, "  segments:        none matched")?;
        } else {
            writeln!(f, "  segments ({} matched):", self.segments.len())?;
            for s in &self.segments {
                writeln!(
                    f,
                    "    [{}] bound {:.4} — {}",
                    s.signature.join(" → "),
                    s.bound,
                    if s.kept { "replaceable" } else { "dropped" }
                )?;
            }
            if let Some(d) = self.segment_qor_diff {
                writeln!(f, "  segment QoR diff (kept set): {d:.4}")?;
            }
        }
        writeln!(
            f,
            "  verdict:         {}",
            if self.interchangeable() {
                "interchangeable"
            } else {
                "not interchangeable"
            }
        )
    }
}

/// Assemble the full explanation for a pair of models.
pub fn explain(
    reference: &Model,
    candidate: &Model,
    validation: &Tensor,
    config: &EquivConfig,
    segment_epsilon: f64,
    rng: &mut Prng,
) -> Explanation {
    let io = check_io(reference, candidate);
    let whole = match assess_whole(reference, candidate, validation, config) {
        Ok(report) => Some(report),
        Err(AssessError::Incompatible(_)) | Err(AssessError::Exec(_)) => None,
    };

    // Segment analysis runs in the reference-as-host direction (which
    // segments of the reference could be served by the candidate).
    let probe_rows = validation.rows().clamp(1, 16);
    let probe = {
        let rows: Vec<Tensor> = (0..probe_rows).map(|r| validation.row_tensor(r)).collect();
        Tensor::stack_rows(&rows)
    };
    let (segments, segment_qor_diff) =
        match assess_replacement(reference, candidate, &probe, segment_epsilon, rng) {
            Ok(assessment) if !assessment.segments.is_empty() => {
                let evidence = assessment
                    .segments
                    .iter()
                    .enumerate()
                    .map(|(i, seg)| SegmentEvidence {
                        signature: signature(reference, seg),
                        bound: assessment.bounds[i],
                        kept: assessment.kept.contains(&i),
                    })
                    .collect();
                (evidence, Some(assessment.qor_diff))
            }
            _ => (Vec::new(), None),
        };

    Explanation {
        reference: reference.name.clone(),
        candidate: candidate.name.clone(),
        io,
        whole,
        segments,
        segment_qor_diff,
    }
}

fn signature(model: &Model, seg: &MatchedSegment) -> Vec<String> {
    seg.host_layers
        .iter()
        .map(|id| model.layer(*id).op.type_tag())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::TaskKind;
    use sommelier_zoo::finetune::perturb_all;
    use sommelier_zoo::teacher::{DatasetBias, Teacher};
    use sommelier_zoo::{BodyStyle, EmbedSpec};

    fn setup() -> (Model, Model, Tensor) {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 77);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let mut rng = Prng::seed_from_u64(1);
        let m = sommelier_zoo::embed::embed_model(
            "reference",
            &teacher,
            &bias,
            &EmbedSpec {
                style: BodyStyle::Residual,
                body_width: 96,
                depth: 3,
                noise: 0.01,
            },
            &mut rng,
        );
        let mut vrng = Prng::seed_from_u64(2);
        let variant = perturb_all(&m, 0.03, &mut vrng).renamed("variant");
        let x = Tensor::gaussian(128, m.input_width(), 1.0, &mut rng);
        (m, variant, x)
    }

    #[test]
    fn close_models_are_explained_as_interchangeable() {
        let (reference, candidate, x) = setup();
        let mut rng = Prng::seed_from_u64(3);
        let cfg = EquivConfig {
            epsilon: 0.3,
            ..EquivConfig::default()
        };
        let e = explain(&reference, &candidate, &x, &cfg, 0.3, &mut rng);
        assert!(matches!(e.io, IoCompat::Compatible));
        assert!(e.whole.is_some());
        assert!(!e.segments.is_empty());
        assert!(e.interchangeable());
        let text = e.to_string();
        assert!(text.contains("equiv. score"));
        assert!(text.contains("interchangeable"));
        assert!(text.contains("segments ("));
    }

    #[test]
    fn incompatible_pair_is_explained_without_whole_report() {
        let (reference, _, x) = setup();
        let mut rng = Prng::seed_from_u64(4);
        let other = sommelier_graph::ModelBuilder::new(
            "alien",
            TaskKind::ImageRecognition,
            sommelier_tensor::Shape::vector(10),
        )
        .dense(4, &mut rng)
        .softmax()
        .build()
        .unwrap();
        let e = explain(
            &reference,
            &other,
            &x,
            &EquivConfig::default(),
            0.2,
            &mut rng,
        );
        assert!(matches!(e.io, IoCompat::Incompatible(_)));
        assert!(e.whole.is_none());
        assert!(!e.interchangeable());
        assert!(e.to_string().contains("INCOMPATIBLE"));
    }

    #[test]
    fn display_reports_dropped_segments() {
        let (reference, _, x) = setup();
        // A wildly different variant: segments match structurally but
        // cannot be kept under a tight epsilon.
        let mut vrng = Prng::seed_from_u64(9);
        let far = perturb_all(&reference, 2.0, &mut vrng).renamed("far");
        let mut rng = Prng::seed_from_u64(5);
        let e = explain(
            &reference,
            &far,
            &x,
            &EquivConfig {
                epsilon: 0.02,
                ..EquivConfig::default()
            },
            0.02,
            &mut rng,
        );
        assert!(!e.segments.is_empty());
        let text = e.to_string();
        assert!(text.contains("dropped") || text.contains("not interchangeable"));
    }
}
