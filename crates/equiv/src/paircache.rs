//! Memoized pairwise-analysis cache.
//!
//! Equivalence assessment between two models is by far the most expensive
//! step of index construction: every `whole_diff`/`segment_diff` runs both
//! models over a validation batch. Reindexing, ablation sweeps, and
//! repeated queries keep asking for the *same* pairs, so we cache the
//! results in a concurrency-safe, sharded LRU keyed by
//! `(fingerprint_a, fingerprint_b, kind, config_hash)`.
//!
//! Design notes:
//!
//! * **Keys are content fingerprints, not registry names.** A model
//!   re-registered under the same key with different weights must not see
//!   stale analyses; fingerprints make staleness impossible and let
//!   identical weights under different names share entries.
//! * **`None` results are cached too.** "These two models are
//!   incomparable" is itself an expensive discovery (it may involve probe
//!   execution); the cache stores `Option<f64>` values so incomparability
//!   is remembered.
//! * **Sharded locking.** The map is split across a fixed number of
//!   mutex-protected shards selected by key hash, so concurrent index
//!   workers rarely contend. Eviction is per-shard LRU via monotonic
//!   stamps (capacity is divided evenly across shards).
//! * **`capacity == 0` disables the cache** — `get` returns `None`
//!   without counting a miss and `insert` is a no-op, so `--cache-cap 0`
//!   reproduces uncached behaviour exactly.
//!
//! The cache is *observability-transparent*: hit/miss/eviction counters
//! are kept in atomics and can be published to the process-wide registry
//! in `sommelier_runtime::metrics::counters` via [`PairwiseCache::publish_metrics`].

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sommelier_runtime::metrics::counters;

/// Which analysis the cached value came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PairKind {
    /// Whole-model QoR difference (Section 4.1).
    Whole,
    /// Best segment-replacement QoR difference (Section 4.2).
    Segment,
}

/// Cache key: content fingerprints of the two models, the analysis kind,
/// and a hash of every configuration knob that influences the result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PairKey {
    /// Fingerprint of the first model (direction matters: the analyses
    /// are not symmetric — A→B replacement differs from B→A).
    pub a: u64,
    /// Fingerprint of the second model.
    pub b: u64,
    /// Which analysis produced the value.
    pub kind: PairKind,
    /// Hash of the analysis configuration (ε, validation rows, seed, …).
    pub config_hash: u64,
}

/// A point-in-time view of the cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay under capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured total capacity (0 = disabled).
    pub capacity: usize,
}

struct Slot {
    value: Option<f64>,
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<PairKey, Slot>,
    clock: u64,
}

const SHARDS: usize = 16;

/// Concurrency-safe sharded LRU for pairwise-analysis results.
pub struct PairwiseCache {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PairwiseCache {
    /// Create a cache holding at most `capacity` entries in total.
    /// `capacity == 0` disables caching entirely.
    pub fn new(capacity: usize) -> Self {
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS).max(1)
        };
        PairwiseCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity,
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether the cache stores anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    fn shard_of(&self, key: &PairKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Look up a cached analysis. The outer `Option` is presence in the
    /// cache; the inner `Option<f64>` is the cached analysis result
    /// (`None` = "pair is incomparable"). Refreshes the entry's LRU stamp.
    pub fn get(&self, key: &PairKey) -> Option<Option<f64>> {
        if !self.enabled() {
            return None;
        }
        let mut shard = self.shard_of(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(key) {
            Some(slot) => {
                slot.stamp = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Optimistic probe: like [`PairwiseCache::get`] but a miss is *not*
    /// counted. Callers use `peek` as a fast path whose miss falls
    /// through to the full (counted) analysis path — which itself does a
    /// counted `get` — so counting here too would double-book every
    /// miss. A hit refreshes the LRU stamp and counts exactly like a
    /// `get` hit, because a peek hit means the slow path is skipped
    /// entirely.
    pub fn peek(&self, key: &PairKey) -> Option<Option<f64>> {
        if !self.enabled() {
            return None;
        }
        let mut shard = self.shard_of(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(key) {
            Some(slot) => {
                slot.stamp = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.value)
            }
            None => None,
        }
    }

    /// Insert (or refresh) an analysis result, evicting the least
    /// recently used entry of the key's shard if it is full.
    pub fn insert(&self, key: PairKey, value: Option<f64>) {
        if !self.enabled() {
            return;
        }
        let mut shard = self.shard_of(&key).lock().unwrap_or_else(|e| e.into_inner());
        shard.clock += 1;
        let stamp = shard.clock;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard {
            // Evict the least-recently-stamped entry. O(shard len), but
            // shards are small and eviction only happens at capacity.
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(key, Slot { value, stamp });
    }

    /// Number of resident entries (sums shard lengths).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
        }
    }

    /// Publish the counters to the process-wide metrics registry under
    /// the well-known `pairwise_cache.*` names.
    pub fn publish_metrics(&self) {
        let s = self.stats();
        counters::set("pairwise_cache.hits", s.hits);
        counters::set("pairwise_cache.misses", s.misses);
        counters::set("pairwise_cache.evictions", s.evictions);
        counters::set("pairwise_cache.entries", s.entries as u64);
    }
}

impl std::fmt::Debug for PairwiseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairwiseCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(a: u64, b: u64) -> PairKey {
        PairKey {
            a,
            b,
            kind: PairKind::Whole,
            config_hash: 7,
        }
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = PairwiseCache::new(64);
        assert!(cache.enabled());
        assert_eq!(cache.get(&key(1, 2)), None); // miss
        cache.insert(key(1, 2), Some(0.25));
        assert_eq!(cache.get(&key(1, 2)), Some(Some(0.25))); // hit
        cache.insert(key(3, 4), None); // incomparable pairs cache too
        assert_eq!(cache.get(&key(3, 4)), Some(None));
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.capacity, 64);
    }

    #[test]
    fn direction_and_kind_and_config_are_part_of_the_key() {
        let cache = PairwiseCache::new(64);
        cache.insert(key(1, 2), Some(0.1));
        assert_eq!(cache.get(&key(2, 1)), None, "direction matters");
        let seg = PairKey {
            kind: PairKind::Segment,
            ..key(1, 2)
        };
        assert_eq!(cache.get(&seg), None, "kind matters");
        let other_cfg = PairKey {
            config_hash: 8,
            ..key(1, 2)
        };
        assert_eq!(cache.get(&other_cfg), None, "config matters");
    }

    #[test]
    fn peek_counts_hits_but_never_misses() {
        let cache = PairwiseCache::new(8);
        assert_eq!(cache.peek(&key(5, 6)), None);
        assert_eq!(cache.stats().misses, 0, "peek miss must not be counted");
        cache.insert(key(5, 6), Some(0.5));
        assert_eq!(cache.peek(&key(5, 6)), Some(Some(0.5)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = PairwiseCache::new(0);
        assert!(!cache.enabled());
        cache.insert(key(1, 2), Some(0.5));
        assert_eq!(cache.get(&key(1, 2)), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn eviction_respects_lru_within_a_shard() {
        // Capacity 16 over 16 shards → one entry per shard. Two keys that
        // land in the same shard must evict each other; the freshly used
        // one survives.
        let cache = PairwiseCache::new(16);
        // Find two keys mapping to the same shard.
        let base = key(0, 0);
        let shard_ptr = |k: &PairKey| cache.shard_of(k) as *const _;
        let target = shard_ptr(&base);
        let mut other = None;
        for a in 1..10_000 {
            let k = key(a, a);
            if shard_ptr(&k) == target {
                other = Some(k);
                break;
            }
        }
        let other = other.expect("some key shares a shard");
        cache.insert(base, Some(1.0));
        cache.insert(other, Some(2.0));
        assert_eq!(cache.get(&base), None, "older entry was evicted");
        assert_eq!(cache.get(&other), Some(Some(2.0)));
        assert!(cache.stats().evictions >= 1);
    }

    /// Satellite (c): loom-style stress test — hammer the cache from many
    /// threads with overlapping keys and verify the invariants hold:
    /// every observed value is the deterministic function of its key,
    /// entries never exceed capacity, and hits+misses equals lookups.
    #[test]
    fn concurrent_insert_get_stress() {
        let cache = PairwiseCache::new(32);
        let threads = 8;
        let ops = 500;
        let value_of = |a: u64, b: u64| (a * 1000 + b) as f64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let cache = &cache;
                s.spawn(move || {
                    let mut x = t as u64 + 1;
                    for i in 0..ops {
                        // Cheap deterministic-per-thread pseudo-random walk
                        // over a small key space so threads collide.
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let a = (x >> 33) % 24;
                        let b = (x >> 17) % 24;
                        let k = key(a, b);
                        if let Some(v) = cache.get(&k) {
                            assert_eq!(
                                v,
                                Some(value_of(a, b)),
                                "cached value must match its key"
                            );
                        } else if i % 2 == 0 {
                            cache.insert(k, Some(value_of(a, b)));
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert!(s.entries <= 32, "entries {} exceed capacity", s.entries);
        assert_eq!(s.hits + s.misses, (threads * ops) as u64);
    }

    #[test]
    fn publish_metrics_exports_well_known_names() {
        let cache = PairwiseCache::new(8);
        cache.insert(key(90, 91), Some(0.5));
        let _ = cache.get(&key(90, 91));
        cache.publish_metrics();
        assert!(counters::get("pairwise_cache.hits") >= 1);
        assert_eq!(
            counters::get("pairwise_cache.entries"),
            cache.len() as u64
        );
    }
}
