//! Completing the segment-equivalence assessment (paper Section 4.2,
//! steps i–iii) and performing actual segment replacement.
//!
//! Having matched segments and bounded each pair's output difference, the
//! remaining question is: *how much does replacing these segments hurt the
//! host model's end-to-end QoR?* The paper's procedure:
//!
//! 1. feed inputs to the host and record each segment's output and the
//!    final output;
//! 2. perturb each segment's output with Gaussian noise scaled to its
//!    difference bound (random noise is the worst case — it biases toward
//!    no particular scenario) and re-run the rest of the model;
//! 3. if the estimated QoR difference exceeds ε, drop segments in order of
//!    increasing computational complexity and repeat.
//!
//! [`replace_segments`] then performs the real splice, used both by the
//! semantic index (synthesized models, Section 5.2) and the Figure 10
//! experiments.

use crate::propagation::segment_diff_bound_traced;
use crate::segment::{find_matched_segments, MatchedSegment};
use sommelier_graph::{Model, OpKind};
use sommelier_runtime::metrics::qor_difference;
use sommelier_runtime::{execute_traced, executor::execute_with_overrides, ExecError};
use sommelier_tensor::{Prng, Tensor};

/// Result of assessing donor-segment replacement into a host model.
#[derive(Clone, Debug)]
pub struct ReplacementAssessment {
    /// All structurally matched segments, longest first.
    pub segments: Vec<MatchedSegment>,
    /// Per-segment output-difference bounds (aligned with `segments`).
    pub bounds: Vec<f64>,
    /// Indices (into `segments`) retained after progressive removal.
    pub kept: Vec<usize>,
    /// Estimated end-to-end QoR difference with the kept replacements.
    pub qor_diff: f64,
    /// Whether a non-empty replacement set meets the threshold.
    pub equivalent: bool,
}

impl ReplacementAssessment {
    /// The kept segments themselves.
    pub fn kept_segments(&self) -> Vec<&MatchedSegment> {
        self.kept.iter().map(|&i| &self.segments[i]).collect()
    }
}

/// Assess how interchangeable `donor`'s common segments are inside `host`.
///
/// `inputs` is a probe batch (a modest sample suffices; noise injection is
/// repeated per row). `epsilon` is the acceptable QoR difference.
pub fn assess_replacement(
    host: &Model,
    donor: &Model,
    inputs: &Tensor,
    epsilon: f64,
    rng: &mut Prng,
) -> Result<ReplacementAssessment, ExecError> {
    let segments = find_matched_segments(host, donor, 2);
    if segments.is_empty() {
        return Ok(ReplacementAssessment {
            segments,
            bounds: Vec::new(),
            kept: Vec::new(),
            qor_diff: 0.0,
            equivalent: false,
        });
    }

    // Step i: trace the host to get segment entry norms and baseline
    // outputs.
    let trace = execute_traced(host, inputs)?;
    let baseline = trace.last().expect("non-empty model").clone();

    // Bounds use the *measured* activation magnitudes and weight-difference
    // injections of the host trace — sound on the probe and far tighter
    // than analytic worst-case propagation over deep segments.
    let bounds: Vec<f64> = segments
        .iter()
        .map(|s| segment_diff_bound_traced(host, donor, s, &trace))
        .collect();

    // Step ii/iii: estimate QoR difference with all segments replaced;
    // drop the cheapest segments until within ε.
    let mut kept: Vec<usize> = (0..segments.len()).collect();
    let style = host.task.output_style();
    let mut qor_diff;
    loop {
        let overrides: Vec<_> = kept
            .iter()
            .map(|&i| {
                let seg = &segments[i];
                let tail = seg.host_tail();
                let clean = &trace[tail.index()];
                // Gaussian noise with expected vector norm equal to the
                // segment's bound: per-element std = bound / √width.
                let width = clean.cols().max(1);
                let std = bounds[i] / (width as f64).sqrt();
                let noise = Tensor::gaussian(clean.rows(), clean.cols(), std, rng);
                (tail, clean.zip_with(&noise, |a, b| a + b))
            })
            .collect();
        let perturbed = execute_with_overrides(host, inputs, &overrides)?;
        qor_diff = qor_difference(style, &baseline, &perturbed);
        if qor_diff <= epsilon || kept.is_empty() {
            break;
        }
        // Remove the segment with the smallest computational complexity —
        // the least valuable replacement (Section 4.2 step iii).
        let (drop_pos, _) = kept
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| segments[i].host_flops(host))
            .expect("kept is non-empty");
        kept.remove(drop_pos);
        if kept.is_empty() {
            // No replaceable set meets the threshold; report the empty
            // set's (zero) difference.
            qor_diff = 0.0;
            break;
        }
    }

    let equivalent = !kept.is_empty() && qor_diff <= epsilon;
    Ok(ReplacementAssessment {
        segments,
        bounds,
        kept,
        qor_diff,
        equivalent,
    })
}

/// The estimated end-to-end QoR difference of replacing *all* matched
/// segments (steps i–ii of Section 4.2 without the progressive-removal
/// refinement). Returns `None` when no segments match. This is the raw
/// quantity behind the Figure 10 "bound" curve: `1 − diff` lower-bounds
/// the relative QoR of the fully segment-replaced model.
pub fn estimate_replacement_diff(
    host: &Model,
    donor: &Model,
    inputs: &Tensor,
    rng: &mut Prng,
) -> Result<Option<f64>, ExecError> {
    let segments = find_matched_segments(host, donor, 2);
    if segments.is_empty() {
        return Ok(None);
    }
    estimate_replacement_diff_for(host, donor, &segments, inputs, rng).map(Some)
}

/// As [`estimate_replacement_diff`], but over an explicit set of aligned
/// segments (e.g. a transfer's known shared base, rather than whatever
/// the structural matcher finds).
pub fn estimate_replacement_diff_for(
    host: &Model,
    donor: &Model,
    segments: &[MatchedSegment],
    inputs: &Tensor,
    rng: &mut Prng,
) -> Result<f64, ExecError> {
    let trace = execute_traced(host, inputs)?;
    let baseline = trace.last().expect("non-empty model").clone();
    let overrides: Vec<_> = segments
        .iter()
        .map(|seg| {
            let bound = segment_diff_bound_traced(host, donor, seg, &trace);
            let tail = seg.host_tail();
            let clean = &trace[tail.index()];
            let width = clean.cols().max(1);
            let std = bound / (width as f64).sqrt();
            let noise = Tensor::gaussian(clean.rows(), clean.cols(), std, rng);
            (tail, clean.zip_with(&noise, |a, b| a + b))
        })
        .collect();
    let perturbed = execute_with_overrides(host, inputs, &overrides)?;
    Ok(qor_difference(
        host.task.output_style(),
        &baseline,
        &perturbed,
    ))
}

/// Splice the donor's parameters into the host along the given matched
/// segments, producing the *synthesized* model of paper Section 5.2
/// ("a model Mₙ′ synthesized from Mₙ by replacing Sₙ with S₁").
pub fn replace_segments(host: &Model, donor: &Model, segments: &[&MatchedSegment]) -> Model {
    let mut out = host.clone();
    for seg in segments {
        for (h, d) in seg.host_layers.iter().zip(&seg.donor_layers) {
            if host.layer(*h).op.kind() != OpKind::Linear {
                continue;
            }
            out.set_params(*h, donor.layer(*d).params.clone())
                .expect("matched segments are shape-compatible");
        }
    }
    out.version = format!("{}+spliced", host.version);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::TaskKind;
    use sommelier_runtime::execute;
    use sommelier_runtime::metrics::top1_accuracy;
    use sommelier_zoo::teacher::{DatasetBias, Teacher};
    use sommelier_zoo::{BodyStyle, EmbedSpec};

    fn make(noise: f64, seed: u64) -> Model {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 31);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let mut rng = Prng::seed_from_u64(seed);
        sommelier_zoo::embed::embed_model(
            format!("m{seed}"),
            &teacher,
            &bias,
            &EmbedSpec {
                style: BodyStyle::Plain,
                body_width: 96,
                depth: 3,
                noise,
            },
            &mut rng,
        )
    }

    fn probe(n: usize) -> Tensor {
        let mut rng = Prng::seed_from_u64(2);
        Tensor::gaussian(n, 192, 1.0, &mut rng)
    }

    #[test]
    fn close_models_have_acceptable_replacements() {
        let host = make(0.01, 1);
        let donor = make(0.01, 2);
        let mut rng = Prng::seed_from_u64(3);
        let r = assess_replacement(&host, &donor, &probe(24), 0.25, &mut rng).unwrap();
        assert!(!r.segments.is_empty());
        assert!(r.equivalent, "qor_diff = {}", r.qor_diff);
        assert!(!r.kept.is_empty());
    }

    #[test]
    fn divergent_models_lose_segments_or_fail() {
        let host = make(0.01, 1);
        let donor = make(2.0, 2); // wildly different weights
        let mut rng = Prng::seed_from_u64(3);
        let r = assess_replacement(&host, &donor, &probe(24), 0.02, &mut rng).unwrap();
        // Under a tight ε the full replacement cannot survive.
        assert!(
            r.kept.len() < r.segments.len() || !r.equivalent,
            "kept {} of {}",
            r.kept.len(),
            r.segments.len()
        );
    }

    #[test]
    fn bounds_align_with_segments() {
        let host = make(0.02, 1);
        let donor = make(0.02, 4);
        let mut rng = Prng::seed_from_u64(5);
        let r = assess_replacement(&host, &donor, &probe(16), 0.5, &mut rng).unwrap();
        assert_eq!(r.segments.len(), r.bounds.len());
        assert!(r.bounds.iter().all(|b| b.is_finite() && *b >= 0.0));
    }

    #[test]
    fn unrelated_structures_yield_no_segments() {
        let host = make(0.01, 1);
        let mut rng = Prng::seed_from_u64(9);
        let other = sommelier_graph::ModelBuilder::new(
            "alien",
            TaskKind::ImageRecognition,
            sommelier_tensor::Shape::vector(192),
        )
        .dense(7, &mut rng)
        .softmax()
        .build()
        .unwrap();
        let r = assess_replacement(&host, &other, &probe(8), 0.5, &mut rng).unwrap();
        assert!(r.segments.is_empty());
        assert!(!r.equivalent);
    }

    #[test]
    fn replacement_splice_preserves_function_for_close_donors() {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 31);
        let host = make(0.01, 1);
        let donor = make(0.01, 2);
        let mut rng = Prng::seed_from_u64(6);
        let x = probe(200);
        let labels = teacher.labels(&x);
        let r = assess_replacement(&host, &donor, &probe(16), 0.3, &mut rng).unwrap();
        let spliced = replace_segments(&host, &donor, &r.kept_segments());
        let acc_host = top1_accuracy(&execute(&host, &x).unwrap(), &labels);
        let acc_spliced = top1_accuracy(&execute(&spliced, &x).unwrap(), &labels);
        assert!(
            (acc_host - acc_spliced).abs() < 0.25,
            "splice degraded too much: {acc_host} → {acc_spliced}"
        );
        assert!(spliced.version.contains("spliced"));
    }

    #[test]
    fn splice_actually_copies_donor_weights() {
        let host = make(0.05, 1);
        let donor = make(0.05, 2);
        let segs = find_matched_segments(&host, &donor, 2);
        assert!(!segs.is_empty());
        let seg_refs: Vec<&MatchedSegment> = segs.iter().collect();
        let spliced = replace_segments(&host, &donor, &seg_refs);
        let mut copied = 0;
        for seg in &segs {
            for (h, d) in seg.host_layers.iter().zip(&seg.donor_layers) {
                if host.layer(*h).op.kind() == OpKind::Linear {
                    assert_eq!(spliced.layer(*h).params, donor.layer(*d).params);
                    copied += 1;
                }
            }
        }
        assert!(copied > 0);
    }
}
