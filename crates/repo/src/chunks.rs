//! Content-addressed tensor chunks and per-model delta manifests.
//!
//! Fine-tune families share most of their weights (the NeurStore
//! observation), so the on-disk repository can store a model as a
//! *manifest* instead of a standalone JSON file:
//!
//! * a **full manifest** carries the parameter-free model skeleton plus,
//!   for every parameterized layer, references to content-addressed
//!   chunks of the raw tensor bytes (f32 little-endian, split at
//!   [`MAX_CHUNK_BYTES`]);
//! * a **delta manifest** additionally names a *base* model and only
//!   carries the layers that differ from it — either as chunk
//!   references or, when few elements changed, as sparse
//!   `(index, value)` overrides applied to the base tensor.
//!
//! Chunks live under the repository's `chunks/` namespace, named by a
//! 128-bit content hash, so identical tensors (a frozen prefix across a
//! family, or a chunk-aligned run of unchanged bytes) are stored once.
//! Chunk files are immutable: a chunk is only ever created via
//! `Storage::create_exclusive`, where `AlreadyExists` *is* the dedup
//! hit, and its content is re-verified against its name on every read.

use serde::{Deserialize, Serialize};
use sommelier_fault::Storage;
use sommelier_graph::{LayerId, Model, Params};
use sommelier_tensor::Tensor;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Directory (under the repository root) holding content-addressed
/// chunks.
pub const CHUNK_DIR: &str = "chunks";

/// Suffix of chunk files inside [`CHUNK_DIR`].
pub const CHUNK_SUFFIX: &str = ".chunk";

/// Suffix of manifest files (sibling namespace to `.model.json`).
pub const MANIFEST_SUFFIX: &str = ".manifest.json";

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Maximum chunk payload size. 64 KiB keeps frozen prefixes deduping
/// at tensor granularity while bounding the cost of rewriting one
/// changed tensor.
pub const MAX_CHUNK_BYTES: usize = 64 * 1024;

/// A stored tensor: either a dense chunk list or sparse overrides over
/// the base model's tensor in the same layer/slot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TensorRef {
    pub rows: usize,
    pub cols: usize,
    /// Content hashes of the tensor's byte chunks, in order. Empty
    /// when `sparse` carries the tensor instead.
    pub chunks: Vec<String>,
    /// Sparse overrides `(flat index, new value)` applied to the base
    /// tensor. Only meaningful in delta manifests (`base` is set) for
    /// a slot the base populates at identical shape.
    pub sparse: Option<Vec<(usize, f64)>>,
}

/// Per-layer parameter payload of a manifest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerDelta {
    /// Topological layer index in the skeleton.
    pub layer: usize,
    /// When true this entry fully defines the layer's parameters;
    /// when false, slots absent here are inherited from the base.
    pub replace: bool,
    pub weight: Option<TensorRef>,
    pub bias: Option<TensorRef>,
}

/// The on-disk manifest: skeleton + chunked/sparse parameters, with an
/// optional base model for delta storage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    pub format_version: u32,
    /// Repository key of the base model this manifest deltas against;
    /// `None` for a full manifest.
    pub base: Option<String>,
    /// Parameter-free model skeleton ([`Model::strip_params`]).
    pub skeleton: Model,
    /// Changed (delta) or all (full) parameterized layers.
    pub layers: Vec<LayerDelta>,
}

impl Manifest {
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("manifest serialization is infallible")
    }

    pub fn from_json(json: &str) -> Result<Manifest, String> {
        let m: Manifest = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if m.format_version != MANIFEST_VERSION {
            return Err(format!(
                "unsupported manifest format version {} (supported: {MANIFEST_VERSION})",
                m.format_version
            ));
        }
        Ok(m)
    }

    /// Every chunk hash this manifest references, in order of
    /// appearance (duplicates preserved).
    pub fn chunk_refs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for entry in &self.layers {
            for slot in [&entry.weight, &entry.bias].into_iter().flatten() {
                out.extend(slot.chunks.iter().map(String::as_str));
            }
        }
        out
    }
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// 128-bit content hash of a chunk payload, as 32 lowercase hex chars.
/// Two interleaved splitmix64 streams over the little-endian words plus
/// a length finalizer — not cryptographic, but collision-resistant far
/// beyond repository scale, and fully deterministic across runs.
pub fn chunk_hash(bytes: &[u8]) -> String {
    let mut h1: u64 = 0x6a09_e667_f3bc_c908;
    let mut h2: u64 = 0xbb67_ae85_84ca_a73b;
    for word in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..word.len()].copy_from_slice(word);
        let x = u64::from_le_bytes(buf);
        h1 = mix64(h1 ^ x);
        h2 = mix64(h2 ^ x.rotate_left(32) ^ h1);
    }
    let len = bytes.len() as u64;
    h1 = mix64(h1 ^ len);
    h2 = mix64(h2 ^ len.rotate_left(32) ^ h1);
    format!("{h1:016x}{h2:016x}")
}

/// Whether a file name inside `chunks/` is a canonical chunk name
/// (32 lowercase hex chars + [`CHUNK_SUFFIX`]).
pub fn is_chunk_name(name: &str) -> bool {
    name.strip_suffix(CHUNK_SUFFIX).is_some_and(|stem| {
        stem.len() == 32 && stem.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
    })
}

/// Raw storage form of a tensor: f32 little-endian, row-major.
pub fn tensor_bytes(t: &Tensor) -> Vec<u8> {
    let mut out = Vec::with_capacity(t.len() * 4);
    for v in t.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn tensor_from_bytes(rows: usize, cols: usize, bytes: &[u8]) -> Result<Tensor, String> {
    if bytes.len() != rows * cols * 4 {
        return Err(format!(
            "tensor payload is {} bytes, expected {} for {rows}x{cols}",
            bytes.len(),
            rows * cols * 4
        ));
    }
    let data = bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();
    Ok(Tensor::from_vec(rows, cols, data))
}

/// The content-addressed chunk namespace of one repository.
pub struct ChunkStore {
    dir: PathBuf,
    storage: Arc<dyn Storage>,
}

impl ChunkStore {
    pub fn new(repo_root: &Path, storage: Arc<dyn Storage>) -> ChunkStore {
        ChunkStore {
            dir: repo_root.join(CHUNK_DIR),
            storage,
        }
    }

    pub fn path_of(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}{CHUNK_SUFFIX}"))
    }

    /// Store a chunk, returning its content hash. Chunks are immutable
    /// and exclusively created: a racing or pre-existing identical
    /// chunk surfaces as `AlreadyExists`, which *is* success (the
    /// dedup hit) — content addressing guarantees the existing bytes
    /// are the bytes we were about to write.
    pub fn put(&self, bytes: &[u8]) -> io::Result<String> {
        let hash = chunk_hash(bytes);
        match self.storage.create_exclusive(&self.path_of(&hash), bytes) {
            Ok(()) => Ok(hash),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(hash),
            Err(e) => Err(e),
        }
    }

    /// Read a chunk back, verifying its content against its name so a
    /// corrupted chunk can never silently flow into a reconstructed
    /// model.
    pub fn get(&self, hash: &str) -> io::Result<Vec<u8>> {
        let bytes = self.storage.read(&self.path_of(hash))?;
        if chunk_hash(&bytes) != hash {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("chunk {hash} fails content verification"),
            ));
        }
        Ok(bytes)
    }

    /// Names of every chunk file present (canonical or not). An absent
    /// chunk directory reads as empty — a legacy flat store.
    pub fn list(&self) -> io::Result<Vec<String>> {
        match self.storage.list(&self.dir) {
            Ok(names) => Ok(names),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn put_tensor(&self, t: &Tensor) -> io::Result<TensorRef> {
        let bytes = tensor_bytes(t);
        let mut chunks = Vec::new();
        for part in bytes.chunks(MAX_CHUNK_BYTES.max(1)) {
            chunks.push(self.put(part)?);
        }
        Ok(TensorRef {
            rows: t.rows(),
            cols: t.cols(),
            chunks,
            sparse: None,
        })
    }

    fn get_tensor(&self, r: &TensorRef) -> io::Result<Tensor> {
        let mut bytes = Vec::with_capacity(r.rows * r.cols * 4);
        for hash in &r.chunks {
            bytes.extend_from_slice(&self.get(hash)?);
        }
        tensor_from_bytes(r.rows, r.cols, &bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Encode a model as a full manifest, writing its tensor chunks.
pub fn encode_full(model: &Model, store: &ChunkStore) -> io::Result<Manifest> {
    let (skeleton, params) = model.strip_params();
    let mut layers = Vec::with_capacity(params.len());
    for (id, p) in params {
        layers.push(LayerDelta {
            layer: id.index(),
            replace: true,
            weight: p.weight.as_ref().map(|t| store.put_tensor(t)).transpose()?,
            bias: p.bias.as_ref().map(|t| store.put_tensor(t)).transpose()?,
        });
    }
    Ok(Manifest {
        format_version: MANIFEST_VERSION,
        base: None,
        skeleton,
        layers,
    })
}

/// A sparse override is worth it only well below the dense raw-byte
/// cost: one JSON `[index,value]` pair runs ~24 bytes vs 4 bytes per
/// dense element.
fn sparse_pays_off(changed: usize, len: usize) -> bool {
    changed * 24 < len * 4
}

fn delta_tensor(new: &Tensor, base: Option<&Tensor>, store: &ChunkStore) -> io::Result<Option<TensorRef>> {
    if let Some(b) = base {
        if b.rows() == new.rows() && b.cols() == new.cols() {
            let changed: Vec<(usize, f64)> = new
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .enumerate()
                .filter(|(_, (n, o))| n.to_bits() != o.to_bits())
                .map(|(i, (n, _))| (i, f64::from(*n)))
                .collect();
            if changed.is_empty() {
                // Identical to base: inherit, no entry at all.
                return Ok(None);
            }
            // Non-finite values don't survive JSON; ship those dense.
            if sparse_pays_off(changed.len(), new.len())
                && changed.iter().all(|(_, v)| v.is_finite())
            {
                return Ok(Some(TensorRef {
                    rows: new.rows(),
                    cols: new.cols(),
                    chunks: Vec::new(),
                    sparse: Some(changed),
                }));
            }
        }
    }
    store.put_tensor(new).map(Some)
}

/// Encode a model as a delta manifest against `base` (stored under
/// `base_key`), writing any chunks the delta needs. Falls back to a
/// full manifest when the two models are not structurally aligned
/// (different operator sequences), where per-layer deltas are
/// meaningless.
pub fn encode_delta(
    model: &Model,
    base_key: &str,
    base: &Model,
    store: &ChunkStore,
) -> io::Result<Manifest> {
    if model.op_tags() != base.op_tags() {
        return encode_full(model, store);
    }
    let (skeleton, params) = model.strip_params();
    let mut layers = Vec::new();
    for (id, p) in params {
        let base_params = &base.layer(id).params;
        if *base_params == p {
            continue;
        }
        // Slot-set drift (e.g. the variant dropped the base's bias)
        // cannot be expressed by inheritance — replace the layer.
        let slots_match = base_params.weight.is_some() == p.weight.is_some()
            && base_params.bias.is_some() == p.bias.is_some();
        if !slots_match {
            layers.push(LayerDelta {
                layer: id.index(),
                replace: true,
                weight: p.weight.as_ref().map(|t| store.put_tensor(t)).transpose()?,
                bias: p.bias.as_ref().map(|t| store.put_tensor(t)).transpose()?,
            });
            continue;
        }
        let weight = match (&p.weight, &base_params.weight) {
            (Some(n), b) => delta_tensor(n, b.as_ref(), store)?,
            (None, _) => None,
        };
        let bias = match (&p.bias, &base_params.bias) {
            (Some(n), b) => delta_tensor(n, b.as_ref(), store)?,
            (None, _) => None,
        };
        if weight.is_some() || bias.is_some() {
            layers.push(LayerDelta {
                layer: id.index(),
                replace: false,
                weight,
                bias,
            });
        }
    }
    Ok(Manifest {
        format_version: MANIFEST_VERSION,
        base: Some(base_key.to_string()),
        skeleton,
        layers,
    })
}

fn resolve_tensor(r: &TensorRef, base: Option<&Tensor>, store: &ChunkStore) -> io::Result<Tensor> {
    match &r.sparse {
        None => store.get_tensor(r),
        Some(overrides) => {
            let base = base.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "sparse tensor delta without a base tensor",
                )
            })?;
            if base.rows() != r.rows || base.cols() != r.cols {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "sparse delta shape {}x{} does not match base {}x{}",
                        r.rows,
                        r.cols,
                        base.rows(),
                        base.cols()
                    ),
                ));
            }
            let mut data = base.as_slice().to_vec();
            for &(idx, val) in overrides {
                let slot = data.get_mut(idx).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("sparse index {idx} out of range ({} elements)", r.rows * r.cols),
                    )
                })?;
                *slot = val as f32;
            }
            Ok(Tensor::from_vec(r.rows, r.cols, data))
        }
    }
}

/// Reconstruct the model a manifest describes. Delta manifests require
/// the already-reconstructed base model; full manifests pass `None`.
pub fn reconstruct(
    manifest: &Manifest,
    base: Option<&Model>,
    store: &ChunkStore,
) -> io::Result<Model> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    if manifest.base.is_some() != base.is_some() {
        return Err(bad("delta manifest requires its base model".into()));
    }
    let num_layers = manifest.skeleton.num_layers();
    let mut params: Vec<Option<Params>> = vec![None; num_layers];
    if let Some(base) = base {
        if base.op_tags() != manifest.skeleton.op_tags() {
            return Err(bad(format!(
                "delta base '{}' is not structurally aligned with the manifest skeleton",
                base.name
            )));
        }
        for (i, layer) in base.layers().iter().enumerate() {
            if layer.params.count() != 0 {
                params[i] = Some(layer.params.clone());
            }
        }
    }
    for entry in &manifest.layers {
        if entry.layer >= num_layers {
            return Err(bad(format!(
                "manifest entry for layer {} but skeleton has {num_layers}",
                entry.layer
            )));
        }
        let inherited = if entry.replace {
            None
        } else {
            params[entry.layer].take()
        };
        let inherited = inherited.unwrap_or_else(Params::none);
        let weight = match &entry.weight {
            Some(r) => Some(resolve_tensor(r, inherited.weight.as_ref(), store)?),
            None if entry.replace => None,
            None => inherited.weight,
        };
        let bias = match &entry.bias {
            Some(r) => Some(resolve_tensor(r, inherited.bias.as_ref(), store)?),
            None if entry.replace => None,
            None => inherited.bias,
        };
        params[entry.layer] = Some(Params { weight, bias });
    }
    let pairs = params
        .into_iter()
        .enumerate()
        .filter_map(|(i, p)| p.map(|p| (LayerId(i), p)));
    Model::attach_params(&manifest.skeleton, pairs).map_err(|e| bad(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_fault::StdStorage;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn store(tag: &str) -> (PathBuf, ChunkStore) {
        let dir = std::env::temp_dir().join(format!(
            "sommelier-chunks-{tag}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join(CHUNK_DIR)).unwrap();
        let cs = ChunkStore::new(&dir, Arc::new(StdStorage));
        (dir, cs)
    }

    fn model(name: &str, seed: u64) -> Model {
        let mut rng = Prng::seed_from_u64(seed);
        ModelBuilder::new(name, TaskKind::Other, Shape::vector(16))
            .dense(8, &mut rng)
            .relu()
            .dense(4, &mut rng)
            .build()
            .unwrap()
    }

    #[test]
    fn chunk_hash_is_content_addressed() {
        assert_eq!(chunk_hash(b"abc"), chunk_hash(b"abc"));
        assert_ne!(chunk_hash(b"abc"), chunk_hash(b"abd"));
        assert_ne!(chunk_hash(b""), chunk_hash(b"\0"));
        assert!(is_chunk_name(&format!("{}{CHUNK_SUFFIX}", chunk_hash(b"x"))));
        assert!(!is_chunk_name("deadbeef.chunk"));
        assert!(!is_chunk_name("README.md"));
    }

    #[test]
    fn put_is_idempotent_and_get_verifies() {
        let (dir, cs) = store("putget");
        let h = cs.put(b"payload").unwrap();
        assert_eq!(cs.put(b"payload").unwrap(), h);
        assert_eq!(cs.get(&h).unwrap(), b"payload");
        assert_eq!(cs.list().unwrap().len(), 1);
        // Corrupt the chunk on disk: reads must fail verification.
        std::fs::write(cs.path_of(&h), b"tampered").unwrap();
        assert!(cs.get(&h).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_manifest_round_trips() {
        let (dir, cs) = store("full");
        let m = model("full", 7);
        let manifest = encode_full(&m, &cs).unwrap();
        assert!(manifest.base.is_none());
        let json = manifest.to_json();
        let parsed = Manifest::from_json(&json).unwrap();
        assert_eq!(parsed, manifest);
        let back = reconstruct(&parsed, None, &cs).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_models_share_every_chunk() {
        let (dir, cs) = store("share");
        let m = model("one", 9);
        encode_full(&m, &cs).unwrap();
        let before = cs.list().unwrap().len();
        encode_full(&m.renamed("two"), &cs).unwrap();
        assert_eq!(cs.list().unwrap().len(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sparse_delta_round_trips_exactly() {
        let (dir, cs) = store("sparse");
        let base = model("base", 11);
        let mut variant = base.renamed("variant");
        let id = variant.linear_layers()[1];
        let mut p = variant.layer(id).params.clone();
        let w = p.weight.as_ref().unwrap();
        let mut data = w.as_slice().to_vec();
        data[3] = -1.25;
        p.weight = Some(Tensor::from_vec(w.rows(), w.cols(), data));
        variant.set_params(id, p).unwrap();

        let manifest = encode_delta(&variant, "base", &base, &cs).unwrap();
        assert_eq!(manifest.base.as_deref(), Some("base"));
        assert_eq!(manifest.layers.len(), 1);
        let entry = &manifest.layers[0];
        assert!(entry.weight.as_ref().unwrap().sparse.is_some());
        assert!(entry.bias.is_none());
        // The JSON round trip must not lose float precision.
        let parsed = Manifest::from_json(&manifest.to_json()).unwrap();
        let back = reconstruct(&parsed, Some(&base), &cs).unwrap();
        assert_eq!(back, variant);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn structurally_misaligned_delta_falls_back_to_full() {
        let (dir, cs) = store("fallback");
        let base = model("base", 3);
        let mut rng = Prng::seed_from_u64(4);
        let other = ModelBuilder::new("other", TaskKind::Other, Shape::vector(16))
            .dense(4, &mut rng)
            .build()
            .unwrap();
        let manifest = encode_delta(&other, "base", &base, &cs).unwrap();
        assert!(manifest.base.is_none(), "fell back to a full manifest");
        assert_eq!(reconstruct(&manifest, None, &cs).unwrap(), other);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reconstruct_rejects_mismatched_base() {
        let (dir, cs) = store("mismatch");
        let base = model("base", 5);
        let mut variant = base.renamed("variant");
        let id = variant.linear_layers()[0];
        let mut p = variant.layer(id).params.clone();
        let w = p.weight.as_ref().unwrap();
        let mut data = w.as_slice().to_vec();
        data[0] += 0.5;
        p.weight = Some(Tensor::from_vec(w.rows(), w.cols(), data));
        variant.set_params(id, p).unwrap();
        let manifest = encode_delta(&variant, "base", &base, &cs).unwrap();
        assert!(manifest.base.is_some());
        // Wrong base model: structurally aligned but different weights
        // is undetectable by design (deltas are positional), so test
        // the detectable failure — a structurally different base.
        let mut rng = Prng::seed_from_u64(6);
        let wrong = ModelBuilder::new("wrong", TaskKind::Other, Shape::vector(16))
            .dense(2, &mut rng)
            .build()
            .unwrap();
        assert!(reconstruct(&manifest, Some(&wrong), &cs).is_err());
        assert!(reconstruct(&manifest, None, &cs).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
