//! Publish/load model storage.

use crate::chunks::{self, ChunkStore, Manifest, CHUNK_DIR, MANIFEST_SUFFIX};
use parking_lot::RwLock;
use sommelier_fault::{StdStorage, Storage};
use sommelier_graph::serde_model;
use sommelier_graph::Model;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Repository failures.
#[derive(Debug)]
pub enum RepoError {
    /// No model is stored under the requested key.
    NotFound { key: String },
    /// A model is already stored under the key (publish without
    /// `overwrite`).
    AlreadyExists { key: String },
    /// Storage-layer failure (I/O, serialization).
    Storage(String),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::NotFound { key } => write!(f, "no model stored under '{key}'"),
            RepoError::AlreadyExists { key } => {
                write!(f, "a model is already stored under '{key}'")
            }
            RepoError::Storage(e) => write!(f, "storage failure: {e}"),
        }
    }
}

impl std::error::Error for RepoError {}

/// The primitive repository interface: exactly publish, load, and list.
/// This is the entire API surface a pre-Sommelier repository offers
/// (paper Section 2.1) — retrieval requires knowing the precise key.
pub trait ModelRepository: Send + Sync {
    /// Store a model under a key. Fails with [`RepoError::AlreadyExists`]
    /// unless `overwrite` is set.
    fn publish(&self, key: &str, model: &Model, overwrite: bool) -> Result<(), RepoError>;

    /// Retrieve the model stored under `key`.
    fn load(&self, key: &str) -> Result<Model, RepoError>;

    /// All stored keys, sorted — or the storage error that kept the
    /// backend from producing a complete listing. Callers that cannot
    /// tolerate a truncated view (index builds, lint, fsck) go through
    /// this; [`ModelRepository::keys`] is the infallible convenience
    /// wrapper.
    fn try_keys(&self) -> Result<Vec<String>, RepoError>;

    /// All stored keys, sorted; an unlistable backend reads as empty.
    fn keys(&self) -> Vec<String> {
        self.try_keys().unwrap_or_default()
    }

    /// Number of stored models.
    fn len(&self) -> usize {
        self.keys().len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory repository (the default for experiments).
#[derive(Clone, Default)]
pub struct InMemoryRepository {
    models: Arc<RwLock<BTreeMap<String, Model>>>,
}

impl InMemoryRepository {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-publish a collection of models keyed by their names.
    pub fn publish_all<'a>(
        &self,
        models: impl IntoIterator<Item = &'a Model>,
    ) -> Result<(), RepoError> {
        for m in models {
            self.publish(&m.name, m, false)?;
        }
        Ok(())
    }
}

impl ModelRepository for InMemoryRepository {
    fn publish(&self, key: &str, model: &Model, overwrite: bool) -> Result<(), RepoError> {
        let mut map = self.models.write();
        if !overwrite && map.contains_key(key) {
            return Err(RepoError::AlreadyExists { key: key.into() });
        }
        map.insert(key.to_string(), model.clone());
        Ok(())
    }

    fn load(&self, key: &str) -> Result<Model, RepoError> {
        self.models
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| RepoError::NotFound { key: key.into() })
    }

    fn try_keys(&self) -> Result<Vec<String>, RepoError> {
        Ok(self.models.read().keys().cloned().collect())
    }

    fn len(&self) -> usize {
        self.models.read().len()
    }
}

/// Suffix every flat (standalone JSON) model file carries.
pub const MODEL_SUFFIX: &str = ".model.json";

/// Bytes that survive key encoding verbatim. Everything else —
/// crucially `%`, `/`, and whitespace — is percent-escaped, which makes
/// the encoding injective: two distinct keys can never share a file.
fn is_plain(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.'
}

/// Injective (percent) encoding of a repository key into a file stem.
pub fn encode_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for &b in key.as_bytes() {
        if is_plain(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        }
    }
    out
}

/// Decode a file stem back into the original key. Returns `None` for
/// stems that are not the *canonical* encoding of any key (malformed
/// escapes, lowercase hex, escaped-but-plain bytes, invalid UTF-8) —
/// such files are never repository entries, and the lint layer flags
/// them.
pub fn decode_key(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b if is_plain(b) => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    let key = String::from_utf8(out).ok()?;
    // Canonical round-trip: rejects non-canonical spellings (e.g.
    // "%2f" vs "%2F", or "%41" for plain 'A') so no two on-disk names
    // can decode to the same key.
    (encode_key(&key) == stem).then_some(key)
}

/// On-disk repository: one JSON model file per key under a root
/// directory. Keys map to file names through the injective
/// [`encode_key`] / [`decode_key`] pair, every publish goes through the
/// crash-safe [`Storage`] composites (atomic rename for overwrites, an
/// `O_EXCL`-style link for first publishes), and listing failures
/// surface as [`RepoError::Storage`] instead of truncating silently.
pub struct OnDiskRepository {
    root: PathBuf,
    storage: Arc<dyn Storage>,
}

impl OnDiskRepository {
    /// Open (creating if needed) a repository rooted at `root`, backed
    /// by the real filesystem.
    pub fn open(root: &Path) -> Result<Self, RepoError> {
        Self::open_with(root, Arc::new(StdStorage))
    }

    /// Open a repository over an explicit storage backend (the
    /// fault-injection hook).
    pub fn open_with(root: &Path, storage: Arc<dyn Storage>) -> Result<Self, RepoError> {
        std::fs::create_dir_all(root.join(CHUNK_DIR))
            .map_err(|e| RepoError::Storage(e.to_string()))?;
        Ok(OnDiskRepository {
            root: root.into(),
            storage,
        })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.root.join(format!("{}{MODEL_SUFFIX}", encode_key(key)))
    }

    fn manifest_path_for(&self, key: &str) -> PathBuf {
        self.root
            .join(format!("{}{MANIFEST_SUFFIX}", encode_key(key)))
    }

    /// The repository's content-addressed chunk namespace.
    pub fn chunk_store(&self) -> ChunkStore {
        ChunkStore::new(&self.root, Arc::clone(&self.storage))
    }

    /// How `key` is currently stored, or `None` when absent. During a
    /// migration window a key may briefly have both representations;
    /// the flat file wins (it is what [`ModelRepository::load`]
    /// serves), so that is what this reports. Advisory only — racing
    /// publishes are arbitrated by the storage layer, not by this.
    pub fn stored_format(&self, key: &str) -> Option<StoredFormat> {
        if self.storage.exists(&self.path_for(key)) {
            Some(StoredFormat::Flat)
        } else if self.storage.exists(&self.manifest_path_for(key)) {
            Some(StoredFormat::Chunked)
        } else {
            None
        }
    }

    fn storage_err(key: Option<&str>, e: io::Error) -> RepoError {
        match (key, e.kind()) {
            (Some(key), io::ErrorKind::NotFound) => RepoError::NotFound { key: key.into() },
            (Some(key), io::ErrorKind::AlreadyExists) => {
                RepoError::AlreadyExists { key: key.into() }
            }
            _ => RepoError::Storage(e.to_string()),
        }
    }

    fn read_manifest(&self, key: &str) -> Result<Manifest, RepoError> {
        let bytes = self
            .storage
            .read(&self.manifest_path_for(key))
            .map_err(|e| Self::storage_err(Some(key), e))?;
        let json = String::from_utf8(bytes).map_err(|e| RepoError::Storage(e.to_string()))?;
        Manifest::from_json(&json)
            .map_err(|e| RepoError::Storage(format!("manifest for '{key}': {e}")))
    }

    /// Publish a manifest under `key` and, for overwrites, retire the
    /// flat file. The ordering is the crash-safety argument: chunks
    /// are immutable and already durable, the manifest lands via one
    /// atomic rename/link, and — because [`ModelRepository::load`]
    /// prefers the flat file — removing it is the single atomic
    /// visibility flip from the old representation to the new one.
    fn publish_manifest(
        &self,
        key: &str,
        manifest: &Manifest,
        overwrite: bool,
    ) -> Result<(), RepoError> {
        let path = self.manifest_path_for(key);
        let json = manifest.to_json();
        if overwrite {
            self.storage
                .write_atomic(&path, json.as_bytes())
                .map_err(|e| Self::storage_err(Some(key), e))?;
            match self.storage.remove(&self.path_for(key)) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(Self::storage_err(Some(key), e)),
            }
        } else {
            if self.storage.exists(&self.path_for(key)) {
                return Err(RepoError::AlreadyExists { key: key.into() });
            }
            self.storage
                .create_exclusive(&path, json.as_bytes())
                .map_err(|e| Self::storage_err(Some(key), e))
        }
    }

    /// Store a model as a full manifest over content-addressed chunks.
    /// Load-back is byte-exact; callers of [`ModelRepository::load`]
    /// cannot tell the difference.
    pub fn publish_chunked(
        &self,
        key: &str,
        model: &Model,
        overwrite: bool,
    ) -> Result<(), RepoError> {
        let store = self.chunk_store();
        let manifest = chunks::encode_full(model, &store)
            .map_err(|e| Self::storage_err(Some(key), e))?;
        self.publish_manifest(key, &manifest, overwrite)
    }

    /// Store a model as a delta manifest against the already-stored
    /// `base_key`: only layers that differ from the base are written
    /// (sparsely, when few elements changed). Falls back to a full
    /// manifest when the two models are not structurally aligned.
    /// Fails if the base is absent or if deltaing against it would
    /// create a base-chain cycle through `key`.
    pub fn publish_delta(
        &self,
        key: &str,
        model: &Model,
        base_key: &str,
        overwrite: bool,
    ) -> Result<(), RepoError> {
        // Walk the base chain before writing anything: a manifest
        // whose chain loops through `key` would make `key`
        // unloadable.
        let mut chain = base_key.to_string();
        let mut seen = BTreeSet::new();
        loop {
            if chain == key || !seen.insert(chain.clone()) {
                return Err(RepoError::Storage(format!(
                    "publishing '{key}' with base '{base_key}' would create a delta cycle"
                )));
            }
            if self.storage.exists(&self.path_for(&chain)) {
                break; // flat models never have a base
            }
            match self.read_manifest(&chain).map(|m| m.base)? {
                Some(next) => chain = next,
                None => break,
            }
        }
        let base = self.load(base_key)?;
        let store = self.chunk_store();
        let manifest = chunks::encode_delta(model, base_key, &base, &store)
            .map_err(|e| Self::storage_err(Some(key), e))?;
        self.publish_manifest(key, &manifest, overwrite)
    }

    fn load_chain(&self, key: &str, visiting: &mut BTreeSet<String>) -> Result<Model, RepoError> {
        // The flat file wins: during migration it is the still-current
        // representation, and its removal is the atomic cutover.
        match self.storage.read(&self.path_for(key)) {
            Ok(bytes) => {
                let json =
                    String::from_utf8(bytes).map_err(|e| RepoError::Storage(e.to_string()))?;
                return serde_model::from_json(&json)
                    .map_err(|e| RepoError::Storage(e.to_string()));
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(Self::storage_err(Some(key), e)),
        }
        if !visiting.insert(key.to_string()) {
            return Err(RepoError::Storage(format!(
                "delta base chain cycles through '{key}'"
            )));
        }
        let manifest = self.read_manifest(key)?;
        let base = match &manifest.base {
            Some(base_key) => Some(self.load_chain(base_key, visiting).map_err(|e| match e {
                RepoError::NotFound { key: missing } => RepoError::Storage(format!(
                    "delta base '{missing}' of '{key}' is missing"
                )),
                other => other,
            })?),
            None => None,
        };
        let store = self.chunk_store();
        chunks::reconstruct(&manifest, base.as_ref(), &store)
            .map_err(|e| RepoError::Storage(format!("reconstructing '{key}': {e}")))
    }

    /// Total bytes of model storage: flat files, manifests, and
    /// chunks. Index snapshots and stray files don't count — this is
    /// the quantity family-aware dedup is meant to shrink.
    pub fn model_bytes(&self) -> io::Result<u64> {
        let mut total = 0u64;
        for name in self.storage.list(&self.root)? {
            if name.ends_with(MODEL_SUFFIX) || name.ends_with(MANIFEST_SUFFIX) {
                total += std::fs::metadata(self.root.join(&name))?.len();
            }
        }
        let chunk_dir = self.root.join(CHUNK_DIR);
        match self.storage.list(&chunk_dir) {
            Ok(names) => {
                for name in names {
                    total += std::fs::metadata(chunk_dir.join(&name))?.len();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(total)
    }
}

/// The on-disk representation of one key (see
/// [`OnDiskRepository::stored_format`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoredFormat {
    /// Standalone `.model.json` file.
    Flat,
    /// `.manifest.json` over content-addressed chunks.
    Chunked,
}

/// Outcome of [`dedup_store`].
#[derive(Clone, Debug, Default)]
pub struct DedupStats {
    /// Keys in the repository.
    pub models: usize,
    /// Keys migrated to full manifests.
    pub full: usize,
    /// Keys migrated to delta manifests.
    pub delta: usize,
    /// Keys that were already chunked (left untouched).
    pub skipped: usize,
    /// Model-storage bytes before and after migration.
    pub bytes_before: u64,
    pub bytes_after: u64,
}

impl DedupStats {
    /// Size-cut ratio (≥ 1.0 when migration helped).
    pub fn size_cut(&self) -> f64 {
        if self.bytes_after == 0 {
            1.0
        } else {
            self.bytes_before as f64 / self.bytes_after as f64
        }
    }
}

/// Migrate a flat store to chunked/delta storage in place (the
/// `sommelier dedup` engine). Models carrying a `base` metadata hint
/// that names another stored key become delta manifests against it;
/// everything else becomes a full manifest. Hints that dangle or form
/// cycles degrade to full manifests rather than failing the migration.
/// Each key cuts over atomically (manifest published, then the flat
/// file removed), so a crash mid-migration leaves every key loadable.
pub fn dedup_store(repo: &OnDiskRepository) -> Result<DedupStats, RepoError> {
    let keys = repo.try_keys()?;
    let mut stats = DedupStats {
        models: keys.len(),
        bytes_before: repo.model_bytes().map_err(|e| RepoError::Storage(e.to_string()))?,
        ..DedupStats::default()
    };
    let key_set: BTreeSet<&String> = keys.iter().collect();
    // Resolve base hints up front, degrading dangling or cyclic hints
    // to "no base" (full manifest).
    let mut hints: BTreeMap<String, Option<String>> = BTreeMap::new();
    for key in &keys {
        let hint = repo
            .load(key)
            .ok()
            .and_then(|m| m.metadata.get("base").cloned())
            .filter(|b| b != key && key_set.contains(b));
        hints.insert(key.clone(), hint);
    }
    let mut cyclic = Vec::new();
    for key in &keys {
        let mut seen = BTreeSet::new();
        let mut cur = key.clone();
        loop {
            if !seen.insert(cur.clone()) {
                cyclic.push(key.clone());
                break;
            }
            match hints.get(&cur).and_then(Clone::clone) {
                Some(next) => cur = next,
                None => break,
            }
        }
    }
    for key in cyclic {
        hints.insert(key, None);
    }
    for key in &keys {
        if repo.stored_format(key) == Some(StoredFormat::Chunked) {
            stats.skipped += 1;
            continue;
        }
        let model = repo.load(key)?;
        match hints.get(key).and_then(Clone::clone) {
            Some(base) => {
                repo.publish_delta(key, &model, &base, true)?;
                stats.delta += 1;
            }
            None => {
                repo.publish_chunked(key, &model, true)?;
                stats.full += 1;
            }
        }
    }
    stats.bytes_after = repo
        .model_bytes()
        .map_err(|e| RepoError::Storage(e.to_string()))?;
    Ok(stats)
}

impl ModelRepository for OnDiskRepository {
    fn publish(&self, key: &str, model: &Model, overwrite: bool) -> Result<(), RepoError> {
        let path = self.path_for(key);
        let json = serde_model::to_json(model);
        // Both paths commit through a single atomic filesystem op
        // (rename / hard link), so a crash leaves the old state or the
        // new state — never torn JSON — and two racing non-overwrite
        // publishes of one key cannot both succeed: the link is the
        // arbiter, not an `exists()` probe.
        let result = if overwrite {
            self.storage.write_atomic(&path, json.as_bytes())
        } else {
            // Advisory cross-format probe: an existing manifest also
            // means "this key is taken". Same-format races are still
            // arbitrated by the link below.
            if self.storage.exists(&self.manifest_path_for(key)) {
                return Err(RepoError::AlreadyExists { key: key.into() });
            }
            self.storage.create_exclusive(&path, json.as_bytes())
        };
        result.map_err(|e| Self::storage_err(Some(key), e))?;
        if overwrite {
            // The flat file now wins on load; a stale manifest from a
            // prior chunked representation is retired as cleanup (its
            // chunks become prunable orphans).
            match self.storage.remove(&self.manifest_path_for(key)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(Self::storage_err(Some(key), e)),
            }
        }
        Ok(())
    }

    fn load(&self, key: &str) -> Result<Model, RepoError> {
        self.load_chain(key, &mut BTreeSet::new())
    }

    fn try_keys(&self) -> Result<Vec<String>, RepoError> {
        let names = self
            .storage
            .list(&self.root)
            .map_err(|e| Self::storage_err(None, e))?;
        let mut out = BTreeSet::new();
        for name in names {
            // A key stored flat *and* chunked (a migration window)
            // must still list once — hence the set.
            if let Some(stem) = name
                .strip_suffix(MODEL_SUFFIX)
                .or_else(|| name.strip_suffix(MANIFEST_SUFFIX))
            {
                // Non-canonical stems are not repository entries (we
                // never write them); lint reports them as hygiene
                // findings rather than keys() inventing a key.
                if let Some(key) = decode_key(stem) {
                    out.insert(key);
                }
            }
        }
        Ok(out.into_iter().collect())
    }

    /// One directory pass — the count matches what
    /// [`ModelRepository::try_keys`] would return.
    fn len(&self) -> usize {
        match self.try_keys() {
            Ok(keys) => keys.len(),
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn model(name: &str) -> Model {
        let mut rng = Prng::seed_from_u64(1);
        ModelBuilder::new(name, TaskKind::Other, Shape::vector(4))
            .dense(2, &mut rng)
            .build()
            .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sommelier-repo-{tag}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn publish_then_load_round_trips() {
        let repo = InMemoryRepository::new();
        let m = model("a");
        repo.publish("a", &m, false).unwrap();
        assert_eq!(repo.load("a").unwrap(), m);
    }

    #[test]
    fn load_missing_key_fails() {
        let repo = InMemoryRepository::new();
        assert!(matches!(
            repo.load("nope"),
            Err(RepoError::NotFound { .. })
        ));
    }

    #[test]
    fn double_publish_requires_overwrite() {
        let repo = InMemoryRepository::new();
        let m = model("a");
        repo.publish("a", &m, false).unwrap();
        assert!(matches!(
            repo.publish("a", &m, false),
            Err(RepoError::AlreadyExists { .. })
        ));
        repo.publish("a", &m.renamed("a2"), true).unwrap();
        assert_eq!(repo.load("a").unwrap().name, "a2");
    }

    #[test]
    fn keys_are_sorted() {
        let repo = InMemoryRepository::new();
        for k in ["zeta", "alpha", "mid"] {
            repo.publish(k, &model(k), false).unwrap();
        }
        assert_eq!(repo.keys(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(repo.len(), 3);
    }

    #[test]
    fn publish_all_uses_model_names() {
        let repo = InMemoryRepository::new();
        let models = vec![model("x"), model("y")];
        repo.publish_all(&models).unwrap();
        assert_eq!(repo.keys(), vec!["x", "y"]);
    }

    #[test]
    fn key_encoding_is_injective_and_round_trips() {
        // The old sanitizer mapped both of these to "a_b".
        for pair in [("a/b", "a_b"), ("a b", "a%b"), ("x:y", "x_y")] {
            assert_ne!(encode_key(pair.0), encode_key(pair.1));
        }
        for key in ["a/b", "a_b", "disk/one:v1", "100% legit", "ünïcode/κ", "..", ""] {
            assert_eq!(decode_key(&encode_key(key)).as_deref(), Some(key));
        }
        // Non-canonical or malformed stems never decode.
        for stem in ["%2f", "%ZZ", "a%4", "%41", "a b"] {
            assert_eq!(decode_key(stem), None, "{stem}");
        }
    }

    #[test]
    fn on_disk_round_trip() {
        let dir = temp_dir("rt");
        let repo = OnDiskRepository::open(&dir).unwrap();
        let m = model("disk/one:v1");
        repo.publish("disk/one:v1", &m, false).unwrap();
        assert_eq!(repo.load("disk/one:v1").unwrap(), m);
        assert_eq!(repo.try_keys().unwrap(), vec!["disk/one:v1"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn on_disk_colliding_keys_stay_distinct() {
        // Regression: "a/b" and "a_b" used to sanitize to the same
        // file and silently overwrite each other.
        let dir = temp_dir("collide");
        let repo = OnDiskRepository::open(&dir).unwrap();
        let m1 = model("a/b");
        let m2 = model("a_b");
        repo.publish("a/b", &m1, false).unwrap();
        repo.publish("a_b", &m2, false).unwrap();
        assert_eq!(repo.load("a/b").unwrap().name, "a/b");
        assert_eq!(repo.load("a_b").unwrap().name, "a_b");
        assert_eq!(repo.try_keys().unwrap(), vec!["a/b", "a_b"]);
        assert_eq!(repo.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn on_disk_missing_key() {
        let dir = temp_dir("missing");
        let repo = OnDiskRepository::open(&dir).unwrap();
        assert!(matches!(
            repo.load("ghost"),
            Err(RepoError::NotFound { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_exclusive_publishes_have_one_winner() {
        // Regression for the publish TOCTOU: `exists()`-then-write let
        // two racing non-overwrite publishes both "succeed", one
        // silently clobbering the other. The link-based publish makes
        // the filesystem the arbiter.
        let dir = temp_dir("race");
        let repo = Arc::new(OnDiskRepository::open(&dir).unwrap());
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let wins: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let repo = Arc::clone(&repo);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        let m = model(&format!("contender-{i}"));
                        barrier.wait();
                        match repo.publish("the-key", &m, false) {
                            Ok(()) => true,
                            Err(RepoError::AlreadyExists { .. }) => false,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            wins.iter().filter(|&&w| w).count(),
            1,
            "exactly one racing publish may win"
        );
        // Whoever won, the stored file is whole and parseable.
        let stored = repo.load("the-key").unwrap();
        assert!(stored.name.starts_with("contender-"));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn perturbed(base: &Model, name: &str, delta: f32) -> Model {
        let mut m = base.renamed(name);
        let id = m.linear_layers()[0];
        let mut p = m.layer(id).params.clone();
        let w = p.weight.as_ref().unwrap();
        let mut data = w.as_slice().to_vec();
        data[0] += delta;
        p.weight = Some(sommelier_tensor::Tensor::from_vec(w.rows(), w.cols(), data));
        m.set_params(id, p).unwrap();
        m
    }

    #[test]
    fn chunked_publish_is_transparent_to_load() {
        let dir = temp_dir("chunked");
        let repo = OnDiskRepository::open(&dir).unwrap();
        let m = model("chunky");
        repo.publish_chunked("chunky", &m, false).unwrap();
        assert_eq!(repo.stored_format("chunky"), Some(StoredFormat::Chunked));
        assert_eq!(repo.load("chunky").unwrap(), m);
        assert_eq!(repo.try_keys().unwrap(), vec!["chunky"]);
        assert_eq!(repo.len(), 1);
        // Byte-identical: the reconstructed model serializes to the
        // same JSON the flat representation would have stored.
        assert_eq!(
            serde_model::to_json(&repo.load("chunky").unwrap()),
            serde_model::to_json(&m)
        );
        assert!(matches!(
            repo.publish_chunked("chunky", &m, false),
            Err(RepoError::AlreadyExists { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_publish_reconstructs_through_base_chain() {
        let dir = temp_dir("delta");
        let repo = OnDiskRepository::open(&dir).unwrap();
        let base = model("fam-base");
        let v1 = perturbed(&base, "fam-v1", 0.5);
        let v2 = perturbed(&v1, "fam-v2", -0.25);
        repo.publish_chunked("fam-base", &base, false).unwrap();
        repo.publish_delta("fam-v1", &v1, "fam-base", false).unwrap();
        // Chained delta: v2 deltas against v1, itself a delta.
        repo.publish_delta("fam-v2", &v2, "fam-v1", false).unwrap();
        assert_eq!(repo.load("fam-v1").unwrap(), v1);
        assert_eq!(repo.load("fam-v2").unwrap(), v2);
        assert_eq!(repo.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_against_missing_or_cyclic_base_fails() {
        let dir = temp_dir("deltabad");
        let repo = OnDiskRepository::open(&dir).unwrap();
        let m = model("solo");
        assert!(repo.publish_delta("solo", &m, "ghost", false).is_err());
        assert!(matches!(
            repo.publish_delta("solo", &m, "solo", false),
            Err(RepoError::Storage(_))
        ));
        // a -> b stored; republishing a as a delta on b would cycle.
        let a = model("a");
        let b = perturbed(&a, "b", 0.1);
        repo.publish_chunked("a", &a, false).unwrap();
        repo.publish_delta("b", &b, "a", false).unwrap();
        assert!(matches!(
            repo.publish_delta("a", &a, "b", true),
            Err(RepoError::Storage(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flat_file_wins_during_migration_window() {
        let dir = temp_dir("window");
        let repo = OnDiskRepository::open(&dir).unwrap();
        let old = model("old");
        let new = perturbed(&old, "new", 1.0);
        repo.publish("k", &old, false).unwrap();
        // Simulate a crash after the manifest landed but before the
        // flat file was removed: write the manifest out-of-band.
        let cs = repo.chunk_store();
        let manifest = crate::chunks::encode_full(&new, &cs).unwrap();
        std::fs::write(dir.join("k.manifest.json"), manifest.to_json()).unwrap();
        // The old flat representation is still what loads, and the key
        // lists exactly once.
        assert_eq!(repo.load("k").unwrap(), old);
        assert_eq!(repo.try_keys().unwrap(), vec!["k"]);
        assert_eq!(repo.len(), 1);
        // Completing the migration (removing the flat file) flips
        // visibility to the chunked representation.
        std::fs::remove_file(dir.join(format!("k{MODEL_SUFFIX}"))).unwrap();
        assert_eq!(repo.load("k").unwrap(), new);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flat_overwrite_retires_stale_manifest() {
        let dir = temp_dir("retire");
        let repo = OnDiskRepository::open(&dir).unwrap();
        let m1 = model("m1");
        let m2 = perturbed(&m1, "m2", 2.0);
        repo.publish_chunked("k", &m1, false).unwrap();
        repo.publish("k", &m2, true).unwrap();
        assert_eq!(repo.stored_format("k"), Some(StoredFormat::Flat));
        assert_eq!(repo.load("k").unwrap(), m2);
        assert!(!dir.join("k.manifest.json").exists());
        // And the exclusive flat publish refuses a chunked key.
        repo.publish_chunked("other", &m1, false).unwrap();
        assert!(matches!(
            repo.publish("other", &m1, false),
            Err(RepoError::AlreadyExists { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dedup_store_migrates_in_place() {
        let dir = temp_dir("dedup");
        let repo = OnDiskRepository::open(&dir).unwrap();
        let mut base = model("family-base");
        base.metadata.insert("self".into(), "noise".into());
        let mut v1 = perturbed(&base, "family-v1", 0.5);
        v1.metadata.insert("base".into(), "family-base".into());
        let mut loner = model("loner");
        loner.metadata.insert("base".into(), "nonexistent".into());
        repo.publish("family-base", &base, false).unwrap();
        repo.publish("family-v1", &v1, false).unwrap();
        repo.publish("loner", &loner, false).unwrap();

        let stats = dedup_store(&repo).unwrap();
        assert_eq!(stats.models, 3);
        assert_eq!(stats.delta, 1);
        assert_eq!(stats.full, 2); // base + dangling-hint loner
        assert_eq!(stats.skipped, 0);
        assert!(stats.bytes_after < stats.bytes_before);
        for (key, want) in [("family-base", &base), ("family-v1", &v1), ("loner", &loner)] {
            assert_eq!(repo.stored_format(key), Some(StoredFormat::Chunked));
            assert_eq!(&repo.load(key).unwrap(), want);
        }
        // Idempotent: a second run skips everything.
        let again = dedup_store(&repo).unwrap();
        assert_eq!(again.skipped, 3);
        assert_eq!(again.bytes_before, again.bytes_after);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dedup_store_degrades_hint_cycles_to_full() {
        let dir = temp_dir("dedupcycle");
        let repo = OnDiskRepository::open(&dir).unwrap();
        let mut a = model("a");
        a.metadata.insert("base".into(), "b".into());
        let mut b = perturbed(&a, "b", 0.5);
        b.metadata.insert("base".into(), "a".into());
        repo.publish("a", &a, false).unwrap();
        repo.publish("b", &b, false).unwrap();
        let stats = dedup_store(&repo).unwrap();
        assert_eq!(stats.full, 2);
        assert_eq!(stats.delta, 0);
        assert_eq!(repo.load("a").unwrap(), a);
        assert_eq!(repo.load("b").unwrap(), b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn try_keys_surfaces_listing_errors() {
        let dir = temp_dir("unlistable");
        let repo = OnDiskRepository::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(repo.try_keys(), Err(RepoError::Storage(_))));
        // The infallible wrapper degrades to empty; len follows suit.
        assert!(repo.keys().is_empty());
        assert_eq!(repo.len(), 0);
    }

    #[test]
    fn stray_files_are_not_keys() {
        let dir = temp_dir("stray");
        let repo = OnDiskRepository::open(&dir).unwrap();
        repo.publish("real", &model("real"), false).unwrap();
        // Temp orphans, quarantined artifacts, and non-canonical names
        // must not surface as repository keys.
        for stray in [
            "real.model.json.tmp-1-1",
            "real.model.json.corrupt-7",
            "%2f.model.json",
            "notes.txt",
        ] {
            std::fs::write(dir.join(stray), b"junk").unwrap();
        }
        assert_eq!(repo.try_keys().unwrap(), vec!["real"]);
        assert_eq!(repo.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
