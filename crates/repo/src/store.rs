//! Publish/load model storage.

use parking_lot::RwLock;
use sommelier_graph::serde_model;
use sommelier_graph::Model;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Repository failures.
#[derive(Debug)]
pub enum RepoError {
    /// No model is stored under the requested key.
    NotFound { key: String },
    /// A model is already stored under the key (publish without
    /// `overwrite`).
    AlreadyExists { key: String },
    /// Storage-layer failure (I/O, serialization).
    Storage(String),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::NotFound { key } => write!(f, "no model stored under '{key}'"),
            RepoError::AlreadyExists { key } => {
                write!(f, "a model is already stored under '{key}'")
            }
            RepoError::Storage(e) => write!(f, "storage failure: {e}"),
        }
    }
}

impl std::error::Error for RepoError {}

/// The primitive repository interface: exactly publish, load, and list.
/// This is the entire API surface a pre-Sommelier repository offers
/// (paper Section 2.1) — retrieval requires knowing the precise key.
pub trait ModelRepository: Send + Sync {
    /// Store a model under a key. Fails with [`RepoError::AlreadyExists`]
    /// unless `overwrite` is set.
    fn publish(&self, key: &str, model: &Model, overwrite: bool) -> Result<(), RepoError>;

    /// Retrieve the model stored under `key`.
    fn load(&self, key: &str) -> Result<Model, RepoError>;

    /// All stored keys, sorted.
    fn keys(&self) -> Vec<String>;

    /// Number of stored models.
    fn len(&self) -> usize {
        self.keys().len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory repository (the default for experiments).
#[derive(Clone, Default)]
pub struct InMemoryRepository {
    models: Arc<RwLock<BTreeMap<String, Model>>>,
}

impl InMemoryRepository {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-publish a collection of models keyed by their names.
    pub fn publish_all<'a>(
        &self,
        models: impl IntoIterator<Item = &'a Model>,
    ) -> Result<(), RepoError> {
        for m in models {
            self.publish(&m.name, m, false)?;
        }
        Ok(())
    }
}

impl ModelRepository for InMemoryRepository {
    fn publish(&self, key: &str, model: &Model, overwrite: bool) -> Result<(), RepoError> {
        let mut map = self.models.write();
        if !overwrite && map.contains_key(key) {
            return Err(RepoError::AlreadyExists { key: key.into() });
        }
        map.insert(key.to_string(), model.clone());
        Ok(())
    }

    fn load(&self, key: &str) -> Result<Model, RepoError> {
        self.models
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| RepoError::NotFound { key: key.into() })
    }

    fn keys(&self) -> Vec<String> {
        self.models.read().keys().cloned().collect()
    }

    fn len(&self) -> usize {
        self.models.read().len()
    }
}

/// On-disk repository: one JSON model file per key under a root directory
/// (keys are sanitized into file names).
pub struct OnDiskRepository {
    root: PathBuf,
}

impl OnDiskRepository {
    /// Open (creating if needed) a repository rooted at `root`.
    pub fn open(root: &Path) -> Result<Self, RepoError> {
        std::fs::create_dir_all(root).map_err(|e| RepoError::Storage(e.to_string()))?;
        Ok(OnDiskRepository { root: root.into() })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        let safe: String = key
            .chars()
            .map(|c| if c.is_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
            .collect();
        self.root.join(format!("{safe}.model.json"))
    }
}

impl ModelRepository for OnDiskRepository {
    fn publish(&self, key: &str, model: &Model, overwrite: bool) -> Result<(), RepoError> {
        let path = self.path_for(key);
        if !overwrite && path.exists() {
            return Err(RepoError::AlreadyExists { key: key.into() });
        }
        serde_model::save(model, &path).map_err(|e| RepoError::Storage(e.to_string()))
    }

    fn load(&self, key: &str) -> Result<Model, RepoError> {
        let path = self.path_for(key);
        if !path.exists() {
            return Err(RepoError::NotFound { key: key.into() });
        }
        serde_model::load(&path).map_err(|e| RepoError::Storage(e.to_string()))
    }

    fn keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    if let Some(stripped) = name.strip_suffix(".model.json") {
                        out.push(stripped.to_string());
                    }
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn model(name: &str) -> Model {
        let mut rng = Prng::seed_from_u64(1);
        ModelBuilder::new(name, TaskKind::Other, Shape::vector(4))
            .dense(2, &mut rng)
            .build()
            .unwrap()
    }

    #[test]
    fn publish_then_load_round_trips() {
        let repo = InMemoryRepository::new();
        let m = model("a");
        repo.publish("a", &m, false).unwrap();
        assert_eq!(repo.load("a").unwrap(), m);
    }

    #[test]
    fn load_missing_key_fails() {
        let repo = InMemoryRepository::new();
        assert!(matches!(
            repo.load("nope"),
            Err(RepoError::NotFound { .. })
        ));
    }

    #[test]
    fn double_publish_requires_overwrite() {
        let repo = InMemoryRepository::new();
        let m = model("a");
        repo.publish("a", &m, false).unwrap();
        assert!(matches!(
            repo.publish("a", &m, false),
            Err(RepoError::AlreadyExists { .. })
        ));
        repo.publish("a", &m.renamed("a2"), true).unwrap();
        assert_eq!(repo.load("a").unwrap().name, "a2");
    }

    #[test]
    fn keys_are_sorted() {
        let repo = InMemoryRepository::new();
        for k in ["zeta", "alpha", "mid"] {
            repo.publish(k, &model(k), false).unwrap();
        }
        assert_eq!(repo.keys(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(repo.len(), 3);
    }

    #[test]
    fn publish_all_uses_model_names() {
        let repo = InMemoryRepository::new();
        let models = vec![model("x"), model("y")];
        repo.publish_all(&models).unwrap();
        assert_eq!(repo.keys(), vec!["x", "y"]);
    }

    #[test]
    fn on_disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("sommelier-repo-{}", std::process::id()));
        let repo = OnDiskRepository::open(&dir).unwrap();
        let m = model("disk/one:v1");
        repo.publish("disk/one:v1", &m, false).unwrap();
        assert_eq!(repo.load("disk/one:v1").unwrap(), m);
        assert_eq!(repo.keys().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn on_disk_missing_key() {
        let dir = std::env::temp_dir().join(format!("sommelier-repo2-{}", std::process::id()));
        let repo = OnDiskRepository::open(&dir).unwrap();
        assert!(matches!(
            repo.load("ghost"),
            Err(RepoError::NotFound { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
