//! Publish/load model storage.

use parking_lot::RwLock;
use sommelier_fault::{StdStorage, Storage};
use sommelier_graph::serde_model;
use sommelier_graph::Model;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Repository failures.
#[derive(Debug)]
pub enum RepoError {
    /// No model is stored under the requested key.
    NotFound { key: String },
    /// A model is already stored under the key (publish without
    /// `overwrite`).
    AlreadyExists { key: String },
    /// Storage-layer failure (I/O, serialization).
    Storage(String),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::NotFound { key } => write!(f, "no model stored under '{key}'"),
            RepoError::AlreadyExists { key } => {
                write!(f, "a model is already stored under '{key}'")
            }
            RepoError::Storage(e) => write!(f, "storage failure: {e}"),
        }
    }
}

impl std::error::Error for RepoError {}

/// The primitive repository interface: exactly publish, load, and list.
/// This is the entire API surface a pre-Sommelier repository offers
/// (paper Section 2.1) — retrieval requires knowing the precise key.
pub trait ModelRepository: Send + Sync {
    /// Store a model under a key. Fails with [`RepoError::AlreadyExists`]
    /// unless `overwrite` is set.
    fn publish(&self, key: &str, model: &Model, overwrite: bool) -> Result<(), RepoError>;

    /// Retrieve the model stored under `key`.
    fn load(&self, key: &str) -> Result<Model, RepoError>;

    /// All stored keys, sorted — or the storage error that kept the
    /// backend from producing a complete listing. Callers that cannot
    /// tolerate a truncated view (index builds, lint, fsck) go through
    /// this; [`ModelRepository::keys`] is the infallible convenience
    /// wrapper.
    fn try_keys(&self) -> Result<Vec<String>, RepoError>;

    /// All stored keys, sorted; an unlistable backend reads as empty.
    fn keys(&self) -> Vec<String> {
        self.try_keys().unwrap_or_default()
    }

    /// Number of stored models.
    fn len(&self) -> usize {
        self.keys().len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory repository (the default for experiments).
#[derive(Clone, Default)]
pub struct InMemoryRepository {
    models: Arc<RwLock<BTreeMap<String, Model>>>,
}

impl InMemoryRepository {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-publish a collection of models keyed by their names.
    pub fn publish_all<'a>(
        &self,
        models: impl IntoIterator<Item = &'a Model>,
    ) -> Result<(), RepoError> {
        for m in models {
            self.publish(&m.name, m, false)?;
        }
        Ok(())
    }
}

impl ModelRepository for InMemoryRepository {
    fn publish(&self, key: &str, model: &Model, overwrite: bool) -> Result<(), RepoError> {
        let mut map = self.models.write();
        if !overwrite && map.contains_key(key) {
            return Err(RepoError::AlreadyExists { key: key.into() });
        }
        map.insert(key.to_string(), model.clone());
        Ok(())
    }

    fn load(&self, key: &str) -> Result<Model, RepoError> {
        self.models
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| RepoError::NotFound { key: key.into() })
    }

    fn try_keys(&self) -> Result<Vec<String>, RepoError> {
        Ok(self.models.read().keys().cloned().collect())
    }

    fn len(&self) -> usize {
        self.models.read().len()
    }
}

/// Suffix every stored model file carries.
const MODEL_SUFFIX: &str = ".model.json";

/// Bytes that survive key encoding verbatim. Everything else —
/// crucially `%`, `/`, and whitespace — is percent-escaped, which makes
/// the encoding injective: two distinct keys can never share a file.
fn is_plain(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.'
}

/// Injective (percent) encoding of a repository key into a file stem.
pub fn encode_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for &b in key.as_bytes() {
        if is_plain(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        }
    }
    out
}

/// Decode a file stem back into the original key. Returns `None` for
/// stems that are not the *canonical* encoding of any key (malformed
/// escapes, lowercase hex, escaped-but-plain bytes, invalid UTF-8) —
/// such files are never repository entries, and the lint layer flags
/// them.
pub fn decode_key(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b if is_plain(b) => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    let key = String::from_utf8(out).ok()?;
    // Canonical round-trip: rejects non-canonical spellings (e.g.
    // "%2f" vs "%2F", or "%41" for plain 'A') so no two on-disk names
    // can decode to the same key.
    (encode_key(&key) == stem).then_some(key)
}

/// On-disk repository: one JSON model file per key under a root
/// directory. Keys map to file names through the injective
/// [`encode_key`] / [`decode_key`] pair, every publish goes through the
/// crash-safe [`Storage`] composites (atomic rename for overwrites, an
/// `O_EXCL`-style link for first publishes), and listing failures
/// surface as [`RepoError::Storage`] instead of truncating silently.
pub struct OnDiskRepository {
    root: PathBuf,
    storage: Arc<dyn Storage>,
}

impl OnDiskRepository {
    /// Open (creating if needed) a repository rooted at `root`, backed
    /// by the real filesystem.
    pub fn open(root: &Path) -> Result<Self, RepoError> {
        Self::open_with(root, Arc::new(StdStorage))
    }

    /// Open a repository over an explicit storage backend (the
    /// fault-injection hook).
    pub fn open_with(root: &Path, storage: Arc<dyn Storage>) -> Result<Self, RepoError> {
        std::fs::create_dir_all(root).map_err(|e| RepoError::Storage(e.to_string()))?;
        Ok(OnDiskRepository {
            root: root.into(),
            storage,
        })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.root.join(format!("{}{MODEL_SUFFIX}", encode_key(key)))
    }

    fn storage_err(key: Option<&str>, e: io::Error) -> RepoError {
        match (key, e.kind()) {
            (Some(key), io::ErrorKind::NotFound) => RepoError::NotFound { key: key.into() },
            (Some(key), io::ErrorKind::AlreadyExists) => {
                RepoError::AlreadyExists { key: key.into() }
            }
            _ => RepoError::Storage(e.to_string()),
        }
    }
}

impl ModelRepository for OnDiskRepository {
    fn publish(&self, key: &str, model: &Model, overwrite: bool) -> Result<(), RepoError> {
        let path = self.path_for(key);
        let json = serde_model::to_json(model);
        // Both paths commit through a single atomic filesystem op
        // (rename / hard link), so a crash leaves the old state or the
        // new state — never torn JSON — and two racing non-overwrite
        // publishes of one key cannot both succeed: the link is the
        // arbiter, not an `exists()` probe.
        let result = if overwrite {
            self.storage.write_atomic(&path, json.as_bytes())
        } else {
            self.storage.create_exclusive(&path, json.as_bytes())
        };
        result.map_err(|e| Self::storage_err(Some(key), e))
    }

    fn load(&self, key: &str) -> Result<Model, RepoError> {
        let path = self.path_for(key);
        let bytes = self
            .storage
            .read(&path)
            .map_err(|e| Self::storage_err(Some(key), e))?;
        let json =
            String::from_utf8(bytes).map_err(|e| RepoError::Storage(e.to_string()))?;
        serde_model::from_json(&json).map_err(|e| RepoError::Storage(e.to_string()))
    }

    fn try_keys(&self) -> Result<Vec<String>, RepoError> {
        let names = self
            .storage
            .list(&self.root)
            .map_err(|e| Self::storage_err(None, e))?;
        let mut out = Vec::new();
        for name in names {
            if let Some(stem) = name.strip_suffix(MODEL_SUFFIX) {
                // Non-canonical stems are not repository entries (we
                // never write them); lint reports them as hygiene
                // findings rather than keys() inventing a key.
                if let Some(key) = decode_key(stem) {
                    out.push(key);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// One directory pass, no sort, no decode allocation kept — the
    /// count matches what [`ModelRepository::try_keys`] would return.
    fn len(&self) -> usize {
        match self.storage.list(&self.root) {
            Ok(names) => names
                .iter()
                .filter(|n| {
                    n.strip_suffix(MODEL_SUFFIX)
                        .is_some_and(|stem| decode_key(stem).is_some())
                })
                .count(),
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn model(name: &str) -> Model {
        let mut rng = Prng::seed_from_u64(1);
        ModelBuilder::new(name, TaskKind::Other, Shape::vector(4))
            .dense(2, &mut rng)
            .build()
            .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sommelier-repo-{tag}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn publish_then_load_round_trips() {
        let repo = InMemoryRepository::new();
        let m = model("a");
        repo.publish("a", &m, false).unwrap();
        assert_eq!(repo.load("a").unwrap(), m);
    }

    #[test]
    fn load_missing_key_fails() {
        let repo = InMemoryRepository::new();
        assert!(matches!(
            repo.load("nope"),
            Err(RepoError::NotFound { .. })
        ));
    }

    #[test]
    fn double_publish_requires_overwrite() {
        let repo = InMemoryRepository::new();
        let m = model("a");
        repo.publish("a", &m, false).unwrap();
        assert!(matches!(
            repo.publish("a", &m, false),
            Err(RepoError::AlreadyExists { .. })
        ));
        repo.publish("a", &m.renamed("a2"), true).unwrap();
        assert_eq!(repo.load("a").unwrap().name, "a2");
    }

    #[test]
    fn keys_are_sorted() {
        let repo = InMemoryRepository::new();
        for k in ["zeta", "alpha", "mid"] {
            repo.publish(k, &model(k), false).unwrap();
        }
        assert_eq!(repo.keys(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(repo.len(), 3);
    }

    #[test]
    fn publish_all_uses_model_names() {
        let repo = InMemoryRepository::new();
        let models = vec![model("x"), model("y")];
        repo.publish_all(&models).unwrap();
        assert_eq!(repo.keys(), vec!["x", "y"]);
    }

    #[test]
    fn key_encoding_is_injective_and_round_trips() {
        // The old sanitizer mapped both of these to "a_b".
        for pair in [("a/b", "a_b"), ("a b", "a%b"), ("x:y", "x_y")] {
            assert_ne!(encode_key(pair.0), encode_key(pair.1));
        }
        for key in ["a/b", "a_b", "disk/one:v1", "100% legit", "ünïcode/κ", "..", ""] {
            assert_eq!(decode_key(&encode_key(key)).as_deref(), Some(key));
        }
        // Non-canonical or malformed stems never decode.
        for stem in ["%2f", "%ZZ", "a%4", "%41", "a b"] {
            assert_eq!(decode_key(stem), None, "{stem}");
        }
    }

    #[test]
    fn on_disk_round_trip() {
        let dir = temp_dir("rt");
        let repo = OnDiskRepository::open(&dir).unwrap();
        let m = model("disk/one:v1");
        repo.publish("disk/one:v1", &m, false).unwrap();
        assert_eq!(repo.load("disk/one:v1").unwrap(), m);
        assert_eq!(repo.try_keys().unwrap(), vec!["disk/one:v1"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn on_disk_colliding_keys_stay_distinct() {
        // Regression: "a/b" and "a_b" used to sanitize to the same
        // file and silently overwrite each other.
        let dir = temp_dir("collide");
        let repo = OnDiskRepository::open(&dir).unwrap();
        let m1 = model("a/b");
        let m2 = model("a_b");
        repo.publish("a/b", &m1, false).unwrap();
        repo.publish("a_b", &m2, false).unwrap();
        assert_eq!(repo.load("a/b").unwrap().name, "a/b");
        assert_eq!(repo.load("a_b").unwrap().name, "a_b");
        assert_eq!(repo.try_keys().unwrap(), vec!["a/b", "a_b"]);
        assert_eq!(repo.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn on_disk_missing_key() {
        let dir = temp_dir("missing");
        let repo = OnDiskRepository::open(&dir).unwrap();
        assert!(matches!(
            repo.load("ghost"),
            Err(RepoError::NotFound { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_exclusive_publishes_have_one_winner() {
        // Regression for the publish TOCTOU: `exists()`-then-write let
        // two racing non-overwrite publishes both "succeed", one
        // silently clobbering the other. The link-based publish makes
        // the filesystem the arbiter.
        let dir = temp_dir("race");
        let repo = Arc::new(OnDiskRepository::open(&dir).unwrap());
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let wins: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let repo = Arc::clone(&repo);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        let m = model(&format!("contender-{i}"));
                        barrier.wait();
                        match repo.publish("the-key", &m, false) {
                            Ok(()) => true,
                            Err(RepoError::AlreadyExists { .. }) => false,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            wins.iter().filter(|&&w| w).count(),
            1,
            "exactly one racing publish may win"
        );
        // Whoever won, the stored file is whole and parseable.
        let stored = repo.load("the-key").unwrap();
        assert!(stored.name.starts_with("contender-"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn try_keys_surfaces_listing_errors() {
        let dir = temp_dir("unlistable");
        let repo = OnDiskRepository::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(repo.try_keys(), Err(RepoError::Storage(_))));
        // The infallible wrapper degrades to empty; len follows suit.
        assert!(repo.keys().is_empty());
        assert_eq!(repo.len(), 0);
    }

    #[test]
    fn stray_files_are_not_keys() {
        let dir = temp_dir("stray");
        let repo = OnDiskRepository::open(&dir).unwrap();
        repo.publish("real", &model("real"), false).unwrap();
        // Temp orphans, quarantined artifacts, and non-canonical names
        // must not surface as repository keys.
        for stray in [
            "real.model.json.tmp-1-1",
            "real.model.json.corrupt-7",
            "%2f.model.json",
            "notes.txt",
        ] {
            std::fs::write(dir.join(stray), b"junk").unwrap();
        }
        assert_eq!(repo.try_keys().unwrap(), vec!["real"]);
        assert_eq!(repo.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
