//! The bare-bone model repository substrate.
//!
//! This crate reproduces what the paper says existing model repositories
//! *are*: "a remote filesystem only, with primitive APIs to publish and
//! load a model" (Section 2.1). A [`ModelRepository`] maps URL-like keys to
//! stored models and nothing more — no query support, no indices. That is
//! deliberately spartan: Sommelier interposes on top of this interface
//! (Figure 1), and the bench harness's "manual profiling" baselines use it
//! exactly the way a user without Sommelier would.
//!
//! Two backends are provided: in-memory (the default for experiments) and
//! on-disk (models serialized through `sommelier-graph::serde_model`,
//! mirroring TF-Hub's file downloads). The on-disk backend additionally
//! supports family-aware delta storage ([`chunks`]): a model may be kept
//! as a manifest over content-addressed tensor chunks — full, or a delta
//! against a base model — and is reconstructed transparently on load, so
//! the repository's callers never see the difference.

pub mod chunks;
pub mod store;

pub use chunks::{
    chunk_hash, is_chunk_name, ChunkStore, Manifest, CHUNK_DIR, CHUNK_SUFFIX, MANIFEST_SUFFIX,
};
pub use store::{
    decode_key, dedup_store, encode_key, DedupStats, InMemoryRepository, ModelRepository,
    OnDiskRepository, RepoError, StoredFormat, MODEL_SUFFIX,
};
