//! The bare-bone model repository substrate.
//!
//! This crate reproduces what the paper says existing model repositories
//! *are*: "a remote filesystem only, with primitive APIs to publish and
//! load a model" (Section 2.1). A [`ModelRepository`] maps URL-like keys to
//! stored models and nothing more — no query support, no indices. That is
//! deliberately spartan: Sommelier interposes on top of this interface
//! (Figure 1), and the bench harness's "manual profiling" baselines use it
//! exactly the way a user without Sommelier would.
//!
//! Two backends are provided: in-memory (the default for experiments) and
//! on-disk (models serialized through `sommelier-graph::serde_model`,
//! mirroring TF-Hub's file downloads).

pub mod store;

pub use store::{
    decode_key, encode_key, InMemoryRepository, ModelRepository, OnDiskRepository, RepoError,
};
