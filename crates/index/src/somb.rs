//! The `.somb` versioned binary snapshot format.
//!
//! JSON snapshots parse the world on every open; at fleet scale the
//! front-door costs are cold-open latency and scan throughput. `.somb`
//! is a little-endian binary image designed for cheap validation and
//! linear scanning:
//!
//! * a fixed-size CRC-checked header (magic, version, epoch, counts,
//!   section table) — opening validates the header in O(1) without
//!   touching the body;
//! * an interned string table (every key stored once, rows refer by id);
//! * fixed-size resource rows and candidate rows with inline filter
//!   metadata (flags, fingerprints, cost bounds as exact `f64` bits);
//! * one contiguous **64-byte-aligned `f32` slab** holding all resource
//!   vectors ([`crate::resource::SLAB_STRIDE`] lanes per row) — the
//!   linear-scan surface for the chunked scoring kernels, sliceable
//!   zero-copy out of a [`SnapshotBytes`] buffer;
//! * per-section CRC32s so tears localize (and the lint layer can name
//!   the torn section).
//!
//! Numeric profile and score values are stored as exact `f64` bit
//! patterns. The vendored JSON layer round-trips `f64` exactly too
//! (shortest-round-trip rendering), so a snapshot converted JSON →
//! binary → JSON is byte-identical and both formats serve bit-equal
//! query results.
//!
//! Layout (version 2, all integers little-endian):
//!
//! ```text
//! header   0   magic "SOMB" | version u32 | header_len u32 | flags u32
//!          16  epoch i64 | stats_version u32 | section_count u32
//!          32  models i64 | candidate_records i64 | resource_entries i64
//!          56  section table: 6 × { offset u64, len u64, crc32 u32, pad u32 }
//!          200 header_crc32 u32        (over bytes [0, 200))
//! sections strings | resource rows | f32 slab (64-aligned) | lsh
//!          | semantic | edges
//! ```
//!
//! Version 2 (incremental index maintenance) added the `edges` section —
//! one fixed 56-byte row per attempted model pair, `(lo, hi)`-sorted:
//! both fingerprints, a presence mask, and the four measured diffs as
//! exact `f64` bits. The resource sections are written from the index's
//! *canonical view* (live sorted-key entries, no tombstones, renumbered
//! LSH ids), so a snapshot's bytes are a pure function of the surviving
//! key set regardless of the mutation history that produced it.
//!
//! Versioning policy: `version` bumps on any layout change; readers
//! reject unknown versions with a typed error (the engine then
//! quarantines and rebuilds). New *optional* payload goes behind new
//! `flags` bits within a version.

use crate::lsh::{CosineLsh, LshConfig};
use crate::persist::{IndexSnapshot, PersistError, SnapshotStats, SNAPSHOT_VERSION};
use crate::resource::{ResourceIndex, SLAB_STRIDE};
use crate::semantic::{CandidateKind, CandidateRecord, EdgeRow, SemanticIndex, SemanticIndexConfig};
use sommelier_graph::Fingerprint;
use sommelier_runtime::ResourceProfile;

/// Magic bytes identifying a binary snapshot (the format sniff).
pub const MAGIC: [u8; 4] = *b"SOMB";
/// Current binary format version.
pub const SOMB_VERSION: u32 = 2;

/// Fixed header size: 56 bytes of scalars + section table + trailing CRC.
const HEADER_LEN: usize = 56 + SECTION_COUNT * 24 + 4;
const SECTION_COUNT: usize = 6;

/// Section indices in the header table.
const SEC_STRINGS: usize = 0;
const SEC_ROWS: usize = 1;
const SEC_SLAB: usize = 2;
const SEC_LSH: usize = 3;
const SEC_SEMANTIC: usize = 4;
const SEC_EDGES: usize = 5;

/// Human-readable section names (lint diagnostics).
pub const SECTION_NAMES: [&str; SECTION_COUNT] =
    ["strings", "resource-rows", "slab", "lsh", "semantic", "edges"];

/// Byte size of one fixed edge row.
const EDGE_ROW_BYTES: u32 = 56;
/// Presence-mask bits for the four optional edge measurements.
const EDGE_FWD: u32 = 1 << 0;
const EDGE_REV: u32 = 1 << 1;
const EDGE_SEG_FWD: u32 = 1 << 2;
const EDGE_SEG_REV: u32 = 1 << 3;

/// Header flag bits.
const FLAG_STATS: u32 = 1 << 0;
const FLAG_EPOCH: u32 = 1 << 1;
const FLAG_EXHAUSTIVE: u32 = 1 << 2;

/// Candidate row `kind` tags.
const KIND_WHOLE: u32 = 0;
const KIND_TRANSITIVE: u32 = 1;
const KIND_SYNTHESIZED: u32 = 2;
/// `aux_id` placeholder for rows without a via/donor reference.
const NO_AUX: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78)
// ---------------------------------------------------------------------------

/// Slice-by-8 lookup tables for the software path: `t[0]` is the
/// classic byte-at-a-time table; `t[k][b]` advances byte `b` through
/// `k` further zero bytes, letting the hot loop fold 8 input bytes per
/// iteration.
fn crc_tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0x82F6_3B78 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// CRC-32C checksum of a byte slice (Castagnoli polynomial, reflected).
///
/// Castagnoli rather than the IEEE polynomial because x86-64 carries a
/// dedicated `crc32` instruction for exactly this polynomial: the
/// checksum pass sweeps every section of a snapshot image on open, so
/// it folds 8 bytes per instruction when SSE4.2 is present and falls
/// back to a slice-by-8 table sweep elsewhere. Both paths compute the
/// same function (see the equivalence test).
pub fn crc32(bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // Safety: gated on runtime SSE4.2 detection.
        return unsafe { crc32_hw(bytes) };
    }
    crc32_sw(bytes)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32_hw(bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    // The 64-bit form keeps its state in the low 32 bits.
    let mut c = u64::from(u32::MAX);
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        c = _mm_crc32_u64(c, u64::from_le_bytes(ch.try_into().unwrap()));
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    !c
}

fn crc32_sw(bytes: &[u8]) -> u32 {
    let t = crc_tables();
    let mut c = u32::MAX;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// SnapshotBytes: an owned, 64-byte-aligned byte buffer
// ---------------------------------------------------------------------------

/// An owned snapshot image whose first byte sits on a 64-byte boundary.
///
/// The std-only stand-in for `mmap`: the file is read in one syscall
/// into an aligned buffer so in-file 64-byte-aligned sections (the f32
/// slab) stay aligned in memory and can be viewed zero-copy. The same
/// abstraction boundary would hold an actual memory map.
pub struct SnapshotBytes {
    buf: Vec<u8>,
    start: usize,
}

impl SnapshotBytes {
    /// Wrap raw bytes, re-homing them to a 64-byte-aligned base when the
    /// allocator did not already provide one.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        if (bytes.as_ptr() as usize).is_multiple_of(64) {
            return SnapshotBytes { buf: bytes, start: 0 };
        }
        let mut buf: Vec<u8> = Vec::with_capacity(bytes.len() + 64);
        // Padding within the reserved capacity never reallocates, so the
        // base pointer observed here is the one the data lands behind.
        let pad = (64 - (buf.as_ptr() as usize % 64)) % 64;
        buf.resize(pad, 0);
        buf.extend_from_slice(&bytes);
        SnapshotBytes { buf, start: pad }
    }

    /// The snapshot image.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy view of the f32 slab section, if the image is a valid
    /// binary snapshot. The section is 64-byte-aligned in-file and the
    /// buffer is 64-byte-aligned in memory, so the cast never copies.
    pub fn slab_f32(&self) -> Option<&[f32]> {
        let header = validate_header(self.as_slice()).ok()?;
        let (off, len) = header.sections[SEC_SLAB];
        let raw = self.as_slice().get(off..off + len)?;
        let (head, floats, tail) = unsafe { raw.align_to::<f32>() };
        if head.is_empty() && tail.is_empty() {
            Some(floats)
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Little-endian primitives
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked sequential reader over a section payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| truncated("payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn truncated(what: &str) -> PersistError {
    PersistError::Format(format!("binary snapshot truncated in {what}"))
}

fn align_to(out: &mut Vec<u8>, align: usize) {
    while !out.len().is_multiple_of(align) {
        out.push(0);
    }
}

// ---------------------------------------------------------------------------
// String interning
// ---------------------------------------------------------------------------

struct Interner {
    ids: std::collections::HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    /// Build the table from every string the snapshot references, sorted
    /// so the encoding is deterministic regardless of map iteration
    /// order.
    fn build<'a>(all: impl Iterator<Item = &'a str>) -> Self {
        let mut strings: Vec<String> = all.map(str::to_string).collect();
        strings.sort_unstable();
        strings.dedup();
        assert!(strings.len() < u32::MAX as usize, "string table overflow");
        let ids = strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        Interner { ids, strings }
    }

    fn id(&self, s: &str) -> u32 {
        self.ids[s]
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serialize both indices (plus the optional stats header) into a
/// `.somb` image. Deterministic: identical indices encode to identical
/// bytes at any job count (all map-backed structures are emitted in
/// sorted order).
pub fn encode(
    semantic: &SemanticIndex,
    resource: &ResourceIndex,
    stats: Option<&SnapshotStats>,
) -> Vec<u8> {
    // Deterministic entry orders up front. The resource side encodes its
    // canonical view (live sorted-key entries, renumbered LSH) so the
    // image is a pure function of the surviving key set.
    let mut sem_entries = semantic.entries_audit();
    sem_entries.sort_by_key(|(fp, _, _)| fp.0);
    let (res_entries, _, res_lsh) = resource.canonical_view();
    let edge_rows = semantic.edge_rows();

    let interner = Interner::build(
        res_entries
            .iter()
            .map(|(k, _)| k.as_str())
            .chain(sem_entries.iter().flat_map(|(_, key, cands)| {
                std::iter::once(*key).chain(cands.iter().flat_map(|c| {
                    std::iter::once(c.key.as_str()).chain(match &c.kind {
                        CandidateKind::Whole => None,
                        CandidateKind::Transitive { via } => Some(via.as_str()),
                        CandidateKind::Synthesized { donor } => Some(donor.as_str()),
                    })
                }))
            }))
            .chain(semantic.keys().iter().map(String::as_str)),
    );

    // Section payloads.
    let mut strings = Vec::new();
    put_u32(&mut strings, interner.strings.len() as u32);
    for s in &interner.strings {
        put_u32(&mut strings, s.len() as u32);
        strings.extend_from_slice(s.as_bytes());
    }

    let mut rows = Vec::new();
    assert!(res_entries.len() < u32::MAX as usize, "resource row overflow");
    put_u32(&mut rows, res_entries.len() as u32);
    put_u32(&mut rows, 32); // row byte size, a reader sanity anchor
    for (key, p) in &res_entries {
        put_u32(&mut rows, interner.id(key));
        put_u32(&mut rows, 0); // removed flag: canonical rows are all live
        put_f64(&mut rows, p.memory_mb);
        put_f64(&mut rows, p.gflops);
        put_f64(&mut rows, p.latency_ms);
    }

    // Canonical slab: one row per live entry, derived from the exact f64
    // profiles (the same derivation the loader performs).
    let mut slab = Vec::with_capacity(res_entries.len() * SLAB_STRIDE * 4);
    for (_, p) in &res_entries {
        for v in [p.memory_mb as f32, p.gflops as f32, p.latency_ms as f32, 0.0] {
            put_f32(&mut slab, v);
        }
    }

    let lsh = &res_lsh;
    let mut lsh_bytes = Vec::new();
    let cfg = lsh.config();
    put_u32(&mut lsh_bytes, lsh.dim() as u32);
    put_u32(&mut lsh_bytes, cfg.bits as u32);
    put_u32(&mut lsh_bytes, cfg.tables as u32);
    put_u32(&mut lsh_bytes, 0);
    put_u64(&mut lsh_bytes, lsh.len() as u64);
    for plane in lsh.planes() {
        for &x in plane {
            put_f64(&mut lsh_bytes, x);
        }
    }
    for table in lsh.buckets_audit() {
        put_u32(&mut lsh_bytes, table.len() as u32);
        for (sig, ids) in table {
            put_u64(&mut lsh_bytes, sig);
            put_u32(&mut lsh_bytes, ids.len() as u32);
            for &id in ids {
                assert!(id < u32::MAX as usize, "lsh id overflow");
                put_u32(&mut lsh_bytes, id as u32);
            }
        }
    }

    let sem_cfg = semantic.config();
    let mut sem = Vec::new();
    put_u64(&mut sem, sem_cfg.sample_size as u64);
    put_u64(&mut sem, sem_cfg.max_candidates as u64);
    put_u64(&mut sem, semantic.seed());
    put_u32(&mut sem, u32::from(sem_cfg.segments));
    put_u32(&mut sem, sem_entries.len() as u32);
    let mut candidate_rows = 0i64;
    for (fp, key, cands) in &sem_entries {
        put_u64(&mut sem, fp.0);
        put_u32(&mut sem, interner.id(key));
        put_u32(&mut sem, cands.len() as u32);
        candidate_rows += cands.len() as i64;
        for c in cands.iter() {
            let (kind, aux) = match &c.kind {
                CandidateKind::Whole => (KIND_WHOLE, NO_AUX),
                CandidateKind::Transitive { via } => (KIND_TRANSITIVE, interner.id(via)),
                CandidateKind::Synthesized { donor } => (KIND_SYNTHESIZED, interner.id(donor)),
            };
            put_u32(&mut sem, interner.id(&c.key));
            put_u32(&mut sem, kind);
            put_u32(&mut sem, aux);
            put_u32(&mut sem, 0);
            put_f64(&mut sem, c.diff_bound);
            put_f64(&mut sem, c.score);
        }
    }
    put_u32(&mut sem, semantic.keys().len() as u32);
    for key in semantic.keys() {
        put_u32(&mut sem, interner.id(key));
    }

    // Edge table: fixed rows, already (lo, hi)-sorted.
    let mut edges = Vec::new();
    assert!(edge_rows.len() < u32::MAX as usize, "edge row overflow");
    put_u32(&mut edges, edge_rows.len() as u32);
    put_u32(&mut edges, EDGE_ROW_BYTES);
    for r in &edge_rows {
        put_u64(&mut edges, r.lo);
        put_u64(&mut edges, r.hi);
        let mut mask = 0u32;
        for (bit, v) in [
            (EDGE_FWD, r.fwd),
            (EDGE_REV, r.rev),
            (EDGE_SEG_FWD, r.seg_fwd),
            (EDGE_SEG_REV, r.seg_rev),
        ] {
            if v.is_some() {
                mask |= bit;
            }
        }
        put_u32(&mut edges, mask);
        put_u32(&mut edges, 0);
        put_f64(&mut edges, r.fwd.unwrap_or(0.0));
        put_f64(&mut edges, r.rev.unwrap_or(0.0));
        put_f64(&mut edges, r.seg_fwd.unwrap_or(0.0));
        put_f64(&mut edges, r.seg_rev.unwrap_or(0.0));
    }

    // Assemble: header placeholder, then sections (slab 64-aligned).
    let mut out = vec![0u8; HEADER_LEN];
    let mut sections = [(0usize, 0usize, 0u32); SECTION_COUNT];
    let payloads: [(usize, &[u8], usize); SECTION_COUNT] = [
        (SEC_STRINGS, &strings, 8),
        (SEC_ROWS, &rows, 8),
        (SEC_SLAB, &slab, 64),
        (SEC_LSH, &lsh_bytes, 8),
        (SEC_SEMANTIC, &sem, 8),
        (SEC_EDGES, &edges, 8),
    ];
    for (idx, payload, align) in payloads {
        align_to(&mut out, align);
        sections[idx] = (out.len(), payload.len(), crc32(payload));
        out.extend_from_slice(payload);
    }

    // Fill the header in place.
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    put_u32(&mut header, SOMB_VERSION);
    put_u32(&mut header, HEADER_LEN as u32);
    let mut flags = 0u32;
    if stats.is_some() {
        flags |= FLAG_STATS;
    }
    if stats.is_some_and(|s| s.epoch.is_some()) {
        flags |= FLAG_EPOCH;
    }
    if resource.exhaustive {
        flags |= FLAG_EXHAUSTIVE;
    }
    put_u32(&mut header, flags);
    put_i64(&mut header, stats.and_then(|s| s.epoch).unwrap_or(0));
    put_u32(&mut header, stats.map_or(0, |s| s.stats_version));
    put_u32(&mut header, SECTION_COUNT as u32);
    put_i64(&mut header, stats.map_or(semantic.len() as i64, |s| s.models));
    put_i64(&mut header, stats.map_or(candidate_rows, |s| s.candidate_records));
    put_i64(
        &mut header,
        stats.map_or(resource.len() as i64, |s| s.resource_entries),
    );
    for (off, len, crc) in sections {
        put_u64(&mut header, off as u64);
        put_u64(&mut header, len as u64);
        put_u32(&mut header, crc);
        put_u32(&mut header, 0);
    }
    debug_assert_eq!(header.len(), HEADER_LEN - 4);
    let hcrc = crc32(&header);
    put_u32(&mut header, hcrc);
    out[..HEADER_LEN].copy_from_slice(&header);
    out
}

// ---------------------------------------------------------------------------
// Header validation (the O(1) open check)
// ---------------------------------------------------------------------------

/// Parsed, CRC-validated header of a binary snapshot.
pub struct Header {
    pub version: u32,
    pub flags: u32,
    pub epoch: i64,
    pub stats_version: u32,
    pub models: i64,
    pub candidate_records: i64,
    pub resource_entries: i64,
    /// Per-section `(offset, len)` in image order.
    pub sections: [(usize, usize); SECTION_COUNT],
    /// Per-section stored CRC32s.
    pub section_crcs: [u32; SECTION_COUNT],
}

impl Header {
    /// The stats header this snapshot carries, if any.
    pub fn stats(&self) -> Option<SnapshotStats> {
        if self.flags & FLAG_STATS == 0 {
            return None;
        }
        Some(SnapshotStats {
            stats_version: self.stats_version,
            models: self.models,
            candidate_records: self.candidate_records,
            resource_entries: self.resource_entries,
            epoch: (self.flags & FLAG_EPOCH != 0).then_some(self.epoch),
        })
    }
}

/// Whether a byte image *claims* to be a binary snapshot (the format
/// sniff — magic only, no validation).
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC
}

/// Validate magic, version, and the header CRC, and parse the section
/// table — O(1) in snapshot size (the body is untouched; section CRCs
/// verify on decode, or under lint).
pub fn validate_header(bytes: &[u8]) -> Result<Header, PersistError> {
    if !is_binary(bytes) {
        return Err(PersistError::Format("missing SOMB magic".to_string()));
    }
    if bytes.len() < HEADER_LEN {
        return Err(truncated("header"));
    }
    let mut c = Cursor::new(&bytes[..HEADER_LEN]);
    c.take(4)?; // magic
    let version = c.u32()?;
    if version != SOMB_VERSION {
        return Err(PersistError::Version {
            found: version,
            expected: SOMB_VERSION,
        });
    }
    let header_len = c.u32()? as usize;
    if header_len != HEADER_LEN {
        return Err(PersistError::Format(format!(
            "binary snapshot declares header length {header_len}, expected {HEADER_LEN}"
        )));
    }
    let stored_crc = u32::from_le_bytes(bytes[HEADER_LEN - 4..HEADER_LEN].try_into().unwrap());
    let computed = crc32(&bytes[..HEADER_LEN - 4]);
    if stored_crc != computed {
        return Err(PersistError::Format(format!(
            "binary snapshot header CRC mismatch (stored {stored_crc:#010x}, computed {computed:#010x})"
        )));
    }
    let flags = c.u32()?;
    let epoch = c.i64()?;
    let stats_version = c.u32()?;
    let section_count = c.u32()? as usize;
    if section_count != SECTION_COUNT {
        return Err(PersistError::Format(format!(
            "binary snapshot declares {section_count} sections, expected {SECTION_COUNT}"
        )));
    }
    let models = c.i64()?;
    let candidate_records = c.i64()?;
    let resource_entries = c.i64()?;
    let mut sections = [(0usize, 0usize); SECTION_COUNT];
    let mut section_crcs = [0u32; SECTION_COUNT];
    for i in 0..SECTION_COUNT {
        let off = c.u64()? as usize;
        let len = c.u64()? as usize;
        section_crcs[i] = c.u32()?;
        c.u32()?; // reserved
        let end = off.checked_add(len).ok_or_else(|| truncated("section table"))?;
        if off < HEADER_LEN || end > bytes.len() {
            return Err(PersistError::Format(format!(
                "section '{}' [{off}, {end}) exceeds snapshot of {} bytes",
                SECTION_NAMES[i],
                bytes.len()
            )));
        }
        sections[i] = (off, len);
    }
    if sections[SEC_SLAB].0 % 64 != 0 {
        return Err(PersistError::Format(format!(
            "slab section offset {} is not 64-byte aligned",
            sections[SEC_SLAB].0
        )));
    }
    Ok(Header {
        version,
        flags,
        epoch,
        stats_version,
        models,
        candidate_records,
        resource_entries,
        sections,
        section_crcs,
    })
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn section<'a>(bytes: &'a [u8], header: &Header, idx: usize) -> Result<&'a [u8], PersistError> {
    let (off, len) = header.sections[idx];
    let payload = &bytes[off..off + len];
    let computed = crc32(payload);
    if computed != header.section_crcs[idx] {
        return Err(PersistError::Format(format!(
            "section '{}' CRC mismatch (stored {:#010x}, computed {computed:#010x})",
            SECTION_NAMES[idx], header.section_crcs[idx]
        )));
    }
    Ok(payload)
}

/// Section payload by table bounds alone — no CRC. `validate_header`
/// has already range-checked every section, so the slice is in bounds;
/// callers must pair this with a CRC pass (see [`decode`]) before
/// trusting the result.
fn section_raw<'a>(bytes: &'a [u8], header: &Header, idx: usize) -> &'a [u8] {
    let (off, len) = header.sections[idx];
    &bytes[off..off + len]
}

/// Verify every section CRC against the header table.
fn verify_sections(bytes: &[u8], header: &Header) -> Result<(), PersistError> {
    for idx in 0..SECTION_COUNT {
        section(bytes, header, idx)?;
    }
    Ok(())
}

fn decode_strings(payload: &[u8]) -> Result<Vec<String>, PersistError> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = c.u32()? as usize;
        let raw = c.take(len)?;
        out.push(
            std::str::from_utf8(raw)
                .map_err(|e| PersistError::Format(format!("string table is not UTF-8: {e}")))?
                .to_string(),
        );
    }
    if !c.done() {
        return Err(PersistError::Format("trailing bytes in string table".into()));
    }
    Ok(out)
}

fn lookup<'a>(strings: &'a [String], id: u32, what: &str) -> Result<&'a str, PersistError> {
    strings
        .get(id as usize)
        .map(String::as_str)
        .ok_or_else(|| PersistError::Format(format!("{what} references unknown string id {id}")))
}

/// Decode a binary snapshot image into the same [`IndexSnapshot`] the
/// JSON loader produces. All section CRCs are verified; the slab is
/// shape-checked against the row table (the derived in-memory slab is
/// rebuilt from the exact `f64` rows, so both load paths construct
/// identical indices).
pub fn decode(bytes: &[u8]) -> Result<IndexSnapshot, PersistError> {
    let header = validate_header(bytes)?;
    // CRC the whole body up front, then parse without re-hashing: the
    // two passes touch the same bytes, and folding the checksums in one
    // sequential sweep keeps the hot parse loops free of per-section
    // digest state.
    verify_sections(bytes, &header)?;
    decode_sections(bytes, &header)
}

/// Parse every section of a header-validated image. CRCs are NOT
/// checked here — [`decode`] runs [`verify_sections`] first and only
/// hands this parser verified bytes.
fn decode_sections(bytes: &[u8], header: &Header) -> Result<IndexSnapshot, PersistError> {
    let strings = decode_strings(section_raw(bytes, header, SEC_STRINGS))?;

    // Resource rows.
    let mut c = Cursor::new(section_raw(bytes, header, SEC_ROWS));
    let row_count = c.u32()? as usize;
    let row_bytes = c.u32()?;
    if row_bytes != 32 {
        return Err(PersistError::Format(format!(
            "unexpected resource row size {row_bytes}"
        )));
    }
    let mut entries = Vec::with_capacity(row_count);
    let mut removed = Vec::with_capacity(row_count);
    for _ in 0..row_count {
        // One bounds check per fixed-size row, not one per field.
        let row = c.take(32)?;
        let le_u32 = |o: usize| u32::from_le_bytes(row[o..o + 4].try_into().unwrap());
        let le_f64 = |o: usize| f64::from_le_bytes(row[o..o + 8].try_into().unwrap());
        let key = lookup(&strings, le_u32(0), "resource row")?.to_string();
        let flags = le_u32(4);
        let profile = ResourceProfile {
            memory_mb: le_f64(8),
            gflops: le_f64(16),
            latency_ms: le_f64(24),
        };
        entries.push((key, profile));
        removed.push(flags & 1 != 0);
    }
    if !c.done() {
        return Err(PersistError::Format("trailing bytes in resource rows".into()));
    }

    // Slab: shape must match the row table (content is derived from the
    // exact f64 rows on load; the stored copy is the scan surface and a
    // consistency witness).
    let (_, slab_len) = header.sections[SEC_SLAB];
    let expected = row_count * SLAB_STRIDE * std::mem::size_of::<f32>();
    if slab_len != expected {
        return Err(PersistError::Format(format!(
            "slab holds {slab_len} bytes but {row_count} rows require {expected}"
        )));
    }

    // LSH.
    let mut c = Cursor::new(section_raw(bytes, header, SEC_LSH));
    let dim = c.u32()? as usize;
    let bits = c.u32()? as usize;
    let tables = c.u32()? as usize;
    c.u32()?; // reserved
    let lsh_len = c.u64()? as usize;
    if dim == 0 || bits == 0 || bits > 64 || tables == 0 {
        return Err(PersistError::Format(format!(
            "implausible LSH geometry dim={dim} bits={bits} tables={tables}"
        )));
    }
    let mut planes = Vec::with_capacity(tables * bits);
    for _ in 0..tables * bits {
        let mut plane = Vec::with_capacity(dim);
        for _ in 0..dim {
            plane.push(c.f64()?);
        }
        planes.push(plane);
    }
    let mut buckets = Vec::with_capacity(tables);
    for _ in 0..tables {
        let bucket_count = c.u32()? as usize;
        let mut table = Vec::with_capacity(bucket_count);
        for _ in 0..bucket_count {
            let sig = c.u64()?;
            let id_count = c.u32()? as usize;
            let raw = c.take(id_count.checked_mul(4).ok_or_else(|| truncated("lsh ids"))?)?;
            let ids = raw
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()) as usize)
                .collect();
            table.push((sig, ids));
        }
        buckets.push(table);
    }
    if !c.done() {
        return Err(PersistError::Format("trailing bytes in lsh section".into()));
    }
    let lsh = CosineLsh::from_parts(
        dim,
        LshConfig { bits, tables },
        planes,
        buckets,
        lsh_len,
    );
    let resource = ResourceIndex::from_parts(entries, removed, lsh, header.flags & FLAG_EXHAUSTIVE != 0);

    // Semantic.
    let mut c = Cursor::new(section_raw(bytes, header, SEC_SEMANTIC));
    let sample_size = c.u64()? as usize;
    let max_candidates = c.u64()? as usize;
    let seed = c.u64()?;
    let segments = c.u32()? & 1 != 0;
    let entry_count = c.u32()? as usize;
    let mut sem_entries = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        let fp = Fingerprint(c.u64()?);
        let key = lookup(&strings, c.u32()?, "semantic entry")?.to_string();
        let cand_count = c.u32()? as usize;
        let mut cands = Vec::with_capacity(cand_count);
        for _ in 0..cand_count {
            // One bounds check per fixed-size candidate row.
            let row = c.take(32)?;
            let le_u32 = |o: usize| u32::from_le_bytes(row[o..o + 4].try_into().unwrap());
            let le_f64 = |o: usize| f64::from_le_bytes(row[o..o + 8].try_into().unwrap());
            let ckey = lookup(&strings, le_u32(0), "candidate row")?.to_string();
            let kind_tag = le_u32(4);
            let aux = le_u32(8);
            let diff_bound = le_f64(16);
            let score = le_f64(24);
            let kind = match kind_tag {
                KIND_WHOLE => CandidateKind::Whole,
                KIND_TRANSITIVE => CandidateKind::Transitive {
                    via: lookup(&strings, aux, "transitive via")?.to_string(),
                },
                KIND_SYNTHESIZED => CandidateKind::Synthesized {
                    donor: lookup(&strings, aux, "synthesis donor")?.to_string(),
                },
                other => {
                    return Err(PersistError::Format(format!(
                        "unknown candidate kind tag {other}"
                    )))
                }
            };
            cands.push(CandidateRecord {
                key: ckey,
                diff_bound,
                score,
                kind,
            });
        }
        sem_entries.push((fp, key, cands));
    }
    let order_len = c.u32()? as usize;
    let mut order = Vec::with_capacity(order_len);
    for _ in 0..order_len {
        order.push(lookup(&strings, c.u32()?, "order table")?.to_string());
    }
    if !c.done() {
        return Err(PersistError::Format("trailing bytes in semantic section".into()));
    }
    let _ = order;

    // Edge table.
    let mut c = Cursor::new(section_raw(bytes, header, SEC_EDGES));
    let edge_count = c.u32()? as usize;
    let edge_bytes = c.u32()?;
    if edge_bytes != EDGE_ROW_BYTES {
        return Err(PersistError::Format(format!(
            "unexpected edge row size {edge_bytes}"
        )));
    }
    let mut edge_rows = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        // One bounds check per fixed-size row.
        let row = c.take(EDGE_ROW_BYTES as usize)?;
        let le_u64 = |o: usize| u64::from_le_bytes(row[o..o + 8].try_into().unwrap());
        let le_f64 = |o: usize| f64::from_le_bytes(row[o..o + 8].try_into().unwrap());
        let mask = u32::from_le_bytes(row[16..20].try_into().unwrap());
        let field = |bit: u32, o: usize| (mask & bit != 0).then(|| le_f64(o));
        edge_rows.push(EdgeRow {
            lo: le_u64(0),
            hi: le_u64(8),
            fwd: field(EDGE_FWD, 24),
            rev: field(EDGE_REV, 32),
            seg_fwd: field(EDGE_SEG_FWD, 40),
            seg_rev: field(EDGE_SEG_REV, 48),
        });
    }
    if !c.done() {
        return Err(PersistError::Format("trailing bytes in edge section".into()));
    }

    let semantic = SemanticIndex::from_parts_with_edges(
        SemanticIndexConfig {
            sample_size,
            segments,
            max_candidates,
        },
        seed,
        sem_entries,
        edge_rows,
    );

    Ok(IndexSnapshot {
        version: SNAPSHOT_VERSION,
        stats: header.stats(),
        semantic,
        resource,
    })
}

// ---------------------------------------------------------------------------
// Integrity scan (the lint surface: SOM054–SOM056)
// ---------------------------------------------------------------------------

/// One structural defect found in a binary snapshot image.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrityIssue {
    /// Magic/version/header-CRC/section-table failure (SOM054).
    Header(String),
    /// A section's stored CRC disagrees with its bytes (SOM054).
    SectionCrc { section: &'static str, stored: u32, computed: u32 },
    /// Slab byte length ≠ row count × stride × 4 (SOM055).
    SlabShape { expected: usize, found: usize },
    /// A slab lane holds a non-finite value (SOM056).
    NonFinite { slot: usize, lane: usize },
}

/// Scan a binary snapshot image for structural defects without
/// constructing indices. Header failure short-circuits (nothing after
/// it is trustworthy); section-level findings accumulate.
pub fn integrity_issues(bytes: &[u8]) -> Vec<IntegrityIssue> {
    let header = match validate_header(bytes) {
        Ok(h) => h,
        Err(e) => return vec![IntegrityIssue::Header(e.to_string())],
    };
    let mut issues = Vec::new();
    let mut rows_ok = true;
    for (i, name) in SECTION_NAMES.iter().enumerate() {
        let (off, len) = header.sections[i];
        let computed = crc32(&bytes[off..off + len]);
        if computed != header.section_crcs[i] {
            if i == SEC_ROWS {
                rows_ok = false;
            }
            issues.push(IntegrityIssue::SectionCrc {
                section: name,
                stored: header.section_crcs[i],
                computed,
            });
        }
    }
    // Slab shape: needs a trustworthy row count.
    if rows_ok {
        let (off, len) = header.sections[SEC_ROWS];
        let mut c = Cursor::new(&bytes[off..off + len]);
        if let Ok(row_count) = c.u32() {
            let expected = row_count as usize * SLAB_STRIDE * std::mem::size_of::<f32>();
            let found = header.sections[SEC_SLAB].1;
            if found != expected {
                issues.push(IntegrityIssue::SlabShape { expected, found });
            }
        }
    }
    // Non-finite slab lanes (only the profile lanes; the pad lane is
    // always zero by construction but a forged non-finite pad is still a
    // defect worth naming).
    let (off, len) = header.sections[SEC_SLAB];
    for (i, chunk) in bytes[off..off + len].chunks_exact(4).enumerate() {
        let v = f32::from_le_bytes(chunk.try_into().unwrap());
        if !v.is_finite() {
            issues.push(IntegrityIssue::NonFinite {
                slot: i / SLAB_STRIDE,
                lane: i % SLAB_STRIDE,
            });
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::STATS_VERSION;

    /// A small but representative snapshot: every candidate kind, a
    /// tombstone, an odd string set.
    fn sample_indices() -> (SemanticIndex, ResourceIndex) {
        let mk = |key: &str, d: f64, kind: CandidateKind| CandidateRecord {
            key: key.to_string(),
            diff_bound: d,
            score: (1.0 - d).max(0.0),
            kind,
        };
        let semantic = SemanticIndex::from_parts(
            SemanticIndexConfig::default(),
            7,
            vec![
                (
                    Fingerprint(11),
                    "alpha".to_string(),
                    vec![
                        mk("beta", 0.1, CandidateKind::Whole),
                        mk("gamma", 0.30000000000000004, CandidateKind::Transitive {
                            via: "beta".to_string(),
                        }),
                        mk("alpha+beta", 0.05, CandidateKind::Synthesized {
                            donor: "beta".to_string(),
                        }),
                    ],
                ),
                (Fingerprint(22), "beta".to_string(), vec![mk("alpha", 0.1, CandidateKind::Whole)]),
                (Fingerprint(33), "gamma".to_string(), vec![]),
            ],
            vec!["alpha".to_string(), "beta".to_string(), "gamma".to_string()],
        );
        let mut resource = ResourceIndex::new(LshConfig::default(), 7);
        resource.insert("alpha", ResourceProfile { memory_mb: 123.456, gflops: 7.89, latency_ms: 0.1 });
        resource.insert("beta", ResourceProfile { memory_mb: 64.0, gflops: 3.5, latency_ms: 0.05 });
        resource.insert("gamma", ResourceProfile { memory_mb: 8.0, gflops: 0.5, latency_ms: 0.01 });
        resource.remove("gamma");
        (semantic, resource)
    }

    fn sample_snapshot_bytes() -> Vec<u8> {
        let (sem, res) = sample_indices();
        let stats = SnapshotStats::of(&sem, &res, 5);
        encode(&sem, &res, Some(&stats))
    }

    #[test]
    fn round_trip_is_lossless_to_the_json_byte() {
        let (sem, res) = sample_indices();
        let stats = SnapshotStats::of(&sem, &res, 5);
        let bytes = encode(&sem, &res, Some(&stats));
        let snap = decode(&bytes).unwrap();
        // The decoded indices must serialize to the exact JSON the
        // originals produce — binary storage is lossless, down to f64
        // bit patterns and the insertion-order bookkeeping.
        assert_eq!(
            serde_json::to_string(&snap.semantic).unwrap(),
            serde_json::to_string(&sem).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&snap.resource).unwrap(),
            serde_json::to_string(&res).unwrap()
        );
        let got = snap.stats.expect("stats survive");
        assert_eq!(got, stats);
        assert_eq!(got.stats_version, STATS_VERSION);
        assert_eq!(snap.version, SNAPSHOT_VERSION);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample_snapshot_bytes(), sample_snapshot_bytes());
    }

    #[test]
    fn missing_stats_round_trip_to_none() {
        let (sem, res) = sample_indices();
        let bytes = encode(&sem, &res, None);
        assert!(decode(&bytes).unwrap().stats.is_none());
    }

    #[test]
    fn header_validates_in_o1_and_carries_counts() {
        let bytes = sample_snapshot_bytes();
        let h = validate_header(&bytes).unwrap();
        assert_eq!(h.version, SOMB_VERSION);
        assert_eq!(h.models, 3);
        assert_eq!(h.resource_entries, 2, "tombstoned slot is not live");
        assert_eq!(h.epoch, 5);
        assert_eq!(h.stats().unwrap().epoch, Some(5));
        // Slab is 64-byte aligned in-file.
        assert_eq!(h.sections[SEC_SLAB].0 % 64, 0);
    }

    #[test]
    fn snapshot_bytes_yields_an_aligned_zero_copy_slab() {
        let bytes = SnapshotBytes::from_vec(sample_snapshot_bytes());
        let slab = bytes.slab_f32().expect("aligned slab view");
        // Canonical rows: only the live entries, sorted by key (the
        // tombstoned "gamma" slot is compacted away at encode time).
        assert_eq!(slab.len(), 2 * SLAB_STRIDE);
        let expected: Vec<f32> = vec![
            123.456, 7.89, 0.1, 0.0, // alpha
            64.0, 3.5, 0.05, 0.0, // beta
        ];
        assert_eq!(slab, expected.as_slice(), "file slab mirrors the canonical profiles");
    }

    #[test]
    fn corrupted_header_crc_is_rejected() {
        let mut bytes = sample_snapshot_bytes();
        bytes[20] ^= 0xFF; // epoch bytes, covered by the header CRC
        assert!(matches!(validate_header(&bytes), Err(PersistError::Format(_))));
        let issues = integrity_issues(&bytes);
        assert!(matches!(issues.as_slice(), [IntegrityIssue::Header(_)]));
    }

    #[test]
    fn unknown_version_is_typed() {
        let mut bytes = sample_snapshot_bytes();
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            validate_header(&bytes),
            Err(PersistError::Version { found: 9, expected: SOMB_VERSION })
        ));
    }

    #[test]
    fn torn_section_fails_decode_and_names_the_section() {
        let bytes = sample_snapshot_bytes();
        let h = validate_header(&bytes).unwrap();
        // Flip a byte inside the slab: header still validates (O(1)
        // open), decode fails on the section CRC, lint names the slab.
        let mut torn = bytes.clone();
        torn[h.sections[SEC_SLAB].0] ^= 0x5A;
        assert!(validate_header(&torn).is_ok());
        let err = decode(&torn).unwrap_err();
        assert!(err.to_string().contains("slab"), "{err}");
        let issues = integrity_issues(&torn);
        assert!(issues
            .iter()
            .any(|i| matches!(i, IntegrityIssue::SectionCrc { section: "slab", .. })));
    }

    #[test]
    fn truncated_image_fails_cleanly() {
        let bytes = sample_snapshot_bytes();
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, PersistError::Format(_)), "cut={cut}");
        }
    }

    #[test]
    fn non_finite_slab_values_are_reported() {
        let mut bytes = sample_snapshot_bytes();
        let h = validate_header(&bytes).unwrap();
        let (off, _) = h.sections[SEC_SLAB];
        bytes[off..off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        let issues = integrity_issues(&bytes);
        assert!(issues
            .iter()
            .any(|i| matches!(i, IntegrityIssue::NonFinite { slot: 0, lane: 0 })));
        // The same tear also breaks the slab CRC.
        assert!(issues
            .iter()
            .any(|i| matches!(i, IntegrityIssue::SectionCrc { section: "slab", .. })));
    }

    #[test]
    fn slab_shape_mismatch_is_reported() {
        // Forge a coherent-but-wrong snapshot: shrink the slab section
        // length and re-stamp both CRCs so only the shape check fires.
        let mut bytes = sample_snapshot_bytes();
        let slab_entry = 56 + SEC_SLAB * 24;
        let (off, len) = {
            let h = validate_header(&bytes).unwrap();
            h.sections[SEC_SLAB]
        };
        let new_len = len - SLAB_STRIDE * 4;
        bytes[slab_entry + 8..slab_entry + 16].copy_from_slice(&(new_len as u64).to_le_bytes());
        let crc = crc32(&bytes[off..off + new_len]);
        bytes[slab_entry + 16..slab_entry + 20].copy_from_slice(&crc.to_le_bytes());
        let hcrc = crc32(&bytes[..HEADER_LEN - 4]);
        bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&hcrc.to_le_bytes());
        let issues = integrity_issues(&bytes);
        assert!(
            issues.iter().any(|i| matches!(
                i,
                IntegrityIssue::SlabShape { expected, found }
                    if *expected == len && *found == new_len
            )),
            "{issues:?}"
        );
        assert!(matches!(decode(&bytes), Err(PersistError::Format(_))));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // CRC-32C of "123456789" is the canonical check value.
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_software_path_matches_dispatched_path() {
        // Covers the hardware/software split on every length class the
        // 8-byte folding loop produces (full chunks plus each remainder).
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect();
        for len in (0..=64).chain([255, 512, 1000, 1024]) {
            assert_eq!(crc32_sw(&data[..len]), crc32(&data[..len]), "len {len}");
        }
    }
}
