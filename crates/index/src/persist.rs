//! Index persistence (paper Section 5.5).
//!
//! "As the two indices use vanilla data structures such as hashtables and
//! LSH, both indices are lightweight and can be populated to disk when
//! they grow large." Both index types serialize to a single JSON snapshot;
//! models themselves are *not* stored here — only keys, scores, and
//! profile vectors, matching the paper's note that models stay in the
//! storage system.

use crate::resource::ResourceIndex;
use crate::semantic::SemanticIndex;
use serde::{Deserialize, Serialize};
use sommelier_fault::{StdStorage, Storage};
use std::fmt;
use std::path::Path;

/// On-disk encoding of a snapshot. Readers sniff the format from the
/// leading bytes ([`crate::somb::MAGIC`] marks binary, anything else is
/// treated as JSON); writers choose by path extension (`.somb` →
/// binary). JSON stays fully supported read-side — `sommelier compact`
/// rewrites it to binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// Human-readable JSON (the original format).
    Json,
    /// The `.somb` binary image ([`crate::somb`]).
    Binary,
}

impl SnapshotFormat {
    /// Stable lowercase name (CLI output, metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            SnapshotFormat::Json => "json",
            SnapshotFormat::Binary => "binary",
        }
    }

    /// The format a path's extension selects for *writing*.
    pub fn for_path(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some("somb") => SnapshotFormat::Binary,
            _ => SnapshotFormat::Json,
        }
    }
}

impl fmt::Display for SnapshotFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A persisted snapshot of both indices.
#[derive(Debug, Serialize, Deserialize)]
pub struct IndexSnapshot {
    /// Snapshot format version.
    pub version: u32,
    /// Content-derived metrics header (absent in pre-stats snapshots;
    /// readers must tolerate `None`).
    pub stats: Option<SnapshotStats>,
    /// The semantic index.
    pub semantic: SemanticIndex,
    /// The resource index.
    pub resource: ResourceIndex,
}

/// Current snapshot format version. Version 2 (incremental index
/// maintenance) added the semantic edge table to the JSON image and
/// canonicalized the resource sections; older snapshots are rebuilt
/// from the repository by the engine's recovery path.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Current stats-header version (evolves independently of
/// [`SNAPSHOT_VERSION`]; unknown versions are tolerated by readers).
/// Version 2 added the publication `epoch`.
pub const STATS_VERSION: u32 = 2;

/// Content-derived metrics header written alongside the indices.
///
/// Every field is a pure function of the index *contents* — deliberately
/// excluding live pairwise-cache hit/miss counters, whose values depend
/// on the build schedule (a racing parallel build may compute a pair
/// twice where a sequential one hits the cache). Keeping the header
/// schedule-independent preserves the invariant that the snapshot file
/// is byte-identical at any `--jobs` / `--cache-cap` setting. Counters
/// are `i64` so audit tooling can detect hand-edited negative values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Version of this header's schema.
    pub stats_version: u32,
    /// Models registered in the semantic index.
    pub models: i64,
    /// Total candidate records across all semantic entries.
    pub candidate_records: i64,
    /// Entries in the resource index.
    pub resource_entries: i64,
    /// Publication epoch of the engine state this snapshot captures —
    /// the count of index mutations published before the save. `None`
    /// in headers written before stats version 2 (readers must
    /// tolerate its absence). `i64`, like the counters, so audit
    /// tooling can detect hand-edited negative values.
    pub epoch: Option<i64>,
}

impl SnapshotStats {
    /// Derive the header from live indices at a publication epoch.
    pub fn of(semantic: &SemanticIndex, resource: &ResourceIndex, epoch: u64) -> Self {
        let candidate_records = semantic
            .entries_audit()
            .iter()
            .map(|(_, _, records)| records.len() as i64)
            .sum();
        SnapshotStats {
            stats_version: STATS_VERSION,
            models: semantic.len() as i64,
            candidate_records,
            resource_entries: resource.len() as i64,
            epoch: Some(epoch as i64),
        }
    }
}

/// Persistence failures.
#[derive(Debug)]
pub enum PersistError {
    /// File I/O failed.
    Io(std::io::Error),
    /// JSON (de)serialization failed.
    Format(String),
    /// The snapshot parsed but declares an unsupported format version.
    Version { found: u32, expected: u32 },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index snapshot I/O error: {e}"),
            PersistError::Format(e) => write!(f, "malformed index snapshot: {e}"),
            PersistError::Version { found, expected } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {expected})"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Write both indices to a snapshot file, stamped with the publication
/// epoch the engine reached. The write is crash-safe: it goes through
/// [`Storage::write_atomic`] (temp → fsync → rename), so an interrupted
/// save leaves the previous snapshot intact instead of torn JSON.
pub fn save(
    semantic: &SemanticIndex,
    resource: &ResourceIndex,
    epoch: u64,
    path: &Path,
) -> Result<(), PersistError> {
    save_with(&StdStorage, semantic, resource, epoch, path)
}

/// [`save`] over an explicit storage backend (the fault-injection
/// hook).
pub fn save_with(
    storage: &dyn Storage,
    semantic: &SemanticIndex,
    resource: &ResourceIndex,
    epoch: u64,
    path: &Path,
) -> Result<(), PersistError> {
    let snapshot = IndexSnapshot {
        version: SNAPSHOT_VERSION,
        stats: Some(SnapshotStats::of(semantic, resource, epoch)),
        semantic: semantic.clone(),
        resource: resource.clone(),
    };
    let json = serde_json::to_string(&snapshot).map_err(|e| PersistError::Format(e.to_string()))?;
    storage.write_atomic(path, json.as_bytes())?;
    Ok(())
}

/// Write both indices as a `.somb` binary snapshot, stamped with the
/// publication epoch. Crash-safe through the same
/// [`Storage::write_atomic`] protocol as the JSON path.
pub fn save_binary(
    semantic: &SemanticIndex,
    resource: &ResourceIndex,
    epoch: u64,
    path: &Path,
) -> Result<(), PersistError> {
    save_binary_with(&StdStorage, semantic, resource, epoch, path)
}

/// [`save_binary`] over an explicit storage backend (the
/// fault-injection hook).
pub fn save_binary_with(
    storage: &dyn Storage,
    semantic: &SemanticIndex,
    resource: &ResourceIndex,
    epoch: u64,
    path: &Path,
) -> Result<(), PersistError> {
    let stats = SnapshotStats::of(semantic, resource, epoch);
    let bytes = crate::somb::encode(semantic, resource, Some(&stats));
    storage.write_atomic(path, &bytes)?;
    Ok(())
}

/// Write an already-assembled snapshot in the given format (the
/// `compact` conversion path — the snapshot is re-encoded verbatim, not
/// rebuilt, so stats and epoch carry over exactly).
pub fn save_snapshot_as(
    storage: &dyn Storage,
    snapshot: &IndexSnapshot,
    format: SnapshotFormat,
    path: &Path,
) -> Result<(), PersistError> {
    let bytes = match format {
        SnapshotFormat::Json => serde_json::to_string(snapshot)
            .map_err(|e| PersistError::Format(e.to_string()))?
            .into_bytes(),
        SnapshotFormat::Binary => {
            crate::somb::encode(&snapshot.semantic, &snapshot.resource, snapshot.stats.as_ref())
        }
    };
    storage.write_atomic(path, &bytes)?;
    Ok(())
}

/// Read and validate a snapshot file without unpacking it — the entry
/// point audit tooling uses so it can inspect the snapshot as stored.
pub fn read_snapshot(path: &Path) -> Result<IndexSnapshot, PersistError> {
    read_snapshot_with(&StdStorage, path)
}

/// [`read_snapshot`] over an explicit storage backend. The format is
/// sniffed from the leading bytes, so either encoding loads through the
/// same call regardless of extension.
pub fn read_snapshot_with(
    storage: &dyn Storage,
    path: &Path,
) -> Result<IndexSnapshot, PersistError> {
    read_snapshot_sniffed_with(storage, path).map(|(snapshot, _)| snapshot)
}

/// [`read_snapshot_with`], also reporting which format served the
/// snapshot. Publishes the `snapshot.{open_ns,bytes_mapped,format}`
/// metrics counters (format: 1 = JSON, 2 = binary).
pub fn read_snapshot_sniffed_with(
    storage: &dyn Storage,
    path: &Path,
) -> Result<(IndexSnapshot, SnapshotFormat), PersistError> {
    use sommelier_runtime::metrics::counters;
    let started = std::time::Instant::now();
    let bytes = storage.read(path)?;
    counters::set("snapshot.bytes_mapped", bytes.len() as u64);
    let (snapshot, format) = if crate::somb::is_binary(&bytes) {
        // Binary open: O(1) header validation up front, then section
        // decode out of an aligned buffer.
        let aligned = crate::somb::SnapshotBytes::from_vec(bytes);
        (crate::somb::decode(aligned.as_slice())?, SnapshotFormat::Binary)
    } else {
        let json = String::from_utf8(bytes)
            .map_err(|e| PersistError::Format(format!("snapshot is not UTF-8: {e}")))?;
        let snapshot: IndexSnapshot =
            serde_json::from_str(&json).map_err(|e| PersistError::Format(e.to_string()))?;
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(PersistError::Version {
                found: snapshot.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        (snapshot, SnapshotFormat::Json)
    };
    counters::set("snapshot.open_ns", started.elapsed().as_nanos() as u64);
    counters::set(
        "snapshot.format",
        match format {
            SnapshotFormat::Json => 1,
            SnapshotFormat::Binary => 2,
        },
    );
    Ok((snapshot, format))
}

/// Load both indices from a snapshot file.
pub fn load(path: &Path) -> Result<(SemanticIndex, ResourceIndex), PersistError> {
    let snapshot = read_snapshot(path)?;
    Ok((snapshot.semantic, snapshot.resource))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::LshConfig;
    use crate::resource::ResourceConstraint;
    use crate::semantic::{PairAnalyzer, SemanticIndexConfig};
    use sommelier_graph::{Model, ModelBuilder, TaskKind};
    use sommelier_runtime::ResourceProfile;
    use sommelier_tensor::{Prng, Shape};

    struct ConstAnalyzer;
    impl PairAnalyzer for ConstAnalyzer {
        fn whole_diff(&self, _: &Model, _: &Model) -> Option<f64> {
            Some(0.07)
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let mut sem = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let mut res = ResourceIndex::new(LshConfig::default(), 1);
        let models: Vec<Model> = (0..4)
            .map(|i| {
                let mut rng = Prng::seed_from_u64(i);
                ModelBuilder::new(format!("m{i}"), TaskKind::Other, Shape::vector(4))
                    .dense(2, &mut rng)
                    .build()
                    .unwrap()
            })
            .collect();
        let pool = models.clone();
        let resolve = move |k: &str| pool.iter().find(|m| m.name == k).cloned();
        for (i, m) in models.iter().enumerate() {
            sem.insert(m, &resolve, &ConstAnalyzer);
            res.insert(
                &m.name,
                ResourceProfile {
                    memory_mb: i as f64 + 1.0,
                    gflops: 1.0,
                    latency_ms: 1.0,
                },
            );
        }

        let path = std::env::temp_dir().join(format!("sommelier-snap-{}.json", std::process::id()));
        save(&sem, &res, 4, &path).unwrap();
        let (sem2, res2) = load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(sem2.len(), sem.len());
        // Scores may lose a final ulp through JSON; compare structure and
        // the exact diff bounds.
        let (a, b) = (sem2.candidates_of("m3"), sem.candidates_of("m3"));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.kind, y.kind);
            assert!((x.diff_bound - y.diff_bound).abs() < 1e-12);
            assert!((x.score - y.score).abs() < 1e-12);
        }
        let c = ResourceConstraint {
            max_memory_mb: Some(2.5),
            ..Default::default()
        };
        assert_eq!(res2.query(&c), res.query(&c));
    }

    #[test]
    fn snapshot_carries_a_content_derived_stats_header() {
        let mut sem = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let mut res = ResourceIndex::new(LshConfig::default(), 1);
        let models: Vec<Model> = (0..3)
            .map(|i| {
                let mut rng = Prng::seed_from_u64(i + 40);
                ModelBuilder::new(format!("s{i}"), TaskKind::Other, Shape::vector(4))
                    .dense(2, &mut rng)
                    .build()
                    .unwrap()
            })
            .collect();
        let pool = models.clone();
        let resolve = move |k: &str| pool.iter().find(|m| m.name == k).cloned();
        for m in &models {
            sem.insert(m, &resolve, &ConstAnalyzer);
            res.insert(
                &m.name,
                ResourceProfile {
                    memory_mb: 1.0,
                    gflops: 1.0,
                    latency_ms: 1.0,
                },
            );
        }
        let path =
            std::env::temp_dir().join(format!("sommelier-stats-{}.json", std::process::id()));
        save(&sem, &res, 3, &path).unwrap();
        let snap = read_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let stats = snap.stats.expect("save() writes a stats header");
        assert_eq!(stats.stats_version, STATS_VERSION);
        assert_eq!(stats.models, 3);
        assert_eq!(stats.resource_entries, 3);
        assert_eq!(stats.epoch, Some(3), "save stamps the publication epoch");
        let expected: i64 = snap
            .semantic
            .entries_audit()
            .iter()
            .map(|(_, _, r)| r.len() as i64)
            .sum();
        assert_eq!(stats.candidate_records, expected);
    }

    #[test]
    fn pre_stats_snapshots_still_load() {
        // Forward tolerance: a snapshot written before the stats header
        // existed has no `stats` field at all — it must parse to `None`.
        let sem = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let res = ResourceIndex::new(LshConfig::default(), 1);
        let path =
            std::env::temp_dir().join(format!("sommelier-nostats-{}.json", std::process::id()));
        save(&sem, &res, 0, &path).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let stripped = {
            // Remove the "stats" member wholesale by re-serializing
            // without it: parse, drop, write back.
            let start = json.find("\"stats\":").expect("stats field present");
            // The stats value is a flat object: find its closing brace.
            let rest = &json[start..];
            let open = rest.find('{').unwrap();
            let close = rest[open..].find('}').unwrap();
            let mut s = String::new();
            s.push_str(&json[..start]);
            // Skip the field plus its trailing comma.
            let mut tail = &json[start + open + close + 1..];
            tail = tail.strip_prefix(',').unwrap_or(tail);
            s.push_str(tail);
            s
        };
        std::fs::write(&path, stripped).unwrap();
        let snap = read_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(snap.stats.is_none());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/snap.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let sem = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let res = ResourceIndex::new(LshConfig::default(), 1);
        let path =
            std::env::temp_dir().join(format!("sommelier-vers-{}.json", std::process::id()));
        save(&sem, &res, 0, &path).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, json.replacen("\"version\":2", "\"version\":9", 1)).unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            err,
            PersistError::Version {
                found: 9,
                expected: SNAPSHOT_VERSION
            }
        ));
    }

    #[test]
    fn interrupted_save_preserves_the_previous_snapshot() {
        use sommelier_fault::{FaultPlan, FaultyStorage};
        let sem = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let res = ResourceIndex::new(LshConfig::default(), 1);
        let path = std::env::temp_dir().join(format!(
            "sommelier-atomic-{}.json",
            std::process::id()
        ));
        save(&sem, &res, 1, &path).unwrap();
        let before = std::fs::read(&path).unwrap();
        // Crash every primitive step of the atomic save (write, fsync,
        // rename): the on-disk snapshot must stay byte-identical.
        for at in 0..3 {
            let faulty = FaultyStorage::new(StdStorage, FaultPlan::crash_at(42, at));
            let err = save_with(&faulty, &sem, &res, 2, &path).unwrap_err();
            assert!(matches!(err, PersistError::Io(_)));
            assert_eq!(std::fs::read(&path).unwrap(), before, "torn at op {at}");
            let snap = read_snapshot(&path).unwrap();
            assert_eq!(snap.stats.unwrap().epoch, Some(1));
        }
        // Clean up the snapshot and any stranded temp siblings.
        for name in StdStorage.list(&std::env::temp_dir()).unwrap() {
            if name.starts_with(&format!("sommelier-atomic-{}", std::process::id())) {
                std::fs::remove_file(std::env::temp_dir().join(name)).ok();
            }
        }
    }

    #[test]
    fn binary_snapshot_round_trips_and_is_sniffed() {
        let mut sem = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let mut res = ResourceIndex::new(LshConfig::default(), 1);
        let models: Vec<Model> = (0..4)
            .map(|i| {
                let mut rng = Prng::seed_from_u64(i + 90);
                ModelBuilder::new(format!("b{i}"), TaskKind::Other, Shape::vector(4))
                    .dense(2, &mut rng)
                    .build()
                    .unwrap()
            })
            .collect();
        let pool = models.clone();
        let resolve = move |k: &str| pool.iter().find(|m| m.name == k).cloned();
        for (i, m) in models.iter().enumerate() {
            sem.insert(m, &resolve, &ConstAnalyzer);
            res.insert(
                &m.name,
                ResourceProfile {
                    memory_mb: i as f64 + 1.0,
                    gflops: 0.25 * (i as f64 + 1.0),
                    latency_ms: 0.125,
                },
            );
        }
        let dir = std::env::temp_dir();
        let jpath = dir.join(format!("sommelier-fmt-{}.json", std::process::id()));
        let bpath = dir.join(format!("sommelier-fmt-{}.somb", std::process::id()));
        save(&sem, &res, 7, &jpath).unwrap();
        save_binary(&sem, &res, 7, &bpath).unwrap();

        let (jsnap, jfmt) = read_snapshot_sniffed_with(&StdStorage, &jpath).unwrap();
        let (bsnap, bfmt) = read_snapshot_sniffed_with(&StdStorage, &bpath).unwrap();
        std::fs::remove_file(&jpath).ok();
        std::fs::remove_file(&bpath).ok();
        assert_eq!(jfmt, SnapshotFormat::Json);
        assert_eq!(bfmt, SnapshotFormat::Binary);
        // Both load paths construct the same indices, to the JSON byte.
        assert_eq!(
            serde_json::to_string(&jsnap.semantic).unwrap(),
            serde_json::to_string(&bsnap.semantic).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&jsnap.resource).unwrap(),
            serde_json::to_string(&bsnap.resource).unwrap()
        );
        assert_eq!(jsnap.stats, bsnap.stats);
        assert_eq!(bsnap.stats.unwrap().epoch, Some(7));
        // The open metrics counters were published (values race with
        // concurrent tests that also open snapshots, so only presence
        // and range are asserted here).
        use sommelier_runtime::metrics::counters;
        assert!(matches!(counters::get("snapshot.format"), 1 | 2));
        assert!(counters::get("snapshot.bytes_mapped") > 0);
    }

    #[test]
    fn interrupted_binary_save_preserves_the_previous_snapshot() {
        use sommelier_fault::{FaultPlan, FaultyStorage};
        let sem = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let res = ResourceIndex::new(LshConfig::default(), 1);
        let path = std::env::temp_dir().join(format!(
            "sommelier-batomic-{}.somb",
            std::process::id()
        ));
        save_binary(&sem, &res, 1, &path).unwrap();
        let before = std::fs::read(&path).unwrap();
        for at in 0..3 {
            let faulty = FaultyStorage::new(StdStorage, FaultPlan::crash_at(43, at));
            let err = save_binary_with(&faulty, &sem, &res, 2, &path).unwrap_err();
            assert!(matches!(err, PersistError::Io(_)));
            assert_eq!(std::fs::read(&path).unwrap(), before, "torn at op {at}");
            let snap = read_snapshot(&path).unwrap();
            assert_eq!(snap.stats.unwrap().epoch, Some(1));
        }
        for name in StdStorage.list(&std::env::temp_dir()).unwrap() {
            if name.starts_with(&format!("sommelier-batomic-{}", std::process::id())) {
                std::fs::remove_file(std::env::temp_dir().join(name)).ok();
            }
        }
    }

    #[test]
    fn format_selection_follows_the_extension() {
        assert_eq!(
            SnapshotFormat::for_path(Path::new("/a/sommelier.index.somb")),
            SnapshotFormat::Binary
        );
        assert_eq!(
            SnapshotFormat::for_path(Path::new("/a/sommelier.index.json")),
            SnapshotFormat::Json
        );
        assert_eq!(
            SnapshotFormat::for_path(Path::new("/a/noext")),
            SnapshotFormat::Json
        );
    }

    #[test]
    fn garbage_is_format_error() {
        let path = std::env::temp_dir().join(format!("sommelier-garbage-{}.json", std::process::id()));
        std::fs::write(&path, "not json").unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::Format(_)));
    }
}
