//! Index persistence (paper Section 5.5).
//!
//! "As the two indices use vanilla data structures such as hashtables and
//! LSH, both indices are lightweight and can be populated to disk when
//! they grow large." Both index types serialize to a single JSON snapshot;
//! models themselves are *not* stored here — only keys, scores, and
//! profile vectors, matching the paper's note that models stay in the
//! storage system.

use crate::resource::ResourceIndex;
use crate::semantic::SemanticIndex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::Path;

/// A persisted snapshot of both indices.
#[derive(Serialize, Deserialize)]
pub struct IndexSnapshot {
    /// Snapshot format version.
    pub version: u32,
    /// The semantic index.
    pub semantic: SemanticIndex,
    /// The resource index.
    pub resource: ResourceIndex,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Persistence failures.
#[derive(Debug)]
pub enum PersistError {
    /// File I/O failed.
    Io(std::io::Error),
    /// JSON (de)serialization failed.
    Format(String),
    /// The snapshot parsed but declares an unsupported format version.
    Version { found: u32, expected: u32 },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index snapshot I/O error: {e}"),
            PersistError::Format(e) => write!(f, "malformed index snapshot: {e}"),
            PersistError::Version { found, expected } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {expected})"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Write both indices to a snapshot file.
pub fn save(semantic: &SemanticIndex, resource: &ResourceIndex, path: &Path) -> Result<(), PersistError> {
    let snapshot = IndexSnapshot {
        version: SNAPSHOT_VERSION,
        semantic: semantic.clone(),
        resource: resource.clone(),
    };
    let json = serde_json::to_string(&snapshot).map_err(|e| PersistError::Format(e.to_string()))?;
    fs::write(path, json)?;
    Ok(())
}

/// Read and validate a snapshot file without unpacking it — the entry
/// point audit tooling uses so it can inspect the snapshot as stored.
pub fn read_snapshot(path: &Path) -> Result<IndexSnapshot, PersistError> {
    let json = fs::read_to_string(path)?;
    let snapshot: IndexSnapshot =
        serde_json::from_str(&json).map_err(|e| PersistError::Format(e.to_string()))?;
    if snapshot.version != SNAPSHOT_VERSION {
        return Err(PersistError::Version {
            found: snapshot.version,
            expected: SNAPSHOT_VERSION,
        });
    }
    Ok(snapshot)
}

/// Load both indices from a snapshot file.
pub fn load(path: &Path) -> Result<(SemanticIndex, ResourceIndex), PersistError> {
    let snapshot = read_snapshot(path)?;
    Ok((snapshot.semantic, snapshot.resource))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::LshConfig;
    use crate::resource::ResourceConstraint;
    use crate::semantic::{PairAnalyzer, SemanticIndexConfig};
    use sommelier_graph::{Model, ModelBuilder, TaskKind};
    use sommelier_runtime::ResourceProfile;
    use sommelier_tensor::{Prng, Shape};

    struct ConstAnalyzer;
    impl PairAnalyzer for ConstAnalyzer {
        fn whole_diff(&mut self, _: &Model, _: &Model) -> Option<f64> {
            Some(0.07)
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let mut sem = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let mut res = ResourceIndex::new(LshConfig::default(), 1);
        let models: Vec<Model> = (0..4)
            .map(|i| {
                let mut rng = Prng::seed_from_u64(i);
                ModelBuilder::new(format!("m{i}"), TaskKind::Other, Shape::vector(4))
                    .dense(2, &mut rng)
                    .build()
                    .unwrap()
            })
            .collect();
        let pool = models.clone();
        let resolve = move |k: &str| pool.iter().find(|m| m.name == k).cloned();
        for (i, m) in models.iter().enumerate() {
            sem.insert(m, &resolve, &mut ConstAnalyzer);
            res.insert(
                &m.name,
                ResourceProfile {
                    memory_mb: i as f64 + 1.0,
                    gflops: 1.0,
                    latency_ms: 1.0,
                },
            );
        }

        let path = std::env::temp_dir().join(format!("sommelier-snap-{}.json", std::process::id()));
        save(&sem, &res, &path).unwrap();
        let (sem2, res2) = load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(sem2.len(), sem.len());
        // Scores may lose a final ulp through JSON; compare structure and
        // the exact diff bounds.
        let (a, b) = (sem2.candidates_of("m3"), sem.candidates_of("m3"));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.kind, y.kind);
            assert!((x.diff_bound - y.diff_bound).abs() < 1e-12);
            assert!((x.score - y.score).abs() < 1e-12);
        }
        let c = ResourceConstraint {
            max_memory_mb: Some(2.5),
            ..Default::default()
        };
        assert_eq!(res2.query(&c), res.query(&c));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/snap.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let sem = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let res = ResourceIndex::new(LshConfig::default(), 1);
        let path =
            std::env::temp_dir().join(format!("sommelier-vers-{}.json", std::process::id()));
        save(&sem, &res, &path).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, json.replacen("\"version\":1", "\"version\":9", 1)).unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            err,
            PersistError::Version {
                found: 9,
                expected: SNAPSHOT_VERSION
            }
        ));
    }

    #[test]
    fn garbage_is_format_error() {
        let path = std::env::temp_dir().join(format!("sommelier-garbage-{}.json", std::process::id()));
        std::fs::write(&path, "not json").unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::Format(_)));
    }
}
