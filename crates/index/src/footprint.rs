//! Memory footprint accounting for the index structures (paper Table 4).
//!
//! Sommelier keeps only the two indices in memory; models stay on disk
//! (Section 5.5 "Persistence"). These estimators measure what the indices
//! themselves occupy, so the Table 4 experiment can report MB-per-model-
//! count without heap instrumentation.

use crate::resource::ResourceIndex;
use crate::semantic::{CandidateKind, SemanticIndex};

/// Approximate bytes held by a semantic index: hashtable entries, key
/// strings, and candidate records.
pub fn semantic_footprint_bytes(index: &SemanticIndex) -> usize {
    let mut total = 0usize;
    for key in index.keys() {
        // fingerprint key + reverse map entry + order slot
        total += 8 + key.len() * 2 + std::mem::size_of::<usize>();
        for c in index.candidates_of(key) {
            total += c.key.len()
                + 2 * std::mem::size_of::<f64>()
                + match &c.kind {
                    CandidateKind::Whole => 1,
                    CandidateKind::Transitive { via } => 1 + via.len(),
                    CandidateKind::Synthesized { donor } => 1 + donor.len(),
                };
        }
    }
    total
}

/// Approximate bytes held by a resource index (entries + LSH tables).
pub fn resource_footprint_bytes(index: &ResourceIndex) -> usize {
    index.footprint_bytes()
}

/// Bytes → MB.
pub fn to_mb(bytes: usize) -> f64 {
    bytes as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::LshConfig;
    use crate::semantic::{PairAnalyzer, SemanticIndexConfig};
    use sommelier_graph::{Model, ModelBuilder, TaskKind};
    use sommelier_runtime::ResourceProfile;
    use sommelier_tensor::{Prng, Shape};

    struct ConstAnalyzer;
    impl PairAnalyzer for ConstAnalyzer {
        fn whole_diff(&self, _: &Model, _: &Model) -> Option<f64> {
            Some(0.1)
        }
    }

    fn model(i: usize) -> Model {
        let mut rng = Prng::seed_from_u64(i as u64);
        ModelBuilder::new(format!("m{i}"), TaskKind::Other, Shape::vector(4))
            .dense(2, &mut rng)
            .build()
            .unwrap()
    }

    #[test]
    fn semantic_footprint_scales_with_models() {
        let sizes = [5usize, 20];
        let mut footprints = Vec::new();
        for &n in &sizes {
            let mut idx = SemanticIndex::new(SemanticIndexConfig::default(), 1);
            let models: Vec<Model> = (0..n).map(model).collect();
            let pool = models.clone();
            let resolve = move |k: &str| pool.iter().find(|m| m.name == k).cloned();
            for m in &models {
                idx.insert(m, &resolve, &ConstAnalyzer);
            }
            footprints.push(semantic_footprint_bytes(&idx));
        }
        assert!(footprints[1] > footprints[0]);
    }

    #[test]
    fn resource_footprint_scales_with_models() {
        let mut small = ResourceIndex::new(LshConfig::default(), 1);
        let mut big = ResourceIndex::new(LshConfig::default(), 1);
        for i in 0..5 {
            small.insert(
                format!("m{i}"),
                ResourceProfile {
                    memory_mb: i as f64,
                    gflops: 1.0,
                    latency_ms: 1.0,
                },
            );
        }
        for i in 0..500 {
            big.insert(
                format!("m{i}"),
                ResourceProfile {
                    memory_mb: i as f64,
                    gflops: 1.0,
                    latency_ms: 1.0,
                },
            );
        }
        assert!(resource_footprint_bytes(&big) > resource_footprint_bytes(&small));
    }

    #[test]
    fn mb_conversion() {
        assert!((to_mb(2_000_000) - 2.0).abs() < 1e-12);
    }
}
