//! The semantic index (paper Section 5.2).
//!
//! "The top-level structure of the index is a hashtable. For each entry …
//! the key is the hash fingerprint of a DNN, and the value is a list of
//! candidate records, each of which consists of a candidate DNN and its
//! functional equivalence score …, maintained in a descending order."
//!
//! Insertion analyzes the new model against only a small random sample of
//! stored models (default 5) and derives relations to everything else
//! transitively: if `X↔Y` differ by `A` and `Y↔Z` by `B`, then `X↔Z` lies
//! in `[|A−B|, A+B]`; the conservative upper end `A+B` is recorded. The
//! sample size is a knob ([`SemanticIndexConfig::sample_size`]); the
//! full-pairwise ablation sets it to `usize::MAX`.
//!
//! The analyzer itself is pluggable through [`PairAnalyzer`] so the index
//! structure stays independent of how equivalence is measured; the default
//! production analyzer (wired to `sommelier-equiv`) lives in
//! `sommelier-query::engine`.

use serde::{Deserialize, Serialize};
use sommelier_graph::{Fingerprint, Model};
use sommelier_tensor::Prng;
use std::collections::HashMap;

/// The transitive interval of paper Section 5.2: if models `X↔Y` differ
/// by `a` and `Y↔Z` by `b`, the `X↔Z` difference lies in
/// `[|a − b|, a + b]`. The index records the conservative upper end; the
/// lower end is useful for pruning (a candidate whose lower bound already
/// exceeds a threshold can be rejected without measurement).
pub fn transitive_interval(a: f64, b: f64) -> (f64, f64) {
    ((a - b).abs(), a + b)
}

/// How a candidate relates to the keyed model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CandidateKind {
    /// A stored model, holistically equivalent (paper Section 5.2 case i).
    Whole,
    /// A stored model whose relation was derived transitively through a
    /// sampled intermediary rather than measured directly.
    Transitive { via: String },
    /// A synthesized model: the keyed model with one of its segments
    /// replaced by `donor`'s counterpart (case ii).
    Synthesized { donor: String },
}

/// One entry of a candidate list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CandidateRecord {
    /// Candidate model key (repository name).
    pub key: String,
    /// Dataset-independent QoR difference bound to the keyed model.
    pub diff_bound: f64,
    /// Functional equivalence score: `max(0, 1 − diff_bound)`.
    pub score: f64,
    /// Provenance of the relation.
    pub kind: CandidateKind,
}

impl CandidateRecord {
    fn new(key: String, diff_bound: f64, kind: CandidateKind) -> Self {
        CandidateRecord {
            key,
            diff_bound,
            score: (1.0 - diff_bound).max(0.0),
            kind,
        }
    }
}

/// Pluggable pairwise analysis. Returns `None` when the pair is
/// incomparable (failed I/O check).
pub trait PairAnalyzer {
    /// Dataset-independent QoR difference bound of `candidate` w.r.t.
    /// `reference` (whole-model analysis, Section 4.1).
    fn whole_diff(&mut self, reference: &Model, candidate: &Model) -> Option<f64>;

    /// Segment-replacement analysis (Section 4.2): the QoR difference of
    /// `host` with its best replaceable segments taken from `donor`, if
    /// any segments match.
    fn segment_diff(&mut self, host: &Model, donor: &Model) -> Option<f64> {
        let _ = (host, donor);
        None
    }
}

/// Configuration knobs of the semantic index.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SemanticIndexConfig {
    /// Number of stored models sampled for direct pairwise analysis on
    /// each insertion (paper default: 5).
    pub sample_size: usize,
    /// Whether to run the segment analysis and record synthesized
    /// candidates.
    pub segments: bool,
    /// Maximum candidate records kept per entry. Bounding the lists keeps
    /// the index memory at `O(models × max_candidates)` — the paper's
    /// Table 4 footprints (≈0.7 KB per model at 100K models) imply the
    /// same discipline — and caps per-insert transitive work.
    pub max_candidates: usize,
}

impl Default for SemanticIndexConfig {
    fn default() -> Self {
        SemanticIndexConfig {
            sample_size: 5,
            segments: true,
            max_candidates: 64,
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Entry {
    key: String,
    /// Candidate records in descending score order.
    candidates: Vec<CandidateRecord>,
}

/// The semantic index.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SemanticIndex {
    config: SemanticIndexConfig,
    /// Fingerprint → entry.
    entries: HashMap<Fingerprint, Entry>,
    /// Key → fingerprint (reverse lookup for by-name references).
    by_key: HashMap<String, Fingerprint>,
    /// Insertion order of keys (stable sampling).
    order: Vec<String>,
    seed_state: u64,
}

impl SemanticIndex {
    /// Create an empty index.
    pub fn new(config: SemanticIndexConfig, seed: u64) -> Self {
        SemanticIndex {
            config,
            entries: HashMap::new(),
            by_key: HashMap::new(),
            order: Vec::new(),
            seed_state: seed,
        }
    }

    /// Number of indexed models.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Fingerprint registered for a key, if present.
    pub fn fingerprint_of(&self, key: &str) -> Option<Fingerprint> {
        self.by_key.get(key).copied()
    }

    /// Whether a key is indexed.
    pub fn contains(&self, key: &str) -> bool {
        self.by_key.contains_key(key)
    }

    /// All indexed keys in insertion order.
    pub fn keys(&self) -> &[String] {
        &self.order
    }

    /// The recorded diff bound between two keys, if a candidate record
    /// links them (in the `key → other` direction).
    pub fn recorded_diff(&self, key: &str, other: &str) -> Option<f64> {
        let fp = self.by_key.get(key)?;
        self.entries[fp]
            .candidates
            .iter()
            .find(|c| c.key == other)
            .map(|c| c.diff_bound)
    }

    fn push_record(&mut self, key: &str, record: CandidateRecord) {
        let fp = self.by_key[key];
        let entry = self.entries.get_mut(&fp).expect("entry exists");
        // Keep the best record per (candidate, kind-class) pair.
        if let Some(existing) = entry
            .candidates
            .iter_mut()
            .find(|c| c.key == record.key && synth_class(&c.kind) == synth_class(&record.kind))
        {
            if record.diff_bound < existing.diff_bound {
                *existing = record;
            }
        } else {
            entry.candidates.push(record);
        }
        // `total_cmp` keeps the sort panic-free even if a non-finite
        // score slips in (e.g. through a corrupted snapshot); the lint
        // layer reports such records instead of crashing on them.
        entry.candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
        entry.candidates.truncate(self.config.max_candidates);
    }

    /// Insert a model, running the sampled pairwise analysis through
    /// `models` (key → model resolver) and `analyzer`.
    ///
    /// `models` must be able to resolve every previously indexed key.
    pub fn insert(
        &mut self,
        model: &Model,
        resolve: &dyn Fn(&str) -> Option<Model>,
        analyzer: &mut dyn PairAnalyzer,
    ) {
        let key = model.name.clone();
        assert!(
            !self.by_key.contains_key(&key),
            "key '{key}' is already indexed"
        );
        let fp = Fingerprint::of_model(model);
        self.entries.insert(
            fp,
            Entry {
                key: key.clone(),
                candidates: Vec::new(),
            },
        );
        self.by_key.insert(key.clone(), fp);

        // Sample existing models for direct analysis.
        let n_existing = self.order.len();
        self.order.push(key.clone());
        if n_existing == 0 {
            return;
        }
        let mut rng = Prng::seed_from_u64(self.seed_state ^ fp.0);
        self.seed_state = self.seed_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let sample_n = self.config.sample_size.min(n_existing);
        let sampled: Vec<String> = rng
            .sample_indices(n_existing, sample_n)
            .into_iter()
            .map(|i| self.order[i].clone())
            .collect();

        // Direct pairwise analysis against the sample, both directions.
        let mut direct: Vec<(String, f64)> = Vec::new();
        for s in &sampled {
            let Some(other) = resolve(s) else { continue };
            if let Some(d_rn) = analyzer.whole_diff(model, &other) {
                // other as a candidate for the new model's entry
                self.push_record(
                    &key,
                    CandidateRecord::new(s.clone(), d_rn, CandidateKind::Whole),
                );
                direct.push((s.clone(), d_rn));
            }
            if let Some(d_nr) = analyzer.whole_diff(&other, model) {
                self.push_record(
                    s,
                    CandidateRecord::new(key.clone(), d_nr, CandidateKind::Whole),
                );
            }
            if self.config.segments {
                if let Some(seg_diff) = analyzer.segment_diff(model, &other) {
                    self.push_record(
                        &key,
                        CandidateRecord::new(
                            format!("{key}+{s}"),
                            seg_diff,
                            CandidateKind::Synthesized { donor: s.clone() },
                        ),
                    );
                }
                if let Some(seg_diff) = analyzer.segment_diff(&other, model) {
                    self.push_record(
                        s,
                        CandidateRecord::new(
                            format!("{s}+{key}"),
                            seg_diff,
                            CandidateKind::Synthesized { donor: key.clone() },
                        ),
                    );
                }
            }
        }

        // Transitive derivation through the sampled intermediaries:
        // d(new, other) ≤ min over sampled s of d(new, s) + d(s, other),
        // where `other` ranges over each sampled model's candidate list
        // (not the whole repository — candidate lists are bounded, so this
        // is O(sample × max_candidates) per insertion).
        let mut derived: std::collections::HashMap<String, (f64, String)> =
            std::collections::HashMap::new();
        for (s, d_ns) in &direct {
            let fp = self.by_key[s];
            for cand in &self.entries[&fp].candidates {
                if cand.key == key || sampled.contains(&cand.key) {
                    continue;
                }
                if matches!(cand.kind, CandidateKind::Synthesized { .. }) {
                    continue;
                }
                if !self.by_key.contains_key(&cand.key) {
                    continue;
                }
                let bound = d_ns + cand.diff_bound;
                let entry = derived.entry(cand.key.clone());
                use std::collections::hash_map::Entry;
                match entry {
                    Entry::Occupied(mut o) => {
                        if bound < o.get().0 {
                            o.insert((bound, s.clone()));
                        }
                    }
                    Entry::Vacant(v) => {
                        v.insert((bound, s.clone()));
                    }
                }
            }
        }
        for (other, (bound, via)) in derived {
            self.push_record(
                &key,
                CandidateRecord::new(
                    other.clone(),
                    bound,
                    CandidateKind::Transitive { via: via.clone() },
                ),
            );
            self.push_record(
                &other,
                CandidateRecord::new(key.clone(), bound, CandidateKind::Transitive { via }),
            );
        }
    }

    /// Remove a model from the index: its entry is dropped and every
    /// candidate record referring to it (directly or as a synthesis donor)
    /// is purged from other entries.
    pub fn remove(&mut self, key: &str) -> bool {
        let Some(fp) = self.by_key.remove(key) else {
            return false;
        };
        self.entries.remove(&fp);
        self.order.retain(|k| k != key);
        for entry in self.entries.values_mut() {
            entry.candidates.retain(|c| {
                if c.key == key {
                    return false;
                }
                match &c.kind {
                    CandidateKind::Synthesized { donor } => donor != key,
                    CandidateKind::Transitive { via } => via != key,
                    CandidateKind::Whole => true,
                }
            });
        }
        true
    }

    /// Lookup: all candidates of the keyed model whose equivalence score
    /// meets `min_score`, best first (paper Section 5.2, "collect as the
    /// output all the models whose equivalence level exceeds the
    /// threshold").
    pub fn lookup(&self, reference: Fingerprint, min_score: f64) -> Vec<&CandidateRecord> {
        match self.entries.get(&reference) {
            Some(entry) => entry
                .candidates
                .iter()
                .take_while(|c| c.score >= min_score)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Lookup by key instead of fingerprint.
    pub fn lookup_key(&self, key: &str, min_score: f64) -> Vec<&CandidateRecord> {
        match self.by_key.get(key) {
            Some(fp) => self.lookup(*fp, min_score),
            None => Vec::new(),
        }
    }

    /// The full candidate list of a key (no threshold).
    pub fn candidates_of(&self, key: &str) -> &[CandidateRecord] {
        match self.by_key.get(key) {
            Some(fp) => &self.entries[fp].candidates,
            None => &[],
        }
    }

    /// Audit view of the reverse-lookup table: every `(key, fingerprint)`
    /// registration, sorted by key. Integrity tooling (`sommelier-lint`)
    /// walks this to find index keys that dangle from the repository —
    /// the accessor deliberately reads the raw table rather than the
    /// insertion order so corrupted snapshots with disagreeing views are
    /// still fully visible.
    pub fn by_key_audit(&self) -> Vec<(&str, Fingerprint)> {
        let mut out: Vec<(&str, Fingerprint)> = self
            .by_key
            .iter()
            .map(|(k, fp)| (k.as_str(), *fp))
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Audit view of the entry table: every entry as
    /// `(fingerprint, key, candidate list)`, sorted by key for
    /// deterministic reporting. Candidate lists are exposed verbatim so
    /// invariant checks (sortedness, score consistency, triangle bounds)
    /// see exactly what a snapshot deserialized.
    pub fn entries_audit(&self) -> Vec<(Fingerprint, &str, &[CandidateRecord])> {
        let mut out: Vec<(Fingerprint, &str, &[CandidateRecord])> = self
            .entries
            .iter()
            .map(|(fp, e)| (*fp, e.key.as_str(), e.candidates.as_slice()))
            .collect();
        out.sort_by(|a, b| a.1.cmp(b.1));
        out
    }
}

fn synth_class(kind: &CandidateKind) -> bool {
    matches!(kind, CandidateKind::Synthesized { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};
    use std::collections::HashMap as Map;

    /// A mock analyzer with a fixed distance table.
    struct TableAnalyzer {
        diffs: Map<(String, String), f64>,
        calls: usize,
    }

    impl TableAnalyzer {
        fn new(pairs: &[(&str, &str, f64)]) -> Self {
            let mut diffs = Map::new();
            for (a, b, d) in pairs {
                diffs.insert((a.to_string(), b.to_string()), *d);
                diffs.insert((b.to_string(), a.to_string()), *d);
            }
            TableAnalyzer { diffs, calls: 0 }
        }
    }

    impl PairAnalyzer for TableAnalyzer {
        fn whole_diff(&mut self, reference: &Model, candidate: &Model) -> Option<f64> {
            self.calls += 1;
            self.diffs
                .get(&(reference.name.clone(), candidate.name.clone()))
                .copied()
        }
    }

    fn model(name: &str) -> Model {
        let mut rng = Prng::seed_from_u64(crate::semantic::tests::name_hash(name));
        ModelBuilder::new(name, TaskKind::Other, Shape::vector(4))
            .dense(2, &mut rng)
            .build()
            .unwrap()
    }

    pub(crate) fn name_hash(s: &str) -> u64 {
        s.bytes().fold(7u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64))
    }

    fn resolver(models: Vec<Model>) -> impl Fn(&str) -> Option<Model> {
        move |k: &str| models.iter().find(|m| m.name == k).cloned()
    }

    #[test]
    fn first_insert_has_no_candidates() {
        let mut idx = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let a = model("a");
        idx.insert(&a, &resolver(vec![]), &mut TableAnalyzer::new(&[]));
        assert_eq!(idx.len(), 1);
        assert!(idx.candidates_of("a").is_empty());
    }

    #[test]
    fn pairwise_records_appear_in_both_entries() {
        let mut idx = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let a = model("a");
        let b = model("b");
        let mut an = TableAnalyzer::new(&[("a", "b", 0.1)]);
        let all = vec![a.clone(), b.clone()];
        idx.insert(&a, &resolver(all.clone()), &mut an);
        idx.insert(&b, &resolver(all), &mut an);
        assert_eq!(idx.candidates_of("a").len(), 1);
        assert_eq!(idx.candidates_of("b").len(), 1);
        assert!((idx.candidates_of("b")[0].score - 0.9).abs() < 1e-12);
    }

    #[test]
    fn candidates_sorted_descending_by_score() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 10,
                segments: false,
                max_candidates: 64,
            },
            1,
        );
        let names = ["a", "b", "c", "d"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let mut an = TableAnalyzer::new(&[
            ("a", "b", 0.30),
            ("a", "c", 0.10),
            ("a", "d", 0.20),
            ("b", "c", 0.25),
            ("b", "d", 0.25),
            ("c", "d", 0.05),
        ]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &mut an);
        }
        let cands = idx.candidates_of("a");
        let scores: Vec<f64> = cands.iter().map(|c| c.score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]), "{scores:?}");
        assert_eq!(cands[0].key, "c"); // smallest diff 0.10
    }

    #[test]
    fn lookup_respects_threshold() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 10,
                segments: false,
                max_candidates: 64,
            },
            1,
        );
        let models: Vec<Model> = ["a", "b", "c"].iter().map(|n| model(n)).collect();
        let mut an = TableAnalyzer::new(&[("a", "b", 0.02), ("a", "c", 0.5), ("b", "c", 0.5)]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &mut an);
        }
        let strict = idx.lookup_key("a", 0.95);
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].key, "b");
        let loose = idx.lookup_key("a", 0.0);
        assert_eq!(loose.len(), 2);
    }

    #[test]
    fn sampling_caps_direct_analysis_and_fills_transitively() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 2,
                segments: false,
                max_candidates: 64,
            },
            42,
        );
        let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        // Uniform diffs so transitivity is well-defined.
        let mut pairs = Vec::new();
        for (i, x) in names.iter().enumerate() {
            for y in names.iter().skip(i + 1) {
                pairs.push((*x, *y, 0.05));
            }
        }
        let mut an = TableAnalyzer::new(&pairs);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &mut an);
        }
        // With sampling 2, the last insert does ≤ 2×2 whole_diff calls,
        // far fewer than full pairwise (7×2); candidate lists still cover
        // the rest transitively.
        let cands = idx.candidates_of("h");
        assert!(cands.len() >= 5, "transitive fill produced {}", cands.len());
        let transitive = cands
            .iter()
            .filter(|c| matches!(c.kind, CandidateKind::Transitive { .. }))
            .count();
        assert!(transitive > 0, "expected transitive records");
        // Transitive bounds are conservative: diff 0.05+0.05.
        for c in cands {
            if matches!(c.kind, CandidateKind::Transitive { .. }) {
                assert!((c.diff_bound - 0.10).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut idx = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let a = model("a");
        idx.insert(&a, &resolver(vec![]), &mut TableAnalyzer::new(&[]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            idx.insert(&a, &resolver(vec![]), &mut TableAnalyzer::new(&[]));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn transitive_interval_matches_the_paper_formula() {
        assert_eq!(transitive_interval(0.3, 0.1), (0.19999999999999998, 0.4));
        let (lo, hi) = transitive_interval(0.1, 0.3);
        assert!((lo - 0.2).abs() < 1e-12 && (hi - 0.4).abs() < 1e-12);
        // Degenerate: equal diffs → the pair could be identical.
        assert_eq!(transitive_interval(0.2, 0.2).0, 0.0);
    }

    #[test]
    fn remove_purges_entry_and_references() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 10,
                segments: false,
                max_candidates: 64,
            },
            1,
        );
        let models: Vec<Model> = ["a", "b", "c"].iter().map(|n| model(n)).collect();
        let mut an = TableAnalyzer::new(&[("a", "b", 0.1), ("a", "c", 0.2), ("b", "c", 0.1)]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &mut an);
        }
        assert!(idx.contains("b"));
        assert!(idx.remove("b"));
        assert!(!idx.contains("b"));
        assert_eq!(idx.len(), 2);
        for key in ["a", "c"] {
            assert!(idx.candidates_of(key).iter().all(|c| c.key != "b"));
        }
        assert!(!idx.remove("b"), "double removal is a no-op");
    }

    #[test]
    fn better_measurement_replaces_transitive_record() {
        // A direct measurement later should not be shadowed by an earlier
        // transitive bound if it is tighter.
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 1,
                segments: false,
                max_candidates: 64,
            },
            7,
        );
        let models: Vec<Model> = ["a", "b", "c"].iter().map(|n| model(n)).collect();
        let mut an = TableAnalyzer::new(&[("a", "b", 0.05), ("a", "c", 0.05), ("b", "c", 0.01)]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &mut an);
        }
        // Whatever the sampling chose, all records must carry the tightest
        // known bound ≤ transitive worst case 0.10.
        for key in ["a", "b", "c"] {
            for c in idx.candidates_of(key) {
                assert!(c.diff_bound <= 0.10 + 1e-9);
            }
        }
    }
}
