//! The semantic index (paper Section 5.2).
//!
//! "The top-level structure of the index is a hashtable. For each entry …
//! the key is the hash fingerprint of a DNN, and the value is a list of
//! candidate records, each of which consists of a candidate DNN and its
//! functional equivalence score …, maintained in a descending order."
//!
//! Insertion analyzes the new model against only a small rendezvous-drawn
//! sample of stored models (default 5) and derives relations to everything
//! else transitively: if `X↔Y` differ by `A` and `Y↔Z` by `B`, then `X↔Z`
//! lies in `[|A−B|, A+B]`; the conservative upper end `A+B` is recorded.
//! The sample size is a knob ([`SemanticIndexConfig::sample_size`]); the
//! full-pairwise ablation sets it to `usize::MAX`.
//!
//! The analyzer itself is pluggable through [`PairAnalyzer`] so the index
//! structure stays independent of how equivalence is measured; the default
//! production analyzer (wired to `sommelier-equiv`) lives in
//! `sommelier-query::engine`.
//!
//! # Canonical state and incremental maintenance
//!
//! The index is a *pure function of its key universe*. The primary state
//! is an **edge table**: for every *attempted* pair — `Z` is in `X`'s
//! rendezvous sample or vice versa — the table stores both directed
//! whole-model diffs and both segment-surgery diffs (each possibly `None`
//! when the analyzer found the pair incomparable). Candidate lists are
//! *derived* from the edge table per entry:
//!
//! * a `Whole` record per measured neighbor direction,
//! * a `Synthesized` record per measured segment direction,
//! * a `Transitive` record for every two-hop target whose own pair was
//!   never attempted, carrying the tightest `d(X,Y) + d(Y,Z)` over
//!   measured legs (ties broken on the intermediary key),
//!
//! sorted by `(score desc, diff asc, kind, key)` and truncated to
//! [`SemanticIndexConfig::max_candidates`].
//!
//! Because rendezvous sampling makes each model's partner set a pure
//! function of the fingerprint universe, a mutation batch
//! ([`SemanticIndex::apply_batch_with`]) can compute exactly which samples
//! change, patch the edge table by the delta (analyzing only
//! newly-attempted pairs, in parallel over the pool), and recompute only
//! the entries within one edge hop of a changed edge — `O(affected
//! bucket)` instead of `O(repo)`. A from-scratch build is the same code
//! path with an empty remove set, so an incrementally-maintained index is
//! byte-identical to a rebuild of the same final key set by construction.
//!
//! Entries are individually reference-counted (`Arc`) and the bookkeeping
//! tables are copy-on-write, so cloning the index for snapshot publication
//! shares all untouched state.

use serde::{Deserialize, Serialize};
use sommelier_graph::{Fingerprint, Model};
use sommelier_parallel::ThreadPool;
use sommelier_runtime::metrics::counters;
use sommelier_tensor::mix64;
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The transitive interval of paper Section 5.2: if models `X↔Y` differ
/// by `a` and `Y↔Z` by `b`, the `X↔Z` difference lies in
/// `[|a − b|, a + b]`. The index records the conservative upper end; the
/// lower end is useful for pruning (a candidate whose lower bound already
/// exceeds a threshold can be rejected without measurement).
pub fn transitive_interval(a: f64, b: f64) -> (f64, f64) {
    ((a - b).abs(), a + b)
}

/// How a candidate relates to the keyed model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CandidateKind {
    /// A stored model, holistically equivalent (paper Section 5.2 case i).
    Whole,
    /// A stored model whose relation was derived transitively through a
    /// sampled intermediary rather than measured directly.
    Transitive { via: String },
    /// A synthesized model: the keyed model with one of its segments
    /// replaced by `donor`'s counterpart (case ii).
    Synthesized { donor: String },
}

/// One entry of a candidate list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CandidateRecord {
    /// Candidate model key (repository name).
    pub key: String,
    /// Dataset-independent QoR difference bound to the keyed model.
    pub diff_bound: f64,
    /// Functional equivalence score: `max(0, 1 − diff_bound)`.
    pub score: f64,
    /// Provenance of the relation.
    pub kind: CandidateKind,
}

impl CandidateRecord {
    fn new(key: String, diff_bound: f64, kind: CandidateKind) -> Self {
        CandidateRecord {
            key,
            diff_bound,
            score: (1.0 - diff_bound).max(0.0),
            kind,
        }
    }
}

/// Pluggable pairwise analysis. Returns `None` when the pair is
/// incomparable (failed I/O check).
///
/// Analyses run concurrently during index construction, so implementors
/// take `&self` and must be [`Sync`]; any internal caching belongs behind
/// interior mutability. Determinism contract: the result for a pair must
/// be a pure function of the two models (plus the analyzer's fixed
/// configuration), never of call order — analyzers that need randomness
/// should derive per-pair seeds from the model fingerprints.
pub trait PairAnalyzer: Sync {
    /// Dataset-independent QoR difference bound of `candidate` w.r.t.
    /// `reference` (whole-model analysis, Section 4.1).
    fn whole_diff(&self, reference: &Model, candidate: &Model) -> Option<f64>;

    /// Segment-replacement analysis (Section 4.2): the QoR difference of
    /// `host` with its best replaceable segments taken from `donor`, if
    /// any segments match.
    fn segment_diff(&self, host: &Model, donor: &Model) -> Option<f64> {
        let _ = (host, donor);
        None
    }

    /// Optimistic memoized lookup of [`PairAnalyzer::whole_diff`], keyed
    /// by content fingerprints alone. `Some(result)` means the analyzer
    /// can answer without either model being materialized — the
    /// inner `Option<f64>` carries the same meaning as `whole_diff`'s
    /// return. `None` means "not memoized: resolve the models and run the
    /// full analysis". The default (no memoization) always falls through.
    ///
    /// Index construction consults this before resolving pair models, so
    /// a warm memo turns a reindex sweep over an unchanged repository
    /// into pure fingerprint lookups.
    fn cached_whole_diff(
        &self,
        reference: Fingerprint,
        candidate: Fingerprint,
    ) -> Option<Option<f64>> {
        let _ = (reference, candidate);
        None
    }

    /// Memoized counterpart of [`PairAnalyzer::segment_diff`]; same
    /// contract as [`PairAnalyzer::cached_whole_diff`].
    fn cached_segment_diff(&self, host: Fingerprint, donor: Fingerprint) -> Option<Option<f64>> {
        let _ = (host, donor);
        None
    }
}

/// A key-resolving closure handed to insertion. `Sync` because resolution
/// happens from analysis workers.
pub type Resolver<'a> = &'a (dyn Fn(&str) -> Option<Model> + Sync);

/// Configuration knobs of the semantic index.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SemanticIndexConfig {
    /// Number of stored models sampled for direct pairwise analysis on
    /// each insertion (paper default: 5).
    pub sample_size: usize,
    /// Whether to run the segment analysis and record synthesized
    /// candidates.
    pub segments: bool,
    /// Maximum candidate records kept per entry. Bounding the lists keeps
    /// the index memory at `O(models × max_candidates)` — the paper's
    /// Table 4 footprints (≈0.7 KB per model at 100K models) imply the
    /// same discipline — and caps per-insert transitive work.
    pub max_candidates: usize,
}

impl Default for SemanticIndexConfig {
    fn default() -> Self {
        SemanticIndexConfig {
            sample_size: 5,
            segments: true,
            max_candidates: 64,
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Entry {
    key: String,
    /// Candidate records in descending score order.
    candidates: Vec<CandidateRecord>,
}

/// Both directed whole-model diffs and both segment-surgery diffs of one
/// attempted pair, keyed by `(lo, hi)` fingerprints. `fwd` is the
/// `lo → hi` direction (reference `lo`), `seg_fwd` is host `lo` / donor
/// `hi`. An all-`None` measurement still marks the pair *attempted*,
/// which blocks transitive derivation through it.
#[derive(Clone, Copy, Debug, PartialEq)]
struct EdgeMeasurement {
    fwd: Option<f64>,
    rev: Option<f64>,
    seg_fwd: Option<f64>,
    seg_rev: Option<f64>,
}

/// Serialized form of one edge-table row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) struct EdgeRow {
    pub(crate) lo: u64,
    pub(crate) hi: u64,
    pub(crate) fwd: Option<f64>,
    pub(crate) rev: Option<f64>,
    pub(crate) seg_fwd: Option<f64>,
    pub(crate) seg_rev: Option<f64>,
}

fn pair_key(a: u64, b: u64) -> (u64, u64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The measured-pair table plus its adjacency view — the
/// reverse-reference map that makes removal `O(affected bucket)`: every
/// entry mentioning a fingerprint (directly, as donor, or as `via`) is a
/// neighbor in `adj`.
#[derive(Clone, Debug, Default)]
struct EdgeTable {
    map: HashMap<(u64, u64), EdgeMeasurement>,
    adj: HashMap<u64, HashSet<u64>>,
}

impl EdgeTable {
    fn insert(&mut self, k: (u64, u64), m: EdgeMeasurement) {
        if self.map.insert(k, m).is_none() {
            self.adj.entry(k.0).or_default().insert(k.1);
            self.adj.entry(k.1).or_default().insert(k.0);
        }
    }

    fn remove(&mut self, k: &(u64, u64)) {
        if self.map.remove(k).is_some() {
            for (x, y) in [(k.0, k.1), (k.1, k.0)] {
                if let Some(s) = self.adj.get_mut(&x) {
                    s.remove(&y);
                    if s.is_empty() {
                        self.adj.remove(&x);
                    }
                }
            }
        }
    }

    /// The `(whole, segment)` diffs in the `from → to` direction.
    fn directed(&self, from: u64, to: u64) -> Option<(Option<f64>, Option<f64>)> {
        let m = self.map.get(&pair_key(from, to))?;
        Some(if from < to {
            (m.fwd, m.seg_fwd)
        } else {
            (m.rev, m.seg_rev)
        })
    }

    fn from_rows(rows: Vec<EdgeRow>) -> Self {
        let mut t = EdgeTable::default();
        for r in rows {
            t.insert(
                (r.lo, r.hi),
                EdgeMeasurement {
                    fwd: r.fwd,
                    rev: r.rev,
                    seg_fwd: r.seg_fwd,
                    seg_rev: r.seg_rev,
                },
            );
        }
        t
    }
}

/// The semantic index.
#[derive(Clone, Debug)]
pub struct SemanticIndex {
    config: SemanticIndexConfig,
    /// Fingerprint → entry. Entries are individually `Arc`ed so a clone
    /// of the index (snapshot publication) shares every untouched entry.
    entries: HashMap<Fingerprint, Arc<Entry>>,
    /// Key → fingerprint (reverse lookup for by-name references).
    by_key: Arc<HashMap<String, Fingerprint>>,
    /// Sorted key list (derived from `by_key`, maintained incrementally).
    order: Arc<Vec<String>>,
    /// Base seed for rendezvous partner selection. Despite the
    /// historical name (kept for snapshot compatibility) this never
    /// advances: partners are ranked by
    /// `mix64(seed_state, fp_self, fp_other)`, a pure function of the
    /// index seed and the two models' content, so the sample drawn for a
    /// model cannot depend on how many draws preceded it.
    seed_state: u64,
    /// Measurements of every attempted pair (see [`EdgeTable`]).
    edges: Arc<EdgeTable>,
    /// Memoized rendezvous samples (fingerprint → sampled partner
    /// fingerprints in rank order) for the *current* universe. `None`
    /// after deserialization — rematerialized lazily on the first
    /// universe-changing mutation, so read-only opens never pay for it.
    samples: Option<Arc<HashMap<u64, Vec<u64>>>>,
}

// The edge table serializes as a sorted row list appended after the
// legacy fields (snapshots without it still parse); `order` is emitted
// for layout continuity but rebuilt from `by_key` on input, and the
// per-entry `Arc`s are invisible to the wire format.
impl Serialize for SemanticIndex {
    fn to_value(&self) -> serde::Value {
        let entries: HashMap<Fingerprint, &Entry> =
            self.entries.iter().map(|(fp, e)| (*fp, &**e)).collect();
        serde::Value::Map(vec![
            ("config".to_string(), self.config.to_value()),
            ("entries".to_string(), entries.to_value()),
            ("by_key".to_string(), (*self.by_key).to_value()),
            ("order".to_string(), (*self.order).to_value()),
            ("seed_state".to_string(), self.seed_state.to_value()),
            ("edges".to_string(), self.edge_rows().to_value()),
        ])
    }
}

impl Deserialize for SemanticIndex {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let _ = serde::expect_map(v)?;
        let config: SemanticIndexConfig = serde::field(v, "config")?;
        let entries: HashMap<Fingerprint, Entry> = serde::field(v, "entries")?;
        let by_key: HashMap<String, Fingerprint> = serde::field(v, "by_key")?;
        let seed_state: u64 = serde::field(v, "seed_state")?;
        // Pre-edge-table snapshots carry no "edges" field: tolerate its
        // absence (the entry lists are still fully served; only further
        // incremental maintenance needs the edges).
        let rows: Vec<EdgeRow> = match v.get_field("edges") {
            None | Some(serde::Value::Null) => Vec::new(),
            Some(x) => Deserialize::from_value(x)?,
        };
        let mut order: Vec<String> = by_key.keys().cloned().collect();
        order.sort_unstable();
        Ok(SemanticIndex {
            config,
            entries: entries
                .into_iter()
                .map(|(fp, e)| (fp, Arc::new(e)))
                .collect(),
            by_key: Arc::new(by_key),
            order: Arc::new(order),
            seed_state,
            edges: Arc::new(EdgeTable::from_rows(rows)),
            samples: None,
        })
    }
}

/// Rendezvous (highest-random-weight) selection: rank every candidate by
/// `mix64(seed, fp, other)` (key string tie-break) and keep the `k`
/// lowest, in rank order. A pure function of the candidate set, so the
/// incremental paths can merge instead of rescanning.
fn topk_sample(seed: u64, k: usize, fp: u64, cands: &[(u64, &str)]) -> Vec<u64> {
    let mut ranked: Vec<(u64, &str, u64)> = cands
        .iter()
        .filter(|(o, _)| *o != fp)
        .map(|&(o, key)| (mix64(&[seed, fp, o]), key, o))
        .collect();
    ranked.sort_unstable();
    ranked.truncate(k);
    ranked.into_iter().map(|r| r.2).collect()
}

fn kind_rank(k: &CandidateKind) -> u8 {
    match k {
        CandidateKind::Whole => 0,
        CandidateKind::Transitive { .. } => 1,
        CandidateKind::Synthesized { .. } => 2,
    }
}

/// The canonical candidate order: best score first, then tighter bound,
/// then kind, then key — a total order over any legal record set, so the
/// derived lists are schedule-independent.
fn canonical_cmp(a: &CandidateRecord, b: &CandidateRecord) -> std::cmp::Ordering {
    b.score
        .total_cmp(&a.score)
        .then_with(|| a.diff_bound.total_cmp(&b.diff_bound))
        .then_with(|| kind_rank(&a.kind).cmp(&kind_rank(&b.kind)))
        .then_with(|| a.key.cmp(&b.key))
}

/// Derive one entry's candidate list from the edge table (see the module
/// docs for the canonical record rules).
fn compute_entry(
    config: SemanticIndexConfig,
    entries: &HashMap<Fingerprint, Arc<Entry>>,
    edges: &EdgeTable,
    fp: u64,
) -> Entry {
    let key = entries[&Fingerprint(fp)].key.clone();
    let empty = HashSet::new();
    let neighbors = edges.adj.get(&fp).unwrap_or(&empty);
    let mut candidates: Vec<CandidateRecord> = Vec::new();
    for &n in neighbors {
        let nkey = &entries[&Fingerprint(n)].key;
        let (d, seg) = edges.directed(fp, n).expect("adjacent pair is measured");
        if let Some(d) = d {
            candidates.push(CandidateRecord::new(nkey.clone(), d, CandidateKind::Whole));
        }
        if config.segments {
            if let Some(seg) = seg {
                candidates.push(CandidateRecord::new(
                    format!("{key}+{nkey}"),
                    seg,
                    CandidateKind::Synthesized { donor: nkey.clone() },
                ));
            }
        }
    }
    // Transitive: tightest two-leg composition through measured legs, to
    // targets whose own pair with `fp` was never attempted (an attempted
    // pair — even an incomparable one — is never shadowed by a bound).
    let mut best: HashMap<u64, (f64, &str)> = HashMap::new();
    for &y in neighbors {
        let Some(d_xy) = edges.directed(fp, y).expect("adjacent pair is measured").0 else {
            continue;
        };
        let ykey: &str = &entries[&Fingerprint(y)].key;
        let Some(zs) = edges.adj.get(&y) else { continue };
        for &z in zs {
            if z == fp || edges.map.contains_key(&pair_key(fp, z)) {
                continue;
            }
            let Some(d_yz) = edges.directed(y, z).expect("adjacent pair is measured").0 else {
                continue;
            };
            let cand = (d_xy + d_yz, ykey);
            best.entry(z)
                .and_modify(|cur| {
                    if cand.0 < cur.0 || (cand.0 == cur.0 && cand.1 < cur.1) {
                        *cur = cand;
                    }
                })
                .or_insert(cand);
        }
    }
    for (z, (bound, via)) in best {
        candidates.push(CandidateRecord::new(
            entries[&Fingerprint(z)].key.clone(),
            bound,
            CandidateKind::Transitive {
                via: via.to_string(),
            },
        ));
    }
    candidates.sort_by(canonical_cmp);
    candidates.truncate(config.max_candidates);
    Entry { key, candidates }
}

impl SemanticIndex {
    /// Create an empty index.
    pub fn new(config: SemanticIndexConfig, seed: u64) -> Self {
        SemanticIndex {
            config,
            entries: HashMap::new(),
            by_key: Arc::new(HashMap::new()),
            order: Arc::new(Vec::new()),
            seed_state: seed,
            edges: Arc::new(EdgeTable::default()),
            samples: Some(Arc::new(HashMap::new())),
        }
    }

    /// Reassemble an index from decoded parts (the binary-snapshot
    /// loader and synthetic-index builders). `entries` carries one
    /// `(fingerprint, key, candidates)` triple per model; the reverse
    /// lookup table is re-derived from it. `order` is accepted for
    /// call-site compatibility but derived (sorted keys) since the
    /// edge-table rework.
    pub fn from_parts(
        config: SemanticIndexConfig,
        seed: u64,
        entries: Vec<(Fingerprint, String, Vec<CandidateRecord>)>,
        order: Vec<String>,
    ) -> Self {
        let _ = order;
        Self::from_parts_with_edges(config, seed, entries, Vec::new())
    }

    /// [`SemanticIndex::from_parts`] plus the decoded edge table (the
    /// v2 binary-snapshot loader).
    pub(crate) fn from_parts_with_edges(
        config: SemanticIndexConfig,
        seed: u64,
        entries: Vec<(Fingerprint, String, Vec<CandidateRecord>)>,
        rows: Vec<EdgeRow>,
    ) -> Self {
        let mut map = HashMap::with_capacity(entries.len());
        let mut by_key = HashMap::with_capacity(entries.len());
        for (fp, key, candidates) in entries {
            by_key.insert(key.clone(), fp);
            map.insert(fp, Arc::new(Entry { key, candidates }));
        }
        let mut order: Vec<String> = by_key.keys().cloned().collect();
        order.sort_unstable();
        SemanticIndex {
            config,
            entries: map,
            by_key: Arc::new(by_key),
            order: Arc::new(order),
            seed_state: seed,
            edges: Arc::new(EdgeTable::from_rows(rows)),
            samples: None,
        }
    }

    /// The serialized edge table: one row per attempted pair, sorted by
    /// `(lo, hi)` fingerprint.
    pub(crate) fn edge_rows(&self) -> Vec<EdgeRow> {
        let mut rows: Vec<EdgeRow> = self
            .edges
            .map
            .iter()
            .map(|(&(lo, hi), m)| EdgeRow {
                lo,
                hi,
                fwd: m.fwd,
                rev: m.rev,
                seg_fwd: m.seg_fwd,
                seg_rev: m.seg_rev,
            })
            .collect();
        rows.sort_by_key(|r| (r.lo, r.hi));
        rows
    }

    /// The configuration knobs this index was built with.
    pub fn config(&self) -> SemanticIndexConfig {
        self.config
    }

    /// The rendezvous base seed (see the `seed_state` field docs).
    pub fn seed(&self) -> u64 {
        self.seed_state
    }

    /// Number of indexed models.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Fingerprint registered for a key, if present.
    pub fn fingerprint_of(&self, key: &str) -> Option<Fingerprint> {
        self.by_key.get(key).copied()
    }

    /// Whether a key is indexed.
    pub fn contains(&self, key: &str) -> bool {
        self.by_key.contains_key(key)
    }

    /// All indexed keys, sorted.
    pub fn keys(&self) -> &[String] {
        &self.order
    }

    /// The recorded diff bound between two keys, if a candidate record
    /// links them (in the `key → other` direction).
    pub fn recorded_diff(&self, key: &str, other: &str) -> Option<f64> {
        let fp = self.by_key.get(key)?;
        self.entries[fp]
            .candidates
            .iter()
            .find(|c| c.key == other)
            .map(|c| c.diff_bound)
    }

    /// Insert a model, running the sampled pairwise analysis through
    /// `resolve` (key → model resolver) and `analyzer` on the process
    /// [global pool](sommelier_parallel::global).
    ///
    /// `resolve` must be able to resolve every previously indexed key.
    pub fn insert(&mut self, model: &Model, resolve: Resolver<'_>, analyzer: &dyn PairAnalyzer) {
        self.bulk_insert(std::slice::from_ref(model), resolve, analyzer);
    }

    /// Insert a batch of models on the process
    /// [global pool](sommelier_parallel::global). See
    /// [`SemanticIndex::bulk_insert_with`].
    pub fn bulk_insert(
        &mut self,
        models: &[Model],
        resolve: Resolver<'_>,
        analyzer: &dyn PairAnalyzer,
    ) {
        self.bulk_insert_with(&sommelier_parallel::global(), models, resolve, analyzer);
    }

    /// Insert a batch of models, fanning the expensive pairwise analyses
    /// out across `pool` with one task per attempted pair.
    pub fn bulk_insert_with(
        &mut self,
        pool: &ThreadPool,
        models: &[Model],
        resolve: Resolver<'_>,
        analyzer: &dyn PairAnalyzer,
    ) {
        self.apply_batch_with(pool, &[], models, resolve, analyzer);
    }

    /// Remove a model on the process global pool. Returns whether the key
    /// was indexed. Survivors whose rendezvous sample contained the
    /// removed model re-sample, which can select pairs never measured
    /// before — hence the resolver and analyzer.
    pub fn remove(&mut self, key: &str, resolve: Resolver<'_>, analyzer: &dyn PairAnalyzer) -> bool {
        self.remove_with(&sommelier_parallel::global(), key, resolve, analyzer)
    }

    /// [`SemanticIndex::remove`] on an explicit pool.
    pub fn remove_with(
        &mut self,
        pool: &ThreadPool,
        key: &str,
        resolve: Resolver<'_>,
        analyzer: &dyn PairAnalyzer,
    ) -> bool {
        if !self.by_key.contains_key(key) {
            return false;
        }
        self.apply_batch_with(pool, &[key.to_string()], &[], resolve, analyzer);
        true
    }

    /// Apply one mutation batch — any mix of removals (by key) and
    /// insertions — with a single pairwise-analysis fan-out over `pool`.
    ///
    /// Cost is `O(affected bucket)`: only samples that actually change
    /// are re-drawn, only newly-attempted pairs are analyzed, and only
    /// entries within one edge hop of a changed edge are recomputed.
    /// Since the canonical state is a pure function of the final key
    /// universe, the result is byte-identical to a from-scratch build of
    /// that universe at any job count.
    ///
    /// Panics if an inserted name is already indexed and not also in
    /// `removes` (replace = remove + add in one batch).
    pub fn apply_batch_with(
        &mut self,
        pool: &ThreadPool,
        removes: &[String],
        models: &[Model],
        resolve: Resolver<'_>,
        analyzer: &dyn PairAnalyzer,
    ) {
        // ---- plan: effective removals, add validation, alias resolution
        let mut remove_keys: Vec<&str> = removes
            .iter()
            .map(|k| k.as_str())
            .filter(|k| self.by_key.contains_key(*k))
            .collect();
        remove_keys.sort_unstable();
        remove_keys.dedup();
        if remove_keys.is_empty() && models.is_empty() {
            return;
        }
        {
            let mut names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
            names.sort_unstable();
            for w in names.windows(2) {
                assert!(w[0] != w[1], "key '{}' is already indexed", w[1]);
            }
            for name in names {
                assert!(
                    !self.by_key.contains_key(name) || remove_keys.binary_search(&name).is_ok(),
                    "key '{name}' is already indexed"
                );
            }
        }
        let add_fps: Vec<u64> = models
            .iter()
            .map(|m| Fingerprint::of_model(m).0)
            .collect();
        // Canonical key per surviving fingerprint: the lexicographically
        // largest alias (what a from-scratch build's last writer leaves).
        let mut aliases: HashMap<u64, Vec<&str>> = HashMap::new();
        for (key, fp) in self.by_key.iter() {
            if remove_keys.binary_search(&key.as_str()).is_err() {
                aliases.entry(fp.0).or_default().push(key.as_str());
            }
        }
        for (m, fp) in models.iter().zip(&add_fps) {
            aliases.entry(*fp).or_default().push(m.name.as_str());
        }
        let canon: HashMap<u64, String> = aliases
            .into_iter()
            .map(|(fp, mut ks)| {
                ks.sort_unstable();
                (fp, ks.last().unwrap().to_string())
            })
            .collect();
        let mut r_fps: Vec<u64> = self
            .entries
            .keys()
            .map(|fp| fp.0)
            .filter(|fp| !canon.contains_key(fp))
            .collect();
        r_fps.sort_unstable();
        let mut a_fps: Vec<u64> = canon
            .keys()
            .copied()
            .filter(|fp| !self.entries.contains_key(&Fingerprint(*fp)))
            .collect();
        a_fps.sort_unstable();
        let key_changed: Vec<u64> = canon
            .iter()
            .filter(|(fp, k)| {
                self.entries
                    .get(&Fingerprint(**fp))
                    .is_some_and(|e| e.key != **k)
            })
            .map(|(fp, _)| *fp)
            .collect();
        let universe_changed = !r_fps.is_empty() || !a_fps.is_empty();

        // ---- sample delta + edge delta + pair analysis
        let mut drops: Vec<(u64, u64)> = Vec::new();
        let mut adds: Vec<(u64, u64)> = Vec::new();
        let mut measured: Vec<EdgeMeasurement> = Vec::new();
        let mut new_samples: Option<HashMap<u64, Vec<u64>>> = None;
        if universe_changed {
            let seed = self.seed_state;
            let k = self.config.sample_size;
            if self.samples.is_none() {
                // Lazily rematerialize the sample memo for the pre-batch
                // universe (deserialized indices don't carry it).
                let mut universe: Vec<(u64, &str)> = self
                    .entries
                    .iter()
                    .map(|(fp, e)| (fp.0, e.key.as_str()))
                    .collect();
                universe.sort_unstable();
                let fps: Vec<u64> = universe.iter().map(|(fp, _)| *fp).collect();
                let lists = pool.par_map(&fps, |&fp| topk_sample(seed, k, fp, &universe));
                self.samples = Some(Arc::new(fps.into_iter().zip(lists).collect()));
            }
            let old_samples = self.samples.clone().expect("samples materialized");
            let r_set: HashSet<u64> = r_fps.iter().copied().collect();
            let mut new_universe: Vec<(u64, &str)> =
                canon.iter().map(|(fp, key)| (*fp, key.as_str())).collect();
            new_universe.sort_unstable();
            let add_cands: Vec<(u64, &str)> = a_fps
                .iter()
                .map(|fp| (*fp, canon[fp].as_str()))
                .collect();
            // Survivors split three ways: rescan (a sampled partner was
            // removed — merge can't recover what the removal displaced),
            // merge (only additions to fold in), or untouched.
            let mut rescan: Vec<u64> = Vec::new();
            let mut merge: Vec<u64> = Vec::new();
            for &(fp, _) in &new_universe {
                if a_fps.binary_search(&fp).is_ok() {
                    continue;
                }
                if old_samples[&fp].iter().any(|o| r_set.contains(o)) {
                    rescan.push(fp);
                } else if !a_fps.is_empty() {
                    merge.push(fp);
                }
            }
            let mut full_targets = rescan;
            full_targets.extend_from_slice(&a_fps);
            full_targets.sort_unstable();
            let full_lists =
                pool.par_map(&full_targets, |&fp| topk_sample(seed, k, fp, &new_universe));
            // A survivor's new top-k over `old ∪ A` is exact because
            // top-k(U′) ⊆ top-k(U) ∪ A when nothing sampled was removed.
            let merge_lists = pool.par_map(&merge, |fp| {
                let mut cands: Vec<(u64, &str)> = old_samples[fp]
                    .iter()
                    .map(|o| (*o, canon[o].as_str()))
                    .collect();
                cands.extend_from_slice(&add_cands);
                topk_sample(seed, k, *fp, &cands)
            });
            let mut samples: HashMap<u64, Vec<u64>> =
                HashMap::with_capacity(new_universe.len());
            let mut changed: Vec<u64> = Vec::new();
            for (fp, list) in full_targets.iter().zip(full_lists) {
                if old_samples.get(fp) != Some(&list) {
                    changed.push(*fp);
                }
                samples.insert(*fp, list);
            }
            for (fp, list) in merge.iter().zip(merge_lists) {
                if old_samples[fp] != list {
                    changed.push(*fp);
                }
                samples.insert(*fp, list);
            }
            for &(fp, _) in &new_universe {
                samples
                    .entry(fp)
                    .or_insert_with(|| old_samples[&fp].clone());
            }
            changed.sort_unstable();
            // Edge delta: every edge incident to a removed model dies;
            // for each changed sample, newly-selected partners become
            // attempted pairs and deselected partners stay attempted
            // only if the partner still samples this model.
            for &r in &r_fps {
                if let Some(ns) = self.edges.adj.get(&r) {
                    for &n in ns {
                        drops.push(pair_key(r, n));
                    }
                }
            }
            for &x in &changed {
                let s_old: &[u64] = old_samples.get(&x).map_or(&[], |v| v.as_slice());
                let s_new = &samples[&x];
                for &q in s_new {
                    if !s_old.contains(&q) && !self.edges.map.contains_key(&pair_key(x, q)) {
                        adds.push(pair_key(x, q));
                    }
                }
                for &p in s_old {
                    if s_new.contains(&p) || r_set.contains(&p) {
                        continue;
                    }
                    if samples[&p].contains(&x) {
                        continue;
                    }
                    if self.edges.map.contains_key(&pair_key(x, p)) {
                        drops.push(pair_key(x, p));
                    }
                }
            }
            adds.sort_unstable();
            adds.dedup();
            drops.sort_unstable();
            drops.dedup();
            // Analyze newly-attempted pairs — the only expensive step —
            // one task per pair. The memo fast path answers warm sweeps
            // without materializing either model; an unresolvable pair
            // is still recorded as attempted (all-`None`).
            let batch_models: HashMap<u64, &Model> = models
                .iter()
                .zip(&add_fps)
                .map(|(m, fp)| (*fp, m))
                .collect();
            let segments = self.config.segments;
            measured = pool.par_map(&adds, |&(lo, hi)| {
                let c_fwd = analyzer.cached_whole_diff(Fingerprint(lo), Fingerprint(hi));
                let c_rev = analyzer.cached_whole_diff(Fingerprint(hi), Fingerprint(lo));
                let c_sf = if segments {
                    analyzer.cached_segment_diff(Fingerprint(lo), Fingerprint(hi))
                } else {
                    Some(None)
                };
                let c_sr = if segments {
                    analyzer.cached_segment_diff(Fingerprint(hi), Fingerprint(lo))
                } else {
                    Some(None)
                };
                if let (Some(fwd), Some(rev), Some(seg_fwd), Some(seg_rev)) =
                    (c_fwd, c_rev, c_sf, c_sr)
                {
                    return EdgeMeasurement {
                        fwd,
                        rev,
                        seg_fwd,
                        seg_rev,
                    };
                }
                let lo_m: Option<Cow<'_, Model>> = batch_models
                    .get(&lo)
                    .map(|m| Cow::Borrowed(*m))
                    .or_else(|| resolve(&canon[&lo]).map(Cow::Owned));
                let hi_m: Option<Cow<'_, Model>> = batch_models
                    .get(&hi)
                    .map(|m| Cow::Borrowed(*m))
                    .or_else(|| resolve(&canon[&hi]).map(Cow::Owned));
                match (lo_m, hi_m) {
                    (Some(a), Some(b)) => EdgeMeasurement {
                        fwd: c_fwd.unwrap_or_else(|| analyzer.whole_diff(&a, &b)),
                        rev: c_rev.unwrap_or_else(|| analyzer.whole_diff(&b, &a)),
                        seg_fwd: c_sf.unwrap_or_else(|| analyzer.segment_diff(&a, &b)),
                        seg_rev: c_sr.unwrap_or_else(|| analyzer.segment_diff(&b, &a)),
                    },
                    _ => EdgeMeasurement {
                        fwd: c_fwd.flatten(),
                        rev: c_rev.flatten(),
                        seg_fwd: c_sf.flatten(),
                        seg_rev: c_sr.flatten(),
                    },
                }
            });
            new_samples = Some(samples);
        }
        counters::add("index.models_indexed", models.len() as u64);
        counters::add("index.pair_analyses", adds.len() as u64);

        // ---- structural apply (copy-on-write: untouched state is shared
        // with any published snapshot clones)
        let mut endpoint_old_neighbors: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(u, v) in drops.iter().chain(adds.iter()) {
            for e in [u, v] {
                endpoint_old_neighbors.entry(e).or_insert_with(|| {
                    self.edges
                        .adj
                        .get(&e)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default()
                });
            }
        }
        for &r in &r_fps {
            self.entries.remove(&Fingerprint(r));
        }
        for &a in &a_fps {
            self.entries.insert(
                Fingerprint(a),
                Arc::new(Entry {
                    key: canon[&a].clone(),
                    candidates: Vec::new(),
                }),
            );
        }
        for &f in &key_changed {
            let e = self.entries.get_mut(&Fingerprint(f)).expect("entry exists");
            Arc::make_mut(e).key = canon[&f].clone();
        }
        {
            let by_key = Arc::make_mut(&mut self.by_key);
            let order = Arc::make_mut(&mut self.order);
            for k in &remove_keys {
                by_key.remove(*k);
                if let Ok(i) = order.binary_search_by(|o| o.as_str().cmp(k)) {
                    order.remove(i);
                }
            }
            for (m, fp) in models.iter().zip(&add_fps) {
                by_key.insert(m.name.clone(), Fingerprint(*fp));
                if let Err(i) = order.binary_search(&m.name) {
                    order.insert(i, m.name.clone());
                }
            }
        }
        if universe_changed {
            let edges = Arc::make_mut(&mut self.edges);
            for pk in &drops {
                edges.remove(pk);
            }
            for (pk, m) in adds.iter().zip(measured) {
                edges.insert(*pk, m);
            }
            self.samples = Some(Arc::new(new_samples.expect("computed above")));
        }

        // ---- recompute affected entries: endpoints and (old + new)
        // neighbors of every changed edge — candidate lists only depend
        // on the 1-hop edge neighborhood plus 2-hop keys — and the 2-hop
        // neighborhood of every renamed model.
        let mut affected: HashSet<u64> = HashSet::new();
        for &(u, v) in drops.iter().chain(adds.iter()) {
            for e in [u, v] {
                affected.insert(e);
                for &n in &endpoint_old_neighbors[&e] {
                    affected.insert(n);
                }
                if let Some(ns) = self.edges.adj.get(&e) {
                    affected.extend(ns.iter().copied());
                }
            }
        }
        affected.extend(a_fps.iter().copied());
        for &f in &key_changed {
            affected.insert(f);
            if let Some(n1) = self.edges.adj.get(&f) {
                for &y in n1 {
                    affected.insert(y);
                    if let Some(n2) = self.edges.adj.get(&y) {
                        affected.extend(n2.iter().copied());
                    }
                }
            }
        }
        let mut targets: Vec<u64> = affected
            .into_iter()
            .filter(|fp| self.entries.contains_key(&Fingerprint(*fp)))
            .collect();
        targets.sort_unstable();
        if !targets.is_empty() {
            let computed: Vec<Entry> = {
                let entries = &self.entries;
                let edges: &EdgeTable = &self.edges;
                let config = self.config;
                pool.par_map(&targets, |&fp| compute_entry(config, entries, edges, fp))
            };
            for (fp, e) in targets.iter().zip(computed) {
                self.entries.insert(Fingerprint(*fp), Arc::new(e));
            }
        }
    }

    /// Lookup: all candidates of the keyed model whose equivalence score
    /// meets `min_score`, best first (paper Section 5.2, "collect as the
    /// output all the models whose equivalence level exceeds the
    /// threshold").
    pub fn lookup(&self, reference: Fingerprint, min_score: f64) -> Vec<&CandidateRecord> {
        match self.entries.get(&reference) {
            Some(entry) => entry
                .candidates
                .iter()
                .take_while(|c| c.score >= min_score)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Lookup by key instead of fingerprint.
    pub fn lookup_key(&self, key: &str, min_score: f64) -> Vec<&CandidateRecord> {
        match self.by_key.get(key) {
            Some(fp) => self.lookup(*fp, min_score),
            None => Vec::new(),
        }
    }

    /// The full candidate list of a key (no threshold).
    pub fn candidates_of(&self, key: &str) -> &[CandidateRecord] {
        match self.by_key.get(key) {
            Some(fp) => &self.entries[fp].candidates,
            None => &[],
        }
    }

    /// Audit view of the reverse-lookup table: every `(key, fingerprint)`
    /// registration, sorted by key. Integrity tooling (`sommelier-lint`)
    /// walks this to find index keys that dangle from the repository —
    /// the accessor deliberately reads the raw table rather than the
    /// derived key list so corrupted snapshots with disagreeing views are
    /// still fully visible.
    pub fn by_key_audit(&self) -> Vec<(&str, Fingerprint)> {
        let mut out: Vec<(&str, Fingerprint)> = self
            .by_key
            .iter()
            .map(|(k, fp)| (k.as_str(), *fp))
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Audit view of the entry table: every entry as
    /// `(fingerprint, key, candidate list)`, sorted by key for
    /// deterministic reporting. Candidate lists are exposed verbatim so
    /// invariant checks (sortedness, score consistency, triangle bounds)
    /// see exactly what a snapshot deserialized.
    pub fn entries_audit(&self) -> Vec<(Fingerprint, &str, &[CandidateRecord])> {
        let mut out: Vec<(Fingerprint, &str, &[CandidateRecord])> = self
            .entries
            .iter()
            .map(|(fp, e)| (*fp, e.key.as_str(), e.candidates.as_slice()))
            .collect();
        out.sort_by(|a, b| a.1.cmp(b.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};
    use std::collections::HashMap as Map;

    /// A mock analyzer with a fixed distance table. Analyses run from
    /// pool workers, so the call counter is atomic.
    struct TableAnalyzer {
        diffs: Map<(String, String), f64>,
        calls: std::sync::atomic::AtomicUsize,
    }

    impl TableAnalyzer {
        fn new(pairs: &[(&str, &str, f64)]) -> Self {
            let mut diffs = Map::new();
            for (a, b, d) in pairs {
                diffs.insert((a.to_string(), b.to_string()), *d);
                diffs.insert((b.to_string(), a.to_string()), *d);
            }
            TableAnalyzer {
                diffs,
                calls: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl PairAnalyzer for TableAnalyzer {
        fn whole_diff(&self, reference: &Model, candidate: &Model) -> Option<f64> {
            self.calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.diffs
                .get(&(reference.name.clone(), candidate.name.clone()))
                .copied()
        }
    }

    fn model(name: &str) -> Model {
        let mut rng = Prng::seed_from_u64(crate::semantic::tests::name_hash(name));
        ModelBuilder::new(name, TaskKind::Other, Shape::vector(4))
            .dense(2, &mut rng)
            .build()
            .unwrap()
    }

    pub(crate) fn name_hash(s: &str) -> u64 {
        s.bytes().fold(7u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64))
    }

    fn resolver(models: Vec<Model>) -> impl Fn(&str) -> Option<Model> {
        move |k: &str| models.iter().find(|m| m.name == k).cloned()
    }

    #[test]
    fn first_insert_has_no_candidates() {
        let mut idx = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let a = model("a");
        idx.insert(&a, &resolver(vec![]), &TableAnalyzer::new(&[]));
        assert_eq!(idx.len(), 1);
        assert!(idx.candidates_of("a").is_empty());
    }

    #[test]
    fn pairwise_records_appear_in_both_entries() {
        let mut idx = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let a = model("a");
        let b = model("b");
        let an = TableAnalyzer::new(&[("a", "b", 0.1)]);
        let all = vec![a.clone(), b.clone()];
        idx.insert(&a, &resolver(all.clone()), &an);
        idx.insert(&b, &resolver(all), &an);
        assert_eq!(idx.candidates_of("a").len(), 1);
        assert_eq!(idx.candidates_of("b").len(), 1);
        assert!((idx.candidates_of("b")[0].score - 0.9).abs() < 1e-12);
    }

    #[test]
    fn candidates_sorted_descending_by_score() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 10,
                segments: false,
                max_candidates: 64,
            },
            1,
        );
        let names = ["a", "b", "c", "d"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let an = TableAnalyzer::new(&[
            ("a", "b", 0.30),
            ("a", "c", 0.10),
            ("a", "d", 0.20),
            ("b", "c", 0.25),
            ("b", "d", 0.25),
            ("c", "d", 0.05),
        ]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        let cands = idx.candidates_of("a");
        let scores: Vec<f64> = cands.iter().map(|c| c.score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]), "{scores:?}");
        assert_eq!(cands[0].key, "c"); // smallest diff 0.10
    }

    #[test]
    fn lookup_respects_threshold() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 10,
                segments: false,
                max_candidates: 64,
            },
            1,
        );
        let models: Vec<Model> = ["a", "b", "c"].iter().map(|n| model(n)).collect();
        let an = TableAnalyzer::new(&[("a", "b", 0.02), ("a", "c", 0.5), ("b", "c", 0.5)]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        let strict = idx.lookup_key("a", 0.95);
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].key, "b");
        let loose = idx.lookup_key("a", 0.0);
        assert_eq!(loose.len(), 2);
    }

    /// Dense random-ish distance table over `names` for determinism tests.
    fn dense_pairs(names: &[&'static str]) -> Vec<(&'static str, &'static str, f64)> {
        let mut pairs = Vec::new();
        for (i, x) in names.iter().enumerate() {
            for y in names.iter().skip(i + 1) {
                let d = ((name_hash(x) ^ name_hash(y)) % 40) as f64 / 100.0 + 0.01;
                pairs.push((*x, *y, d));
            }
        }
        pairs
    }

    #[test]
    fn bulk_insert_matches_sequential_at_any_job_count() {
        // The same batch built on a sequential pool and on multi-worker
        // pools must serialize to byte-identical JSON: samples, edge
        // deltas, and derived entries are all pure functions of the
        // universe, computed over `par_map`s that preserve input order.
        let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let pairs = dense_pairs(&names);
        let cfg = SemanticIndexConfig {
            sample_size: 3,
            segments: false,
            max_candidates: 16,
        };
        let res = resolver(models.clone());

        let mut sequential = SemanticIndex::new(cfg, 9);
        sequential.bulk_insert_with(
            &sommelier_parallel::ThreadPool::new(1),
            &models,
            &res,
            &TableAnalyzer::new(&pairs),
        );
        let baseline = serde_json::to_string(&sequential).unwrap();

        for jobs in [2, 4, 8] {
            let pool = sommelier_parallel::ThreadPool::new(jobs);
            let mut idx = SemanticIndex::new(cfg, 9);
            idx.bulk_insert_with(&pool, &models, &res, &TableAnalyzer::new(&pairs));
            let got = serde_json::to_string(&idx).unwrap();
            assert_eq!(got, baseline, "jobs={jobs} diverged from sequential");
        }
    }

    #[test]
    fn partner_selection_is_stable_under_reinsertion() {
        // The index is a pure function of the key universe: removing a
        // model and re-inserting it (the reindexing sweep) must restore
        // the exact serialized state, edges and all.
        let names = ["a", "b", "c", "d", "e", "f"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let pairs = dense_pairs(&names);
        let cfg = SemanticIndexConfig {
            sample_size: 2,
            segments: false,
            max_candidates: 16,
        };
        let res = resolver(models.clone());
        let an = TableAnalyzer::new(&pairs);
        let mut idx = SemanticIndex::new(cfg, 9);
        idx.bulk_insert(&models, &res, &an);

        let before = serde_json::to_string(&idx).unwrap();
        assert!(idx.remove("c", &res, &an));
        assert!(!idx.contains("c"));
        idx.insert(&models[2], &res, &an);
        let after = serde_json::to_string(&idx).unwrap();
        assert_eq!(after, before, "remove + re-insert did not round-trip");
    }

    #[test]
    fn bulk_insert_is_independent_of_batch_order() {
        // The canonical state depends only on the final universe, so
        // permuting the batch must produce byte-identical JSON.
        let names = ["a", "b", "c", "d", "e", "f"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let pairs = dense_pairs(&names);
        let cfg = SemanticIndexConfig {
            sample_size: 2,
            segments: false,
            max_candidates: 16,
        };
        let res = resolver(models.clone());

        let mut fwd = SemanticIndex::new(cfg, 9);
        fwd.bulk_insert(&models, &res, &TableAnalyzer::new(&pairs));
        let mut reversed: Vec<Model> = models.clone();
        reversed.reverse();
        let mut rev = SemanticIndex::new(cfg, 9);
        rev.bulk_insert(&reversed, &res, &TableAnalyzer::new(&pairs));

        assert_eq!(
            serde_json::to_string(&fwd).unwrap(),
            serde_json::to_string(&rev).unwrap(),
            "index depends on batch order"
        );
    }

    #[test]
    fn incremental_churn_matches_from_scratch_at_any_job_count() {
        // A mutation sequence (bulk build, removals, re-insertion) must
        // land byte-for-byte on the from-scratch build of the surviving
        // key set, at every job count.
        let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let pairs = dense_pairs(&names);
        let cfg = SemanticIndexConfig {
            sample_size: 3,
            segments: false,
            max_candidates: 16,
        };
        let res = resolver(models.clone());
        let an = TableAnalyzer::new(&pairs);
        let survivors: Vec<Model> = models
            .iter()
            .filter(|m| m.name != "f")
            .cloned()
            .collect();
        let mut baseline: Option<String> = None;
        for jobs in [1, 4, 8] {
            let pool = sommelier_parallel::ThreadPool::new(jobs);
            let mut idx = SemanticIndex::new(cfg, 9);
            idx.bulk_insert_with(&pool, &models, &res, &an);
            assert!(idx.remove_with(&pool, "c", &res, &an));
            assert!(idx.remove_with(&pool, "f", &res, &an));
            // Replace via a single batch: remove + add in one apply.
            idx.apply_batch_with(&pool, &["a".to_string()], &models[0..1], &res, &an);
            idx.apply_batch_with(&pool, &[], std::slice::from_ref(&models[2]), &res, &an);

            let mut scratch = SemanticIndex::new(cfg, 9);
            scratch.bulk_insert_with(&pool, &survivors, &res, &an);

            let got = serde_json::to_string(&idx).unwrap();
            assert_eq!(
                got,
                serde_json::to_string(&scratch).unwrap(),
                "churned index diverged from scratch build at jobs={jobs}"
            );
            if let Some(b) = &baseline {
                assert_eq!(&got, b, "jobs={jobs} diverged from jobs=1");
            } else {
                baseline = Some(got);
            }
        }
    }

    #[test]
    fn deserialized_index_resumes_incremental_maintenance() {
        // A JSON round-trip drops the in-memory sample memo; the first
        // mutation after deserialization rematerializes it and must
        // produce the same bytes as mutating the original.
        let names = ["a", "b", "c", "d", "e", "f"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let pairs = dense_pairs(&names);
        let cfg = SemanticIndexConfig {
            sample_size: 2,
            segments: false,
            max_candidates: 16,
        };
        let res = resolver(models.clone());
        let an = TableAnalyzer::new(&pairs);
        let mut original = SemanticIndex::new(cfg, 9);
        original.bulk_insert(&models, &res, &an);
        let mut revived: SemanticIndex =
            serde_json::from_str(&serde_json::to_string(&original).unwrap()).unwrap();

        original.remove("d", &res, &an);
        revived.remove("d", &res, &an);
        assert_eq!(
            serde_json::to_string(&original).unwrap(),
            serde_json::to_string(&revived).unwrap(),
            "revived index diverged after mutation"
        );
    }

    #[test]
    fn legacy_snapshot_without_edges_still_parses() {
        let json = r#"{
            "config": {"sample_size": 5, "segments": true, "max_candidates": 64},
            "entries": {"42": {"key": "m", "candidates": []}},
            "by_key": {"m": 42},
            "order": ["m"],
            "seed_state": 7
        }"#;
        let idx: SemanticIndex = serde_json::from_str(json).unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.seed(), 7);
        assert!(idx.contains("m"));
        assert!(idx.edge_rows().is_empty());
    }

    #[test]
    fn transitive_derivation_picks_the_tightest_via() {
        // Force the sample to cover everything so both intermediaries are
        // measured; the transitive record to an unsampled model must
        // carry the minimum composite bound, not whichever intermediary
        // was merged first.
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 2,
                segments: false,
                max_candidates: 64,
            },
            3,
        );
        // d: new model; b and c: sampled intermediaries; a: reached only
        // transitively (d's sample has room for exactly b and c).
        let models: Vec<Model> = ["a", "b", "c", "d"].iter().map(|n| model(n)).collect();
        let an = TableAnalyzer::new(&[
            ("a", "b", 0.30),
            ("a", "c", 0.02),
            ("b", "c", 0.10),
            ("a", "d", 9.0), // never measured directly (d samples only 2 of 3)
            ("b", "d", 0.05),
            ("c", "d", 0.05),
        ]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        // Whatever d sampled, any transitive d→a record must carry the
        // tightest derivable bound among its measured intermediaries.
        if let Some(rec) = idx
            .candidates_of("d")
            .iter()
            .find(|c| c.key == "a" && matches!(c.kind, CandidateKind::Transitive { .. }))
        {
            let mut best = f64::INFINITY;
            for via in ["b", "c"] {
                if let (Some(d_dv), Some(d_va)) =
                    (idx.recorded_diff("d", via), idx.recorded_diff(via, "a"))
                {
                    best = best.min(d_dv + d_va);
                }
            }
            assert!(
                (rec.diff_bound - best).abs() < 1e-12,
                "transitive bound {} is not the tightest {}",
                rec.diff_bound,
                best
            );
        }
    }

    #[test]
    fn sampling_caps_direct_analysis_and_fills_transitively() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 2,
                segments: false,
                max_candidates: 64,
            },
            42,
        );
        let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        // Uniform diffs so transitivity is well-defined.
        let mut pairs = Vec::new();
        for (i, x) in names.iter().enumerate() {
            for y in names.iter().skip(i + 1) {
                pairs.push((*x, *y, 0.05));
            }
        }
        let an = TableAnalyzer::new(&pairs);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        // With sampling 2, each model's attempted pairs stay far below
        // full pairwise; candidate lists still cover the 2-hop
        // neighborhood transitively.
        let cands = idx.candidates_of("h");
        assert!(!cands.is_empty(), "no candidates at all");
        let transitive = cands
            .iter()
            .filter(|c| matches!(c.kind, CandidateKind::Transitive { .. }))
            .count();
        assert!(transitive > 0, "expected transitive records");
        // Transitive bounds are conservative: diff 0.05+0.05.
        for c in cands {
            if matches!(c.kind, CandidateKind::Transitive { .. }) {
                assert!((c.diff_bound - 0.10).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut idx = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let a = model("a");
        idx.insert(&a, &resolver(vec![]), &TableAnalyzer::new(&[]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            idx.insert(&a, &resolver(vec![]), &TableAnalyzer::new(&[]));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn transitive_interval_matches_the_paper_formula() {
        assert_eq!(transitive_interval(0.3, 0.1), (0.19999999999999998, 0.4));
        let (lo, hi) = transitive_interval(0.1, 0.3);
        assert!((lo - 0.2).abs() < 1e-12 && (hi - 0.4).abs() < 1e-12);
        // Degenerate: equal diffs → the pair could be identical.
        assert_eq!(transitive_interval(0.2, 0.2).0, 0.0);
    }

    #[test]
    fn remove_purges_entry_and_references() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 10,
                segments: false,
                max_candidates: 64,
            },
            1,
        );
        let models: Vec<Model> = ["a", "b", "c"].iter().map(|n| model(n)).collect();
        let an = TableAnalyzer::new(&[("a", "b", 0.1), ("a", "c", 0.2), ("b", "c", 0.1)]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        assert!(idx.contains("b"));
        assert!(idx.remove("b", &res, &an));
        assert!(!idx.contains("b"));
        assert_eq!(idx.len(), 2);
        for key in ["a", "c"] {
            assert!(idx.candidates_of(key).iter().all(|c| c.key != "b"));
        }
        assert!(!idx.remove("b", &res, &an), "double removal is a no-op");
    }

    #[test]
    fn removal_costs_no_new_analyses_when_pairs_are_known() {
        // With the sample covering the whole universe, every surviving
        // pair is already measured: removal re-samples but must not call
        // the analyzer again (the O(bucket) claim).
        let names = ["a", "b", "c", "d", "e"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let pairs = dense_pairs(&names);
        let cfg = SemanticIndexConfig {
            sample_size: 10,
            segments: false,
            max_candidates: 64,
        };
        let res = resolver(models.clone());
        let an = TableAnalyzer::new(&pairs);
        let mut idx = SemanticIndex::new(cfg, 9);
        idx.bulk_insert(&models, &res, &an);
        let before = an.calls.load(std::sync::atomic::Ordering::Relaxed);
        assert!(idx.remove("c", &res, &an));
        let after = an.calls.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(after, before, "removal re-ran pairwise analyses");
    }

    #[test]
    fn better_measurement_replaces_transitive_record() {
        // A direct measurement later should not be shadowed by an earlier
        // transitive bound if it is tighter.
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 1,
                segments: false,
                max_candidates: 64,
            },
            7,
        );
        let models: Vec<Model> = ["a", "b", "c"].iter().map(|n| model(n)).collect();
        let an = TableAnalyzer::new(&[("a", "b", 0.05), ("a", "c", 0.05), ("b", "c", 0.01)]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        // Whatever the sampling chose, all records must carry the tightest
        // known bound ≤ transitive worst case 0.10.
        for key in ["a", "b", "c"] {
            for c in idx.candidates_of(key) {
                assert!(c.diff_bound <= 0.10 + 1e-9);
            }
        }
    }
}
