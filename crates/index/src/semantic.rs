//! The semantic index (paper Section 5.2).
//!
//! "The top-level structure of the index is a hashtable. For each entry …
//! the key is the hash fingerprint of a DNN, and the value is a list of
//! candidate records, each of which consists of a candidate DNN and its
//! functional equivalence score …, maintained in a descending order."
//!
//! Insertion analyzes the new model against only a small random sample of
//! stored models (default 5) and derives relations to everything else
//! transitively: if `X↔Y` differ by `A` and `Y↔Z` by `B`, then `X↔Z` lies
//! in `[|A−B|, A+B]`; the conservative upper end `A+B` is recorded. The
//! sample size is a knob ([`SemanticIndexConfig::sample_size`]); the
//! full-pairwise ablation sets it to `usize::MAX`.
//!
//! The analyzer itself is pluggable through [`PairAnalyzer`] so the index
//! structure stays independent of how equivalence is measured; the default
//! production analyzer (wired to `sommelier-equiv`) lives in
//! `sommelier-query::engine`.
//!
//! # Parallel construction
//!
//! Insertion is organized as *plan → analyze → apply*:
//!
//! 1. **Plan** (sequential): register the new entries, then draw each
//!    model's analysis partners by *rendezvous hashing* — every other
//!    registered key is ranked by `mix64(base_seed, fp_self, fp_other)`
//!    and the lowest `sample_size` ranks win. The partner set is a pure
//!    function of the fingerprint universe: independent of registration
//!    order, of job count, and of remove/re-insert cycles (so reindexing
//!    an unchanged repository re-selects identical pairs and the
//!    engine's pairwise cache absorbs the sweep).
//! 2. **Analyze** (parallel): every sampled pairwise analysis — the only
//!    expensive step — fans out across the pool with one task per model;
//!    results come back in plan order ([`ThreadPool::par_map`]).
//! 3. **Apply** (sequential in plan order): candidate records are pushed
//!    in deterministic order; the transitive derivation reduces
//!    per-intermediary contributions through a min-merged [`ShardedMap`]
//!    and applies winners in key order, so the final index is
//!    byte-identical whether built with one worker or eight.

use serde::{Deserialize, Serialize};
use sommelier_graph::{Fingerprint, Model};
use sommelier_parallel::{ShardedMap, ThreadPool};
use sommelier_runtime::metrics::counters;
use sommelier_tensor::mix64;
use std::collections::HashMap;

/// The transitive interval of paper Section 5.2: if models `X↔Y` differ
/// by `a` and `Y↔Z` by `b`, the `X↔Z` difference lies in
/// `[|a − b|, a + b]`. The index records the conservative upper end; the
/// lower end is useful for pruning (a candidate whose lower bound already
/// exceeds a threshold can be rejected without measurement).
pub fn transitive_interval(a: f64, b: f64) -> (f64, f64) {
    ((a - b).abs(), a + b)
}

/// How a candidate relates to the keyed model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CandidateKind {
    /// A stored model, holistically equivalent (paper Section 5.2 case i).
    Whole,
    /// A stored model whose relation was derived transitively through a
    /// sampled intermediary rather than measured directly.
    Transitive { via: String },
    /// A synthesized model: the keyed model with one of its segments
    /// replaced by `donor`'s counterpart (case ii).
    Synthesized { donor: String },
}

/// One entry of a candidate list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CandidateRecord {
    /// Candidate model key (repository name).
    pub key: String,
    /// Dataset-independent QoR difference bound to the keyed model.
    pub diff_bound: f64,
    /// Functional equivalence score: `max(0, 1 − diff_bound)`.
    pub score: f64,
    /// Provenance of the relation.
    pub kind: CandidateKind,
}

impl CandidateRecord {
    fn new(key: String, diff_bound: f64, kind: CandidateKind) -> Self {
        CandidateRecord {
            key,
            diff_bound,
            score: (1.0 - diff_bound).max(0.0),
            kind,
        }
    }
}

/// Pluggable pairwise analysis. Returns `None` when the pair is
/// incomparable (failed I/O check).
///
/// Analyses run concurrently during index construction, so implementors
/// take `&self` and must be [`Sync`]; any internal caching belongs behind
/// interior mutability. Determinism contract: the result for a pair must
/// be a pure function of the two models (plus the analyzer's fixed
/// configuration), never of call order — analyzers that need randomness
/// should derive per-pair seeds from the model fingerprints.
pub trait PairAnalyzer: Sync {
    /// Dataset-independent QoR difference bound of `candidate` w.r.t.
    /// `reference` (whole-model analysis, Section 4.1).
    fn whole_diff(&self, reference: &Model, candidate: &Model) -> Option<f64>;

    /// Segment-replacement analysis (Section 4.2): the QoR difference of
    /// `host` with its best replaceable segments taken from `donor`, if
    /// any segments match.
    fn segment_diff(&self, host: &Model, donor: &Model) -> Option<f64> {
        let _ = (host, donor);
        None
    }

    /// Optimistic memoized lookup of [`PairAnalyzer::whole_diff`], keyed
    /// by content fingerprints alone. `Some(result)` means the analyzer
    /// can answer without either model being materialized — the
    /// inner `Option<f64>` carries the same meaning as `whole_diff`'s
    /// return. `None` means "not memoized: resolve the models and run the
    /// full analysis". The default (no memoization) always falls through.
    ///
    /// Index construction consults this before resolving partner models,
    /// so a warm memo turns a reindex sweep over an unchanged repository
    /// into pure fingerprint lookups.
    fn cached_whole_diff(
        &self,
        reference: Fingerprint,
        candidate: Fingerprint,
    ) -> Option<Option<f64>> {
        let _ = (reference, candidate);
        None
    }

    /// Memoized counterpart of [`PairAnalyzer::segment_diff`]; same
    /// contract as [`PairAnalyzer::cached_whole_diff`].
    fn cached_segment_diff(&self, host: Fingerprint, donor: Fingerprint) -> Option<Option<f64>> {
        let _ = (host, donor);
        None
    }
}

/// A key-resolving closure handed to insertion. `Sync` because resolution
/// happens from analysis workers.
pub type Resolver<'a> = &'a (dyn Fn(&str) -> Option<Model> + Sync);

/// Configuration knobs of the semantic index.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SemanticIndexConfig {
    /// Number of stored models sampled for direct pairwise analysis on
    /// each insertion (paper default: 5).
    pub sample_size: usize,
    /// Whether to run the segment analysis and record synthesized
    /// candidates.
    pub segments: bool,
    /// Maximum candidate records kept per entry. Bounding the lists keeps
    /// the index memory at `O(models × max_candidates)` — the paper's
    /// Table 4 footprints (≈0.7 KB per model at 100K models) imply the
    /// same discipline — and caps per-insert transitive work.
    pub max_candidates: usize,
}

impl Default for SemanticIndexConfig {
    fn default() -> Self {
        SemanticIndexConfig {
            sample_size: 5,
            segments: true,
            max_candidates: 64,
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Entry {
    key: String,
    /// Candidate records in descending score order.
    candidates: Vec<CandidateRecord>,
}

/// The semantic index.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SemanticIndex {
    config: SemanticIndexConfig,
    /// Fingerprint → entry.
    entries: HashMap<Fingerprint, Entry>,
    /// Key → fingerprint (reverse lookup for by-name references).
    by_key: HashMap<String, Fingerprint>,
    /// Insertion order of keys (stable sampling).
    order: Vec<String>,
    /// Base seed for rendezvous partner selection. Despite the
    /// historical name (kept for snapshot compatibility) this never
    /// advances: partners are ranked by
    /// `mix64(seed_state, fp_self, fp_other)`, a pure function of the
    /// index seed and the two models' content, so the sample drawn for a
    /// model cannot depend on how many draws preceded it.
    seed_state: u64,
}

/// One model's insertion plan: entry registered, sample drawn, analysis
/// not yet run.
struct Planned<'a> {
    model: &'a Model,
    key: String,
    /// Content fingerprint of the model (memo key for the fast path).
    fp: Fingerprint,
    /// Sampled partners with their fingerprints, in rank order.
    sampled: Vec<(String, Fingerprint)>,
}

/// The outcome of the direct pairwise analysis between a new model and
/// one sampled intermediary (both directions, plus segment surgery).
struct DirectOutcome {
    /// Index of the intermediary within the model's sample (stable
    /// tiebreak for transitive-derivation merges).
    via_idx: usize,
    /// Intermediary key.
    via: String,
    /// diff(new → intermediary), if comparable.
    fwd: Option<f64>,
    /// diff(intermediary → new), if comparable.
    rev: Option<f64>,
    /// Segment-replacement diff with the intermediary as donor.
    seg_fwd: Option<f64>,
    /// Segment-replacement diff with the new model as donor.
    seg_rev: Option<f64>,
}

impl SemanticIndex {
    /// Create an empty index.
    pub fn new(config: SemanticIndexConfig, seed: u64) -> Self {
        SemanticIndex {
            config,
            entries: HashMap::new(),
            by_key: HashMap::new(),
            order: Vec::new(),
            seed_state: seed,
        }
    }

    /// Reassemble an index from decoded parts (the binary-snapshot
    /// loader and synthetic-index builders). `entries` carries one
    /// `(fingerprint, key, candidates)` triple per model; the reverse
    /// lookup table is re-derived from it, `order` is the insertion
    /// order of keys (not derivable from the entry set).
    pub fn from_parts(
        config: SemanticIndexConfig,
        seed: u64,
        entries: Vec<(Fingerprint, String, Vec<CandidateRecord>)>,
        order: Vec<String>,
    ) -> Self {
        let mut map = HashMap::with_capacity(entries.len());
        let mut by_key = HashMap::with_capacity(entries.len());
        for (fp, key, candidates) in entries {
            by_key.insert(key.clone(), fp);
            map.insert(fp, Entry { key, candidates });
        }
        SemanticIndex {
            config,
            entries: map,
            by_key,
            order,
            seed_state: seed,
        }
    }

    /// The configuration knobs this index was built with.
    pub fn config(&self) -> SemanticIndexConfig {
        self.config
    }

    /// The rendezvous base seed (see the `seed_state` field docs).
    pub fn seed(&self) -> u64 {
        self.seed_state
    }

    /// Number of indexed models.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Fingerprint registered for a key, if present.
    pub fn fingerprint_of(&self, key: &str) -> Option<Fingerprint> {
        self.by_key.get(key).copied()
    }

    /// Whether a key is indexed.
    pub fn contains(&self, key: &str) -> bool {
        self.by_key.contains_key(key)
    }

    /// All indexed keys in insertion order.
    pub fn keys(&self) -> &[String] {
        &self.order
    }

    /// The recorded diff bound between two keys, if a candidate record
    /// links them (in the `key → other` direction).
    pub fn recorded_diff(&self, key: &str, other: &str) -> Option<f64> {
        let fp = self.by_key.get(key)?;
        self.entries[fp]
            .candidates
            .iter()
            .find(|c| c.key == other)
            .map(|c| c.diff_bound)
    }

    /// Rendezvous (highest-random-weight) partner selection: every other
    /// registered key is ranked by `mix64(seed, fp_self, fp_other)` and
    /// the `sample_size` lowest ranks win, in rank order.
    ///
    /// The partner set is a pure function of the *fingerprint universe* —
    /// independent of registration order, of index-internal bookkeeping,
    /// and of remove/re-insert cycles. Re-analyzing an unchanged
    /// repository therefore resolves to exactly the same pairs, which is
    /// what lets the engine's pairwise-analysis cache absorb reindexing
    /// sweeps instead of recomputing every measurement.
    fn sample_partners(&self, key: &str, fp: Fingerprint) -> Vec<(String, Fingerprint)> {
        let mut ranked: Vec<(u64, &str)> = self
            .order
            .iter()
            .filter(|k| k.as_str() != key)
            .map(|k| {
                let other = self.by_key[k.as_str()];
                (mix64(&[self.seed_state, fp.0, other.0]), k.as_str())
            })
            .collect();
        // Tie-break on the key so equal hashes (or duplicate
        // fingerprints) still order deterministically.
        ranked.sort_unstable();
        ranked.truncate(self.config.sample_size);
        ranked
            .into_iter()
            .map(|(_, k)| (k.to_string(), self.by_key[k]))
            .collect()
    }

    fn push_record(&mut self, key: &str, record: CandidateRecord) {
        let fp = self.by_key[key];
        let entry = self.entries.get_mut(&fp).expect("entry exists");
        // Keep the best record per (candidate, kind-class) pair.
        if let Some(existing) = entry
            .candidates
            .iter_mut()
            .find(|c| c.key == record.key && synth_class(&c.kind) == synth_class(&record.kind))
        {
            if record.diff_bound < existing.diff_bound {
                *existing = record;
            }
        } else {
            entry.candidates.push(record);
        }
        // `total_cmp` keeps the sort panic-free even if a non-finite
        // score slips in (e.g. through a corrupted snapshot); the lint
        // layer reports such records instead of crashing on them.
        entry.candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
        entry.candidates.truncate(self.config.max_candidates);
    }

    /// Insert a model, running the sampled pairwise analysis through
    /// `resolve` (key → model resolver) and `analyzer` on the process
    /// [global pool](sommelier_parallel::global).
    ///
    /// `resolve` must be able to resolve every previously indexed key.
    pub fn insert(&mut self, model: &Model, resolve: Resolver<'_>, analyzer: &dyn PairAnalyzer) {
        self.bulk_insert(std::slice::from_ref(model), resolve, analyzer);
    }

    /// Insert a batch of models on the process
    /// [global pool](sommelier_parallel::global). See
    /// [`SemanticIndex::bulk_insert_with`].
    pub fn bulk_insert(
        &mut self,
        models: &[Model],
        resolve: Resolver<'_>,
        analyzer: &dyn PairAnalyzer,
    ) {
        self.bulk_insert_with(&sommelier_parallel::global(), models, resolve, analyzer);
    }

    /// Insert a batch of models, fanning the expensive pairwise analyses
    /// out across `pool` with one task per model.
    ///
    /// The whole batch registers before any partner is drawn, so every
    /// model of the batch samples over the full batch universe (a batch
    /// of one degenerates to sampling among previously stored models).
    /// All `sample_size × |models|` direct analyses run concurrently;
    /// the result is byte-identical at any job count (see the module
    /// docs).
    pub fn bulk_insert_with(
        &mut self,
        pool: &ThreadPool,
        models: &[Model],
        resolve: Resolver<'_>,
        analyzer: &dyn PairAnalyzer,
    ) {
        // Phase 1 — plan: register every model of the batch, *then* draw
        // each model's analysis partners. Registering first means a bulk
        // build samples over the whole batch (every model sees every
        // other), and rendezvous selection makes the partner set a pure
        // function of the fingerprint universe — see
        // [`SemanticIndex::sample_partners`].
        for model in models {
            let key = model.name.clone();
            assert!(
                !self.by_key.contains_key(&key),
                "key '{key}' is already indexed"
            );
            let fp = Fingerprint::of_model(model);
            self.entries.insert(
                fp,
                Entry {
                    key: key.clone(),
                    candidates: Vec::new(),
                },
            );
            self.by_key.insert(key.clone(), fp);
            self.order.push(key.clone());
        }
        let mut plan: Vec<Planned<'_>> = Vec::with_capacity(models.len());
        for model in models {
            let key = model.name.clone();
            let fp = self.by_key[&key];
            let sampled = self.sample_partners(&key, fp);
            plan.push(Planned {
                model,
                key,
                fp,
                sampled,
            });
        }

        // Phase 2 — analyze: the only expensive step. One task per
        // model; within a task, intermediaries are analyzed in sample
        // order. `par_map` returns results in plan order regardless of
        // which worker ran what.
        //
        // Each pair first consults the analyzer's fingerprint memo
        // ([`PairAnalyzer::cached_whole_diff`]): when *every* component
        // of the outcome is already known, the partner model is never
        // resolved — no repository load, no clone, no analysis. That is
        // what makes a reindex sweep over an unchanged repository almost
        // free. (The memo stores exactly the values the full path would
        // produce, so the resulting index is identical either way.)
        let segments = self.config.segments;
        let pair_tasks: usize = plan.iter().map(|p| p.sampled.len()).sum();
        let outcomes: Vec<Vec<DirectOutcome>> = pool.par_map(&plan, |p| {
            p.sampled
                .iter()
                .enumerate()
                .filter_map(|(via_idx, (s, s_fp))| {
                    let fwd = analyzer.cached_whole_diff(p.fp, *s_fp);
                    let rev = analyzer.cached_whole_diff(*s_fp, p.fp);
                    let seg_fwd = if segments {
                        analyzer.cached_segment_diff(p.fp, *s_fp)
                    } else {
                        Some(None)
                    };
                    let seg_rev = if segments {
                        analyzer.cached_segment_diff(*s_fp, p.fp)
                    } else {
                        Some(None)
                    };
                    if let (Some(fwd), Some(rev), Some(seg_fwd), Some(seg_rev)) =
                        (fwd, rev, seg_fwd, seg_rev)
                    {
                        return Some(DirectOutcome {
                            via_idx,
                            via: s.clone(),
                            fwd,
                            rev,
                            seg_fwd,
                            seg_rev,
                        });
                    }
                    // Slow path: materialize the partner and fill in
                    // whatever the memo could not answer.
                    let other = resolve(s)?;
                    Some(DirectOutcome {
                        via_idx,
                        via: s.clone(),
                        fwd: fwd.unwrap_or_else(|| analyzer.whole_diff(p.model, &other)),
                        rev: rev.unwrap_or_else(|| analyzer.whole_diff(&other, p.model)),
                        seg_fwd: seg_fwd
                            .unwrap_or_else(|| analyzer.segment_diff(p.model, &other)),
                        seg_rev: seg_rev
                            .unwrap_or_else(|| analyzer.segment_diff(&other, p.model)),
                    })
                })
                .collect()
        });
        counters::add("index.models_indexed", models.len() as u64);
        counters::add("index.pair_analyses", pair_tasks as u64);

        // Phase 3 — apply, sequentially in plan order so candidate lists
        // evolve exactly as under one-at-a-time insertion.
        for (p, outs) in plan.iter().zip(&outcomes) {
            self.apply_direct(pool, &p.key, &p.sampled, outs);
        }
    }

    /// Push one model's direct analysis results and derive transitive
    /// relations through its measured intermediaries.
    fn apply_direct(
        &mut self,
        pool: &ThreadPool,
        key: &str,
        sampled: &[(String, Fingerprint)],
        outs: &[DirectOutcome],
    ) {
        let mut direct: Vec<(usize, String, f64)> = Vec::new();
        for o in outs {
            if let Some(d) = o.fwd {
                self.push_record(
                    key,
                    CandidateRecord::new(o.via.clone(), d, CandidateKind::Whole),
                );
                direct.push((o.via_idx, o.via.clone(), d));
            }
            if let Some(d) = o.rev {
                self.push_record(
                    &o.via,
                    CandidateRecord::new(key.to_string(), d, CandidateKind::Whole),
                );
            }
            if let Some(seg) = o.seg_fwd {
                self.push_record(
                    key,
                    CandidateRecord::new(
                        format!("{key}+{}", o.via),
                        seg,
                        CandidateKind::Synthesized { donor: o.via.clone() },
                    ),
                );
            }
            if let Some(seg) = o.seg_rev {
                self.push_record(
                    &o.via,
                    CandidateRecord::new(
                        format!("{}+{key}", o.via),
                        seg,
                        CandidateKind::Synthesized {
                            donor: key.to_string(),
                        },
                    ),
                );
            }
        }

        // Transitive derivation through the measured intermediaries:
        // d(new, other) ≤ min over measured s of d(new, s) + d(s, other),
        // where `other` ranges over each intermediary's candidate list
        // (not the whole repository — candidate lists are bounded, so
        // this is O(sample × max_candidates) per insertion).
        //
        // Per-intermediary scans run in parallel and min-merge into a
        // sharded map keyed by candidate; the winning value is the
        // lexicographic minimum of `(bound, via_idx)`, which is
        // schedule-independent, and winners are applied in key order so
        // record application order is deterministic too. The
        // `would_insert` pre-check skips candidates whose bound is
        // already beaten *before* paying for the key clone — the common
        // case once a few intermediaries have been merged.
        if direct.is_empty() {
            return;
        }
        let better =
            |new: &(f64, usize), old: &(f64, usize)| new.0 < old.0 || (new.0 == old.0 && new.1 < old.1);
        let derived: ShardedMap<String, (f64, usize)> = ShardedMap::new(16);
        {
            let entries = &self.entries;
            let by_key = &self.by_key;
            let derived = &derived;
            pool.par_map(&direct, |(via_idx, s, d_ns)| {
                let fp = by_key[s];
                for cand in &entries[&fp].candidates {
                    if cand.key == key || sampled.iter().any(|(k, _)| *k == cand.key) {
                        continue;
                    }
                    // Compose only through *measured* relations: chaining
                    // a transitive bound onto another transitive bound
                    // compounds two conservative estimates (and makes the
                    // derived set depend on application order), while a
                    // synthesized record is not a distance at all.
                    if !matches!(cand.kind, CandidateKind::Whole) {
                        continue;
                    }
                    if !by_key.contains_key(&cand.key) {
                        continue;
                    }
                    let value = (d_ns + cand.diff_bound, *via_idx);
                    if !derived.would_insert(cand.key.as_str(), &value, better) {
                        continue;
                    }
                    derived.upsert(cand.key.clone(), value, better);
                }
            });
        }
        for (other, (bound, via_idx)) in derived.into_sorted() {
            let via = &direct
                .iter()
                .find(|(i, _, _)| *i == via_idx)
                .expect("winning via_idx came from direct")
                .1;
            self.push_record(
                key,
                CandidateRecord::new(
                    other.clone(),
                    bound,
                    CandidateKind::Transitive { via: via.clone() },
                ),
            );
            self.push_record(
                &other,
                CandidateRecord::new(
                    key.to_string(),
                    bound,
                    CandidateKind::Transitive { via: via.clone() },
                ),
            );
        }
    }

    /// Remove a model from the index: its entry is dropped and every
    /// candidate record referring to it (directly or as a synthesis donor)
    /// is purged from other entries.
    pub fn remove(&mut self, key: &str) -> bool {
        let Some(fp) = self.by_key.remove(key) else {
            return false;
        };
        self.entries.remove(&fp);
        self.order.retain(|k| k != key);
        for entry in self.entries.values_mut() {
            entry.candidates.retain(|c| {
                if c.key == key {
                    return false;
                }
                match &c.kind {
                    CandidateKind::Synthesized { donor } => donor != key,
                    CandidateKind::Transitive { via } => via != key,
                    CandidateKind::Whole => true,
                }
            });
        }
        true
    }

    /// Lookup: all candidates of the keyed model whose equivalence score
    /// meets `min_score`, best first (paper Section 5.2, "collect as the
    /// output all the models whose equivalence level exceeds the
    /// threshold").
    pub fn lookup(&self, reference: Fingerprint, min_score: f64) -> Vec<&CandidateRecord> {
        match self.entries.get(&reference) {
            Some(entry) => entry
                .candidates
                .iter()
                .take_while(|c| c.score >= min_score)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Lookup by key instead of fingerprint.
    pub fn lookup_key(&self, key: &str, min_score: f64) -> Vec<&CandidateRecord> {
        match self.by_key.get(key) {
            Some(fp) => self.lookup(*fp, min_score),
            None => Vec::new(),
        }
    }

    /// The full candidate list of a key (no threshold).
    pub fn candidates_of(&self, key: &str) -> &[CandidateRecord] {
        match self.by_key.get(key) {
            Some(fp) => &self.entries[fp].candidates,
            None => &[],
        }
    }

    /// Audit view of the reverse-lookup table: every `(key, fingerprint)`
    /// registration, sorted by key. Integrity tooling (`sommelier-lint`)
    /// walks this to find index keys that dangle from the repository —
    /// the accessor deliberately reads the raw table rather than the
    /// insertion order so corrupted snapshots with disagreeing views are
    /// still fully visible.
    pub fn by_key_audit(&self) -> Vec<(&str, Fingerprint)> {
        let mut out: Vec<(&str, Fingerprint)> = self
            .by_key
            .iter()
            .map(|(k, fp)| (k.as_str(), *fp))
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Audit view of the entry table: every entry as
    /// `(fingerprint, key, candidate list)`, sorted by key for
    /// deterministic reporting. Candidate lists are exposed verbatim so
    /// invariant checks (sortedness, score consistency, triangle bounds)
    /// see exactly what a snapshot deserialized.
    pub fn entries_audit(&self) -> Vec<(Fingerprint, &str, &[CandidateRecord])> {
        let mut out: Vec<(Fingerprint, &str, &[CandidateRecord])> = self
            .entries
            .iter()
            .map(|(fp, e)| (*fp, e.key.as_str(), e.candidates.as_slice()))
            .collect();
        out.sort_by(|a, b| a.1.cmp(b.1));
        out
    }
}

fn synth_class(kind: &CandidateKind) -> bool {
    matches!(kind, CandidateKind::Synthesized { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};
    use std::collections::HashMap as Map;

    /// A mock analyzer with a fixed distance table. Analyses run from
    /// pool workers, so the call counter is atomic.
    struct TableAnalyzer {
        diffs: Map<(String, String), f64>,
        calls: std::sync::atomic::AtomicUsize,
    }

    impl TableAnalyzer {
        fn new(pairs: &[(&str, &str, f64)]) -> Self {
            let mut diffs = Map::new();
            for (a, b, d) in pairs {
                diffs.insert((a.to_string(), b.to_string()), *d);
                diffs.insert((b.to_string(), a.to_string()), *d);
            }
            TableAnalyzer {
                diffs,
                calls: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl PairAnalyzer for TableAnalyzer {
        fn whole_diff(&self, reference: &Model, candidate: &Model) -> Option<f64> {
            self.calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.diffs
                .get(&(reference.name.clone(), candidate.name.clone()))
                .copied()
        }
    }

    fn model(name: &str) -> Model {
        let mut rng = Prng::seed_from_u64(crate::semantic::tests::name_hash(name));
        ModelBuilder::new(name, TaskKind::Other, Shape::vector(4))
            .dense(2, &mut rng)
            .build()
            .unwrap()
    }

    pub(crate) fn name_hash(s: &str) -> u64 {
        s.bytes().fold(7u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64))
    }

    fn resolver(models: Vec<Model>) -> impl Fn(&str) -> Option<Model> {
        move |k: &str| models.iter().find(|m| m.name == k).cloned()
    }

    #[test]
    fn first_insert_has_no_candidates() {
        let mut idx = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let a = model("a");
        idx.insert(&a, &resolver(vec![]), &TableAnalyzer::new(&[]));
        assert_eq!(idx.len(), 1);
        assert!(idx.candidates_of("a").is_empty());
    }

    #[test]
    fn pairwise_records_appear_in_both_entries() {
        let mut idx = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let a = model("a");
        let b = model("b");
        let an = TableAnalyzer::new(&[("a", "b", 0.1)]);
        let all = vec![a.clone(), b.clone()];
        idx.insert(&a, &resolver(all.clone()), &an);
        idx.insert(&b, &resolver(all), &an);
        assert_eq!(idx.candidates_of("a").len(), 1);
        assert_eq!(idx.candidates_of("b").len(), 1);
        assert!((idx.candidates_of("b")[0].score - 0.9).abs() < 1e-12);
    }

    #[test]
    fn candidates_sorted_descending_by_score() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 10,
                segments: false,
                max_candidates: 64,
            },
            1,
        );
        let names = ["a", "b", "c", "d"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let an = TableAnalyzer::new(&[
            ("a", "b", 0.30),
            ("a", "c", 0.10),
            ("a", "d", 0.20),
            ("b", "c", 0.25),
            ("b", "d", 0.25),
            ("c", "d", 0.05),
        ]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        let cands = idx.candidates_of("a");
        let scores: Vec<f64> = cands.iter().map(|c| c.score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]), "{scores:?}");
        assert_eq!(cands[0].key, "c"); // smallest diff 0.10
    }

    #[test]
    fn lookup_respects_threshold() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 10,
                segments: false,
                max_candidates: 64,
            },
            1,
        );
        let models: Vec<Model> = ["a", "b", "c"].iter().map(|n| model(n)).collect();
        let an = TableAnalyzer::new(&[("a", "b", 0.02), ("a", "c", 0.5), ("b", "c", 0.5)]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        let strict = idx.lookup_key("a", 0.95);
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].key, "b");
        let loose = idx.lookup_key("a", 0.0);
        assert_eq!(loose.len(), 2);
    }

    /// Dense random-ish distance table over `names` for determinism tests.
    fn dense_pairs(names: &[&'static str]) -> Vec<(&'static str, &'static str, f64)> {
        let mut pairs = Vec::new();
        for (i, x) in names.iter().enumerate() {
            for y in names.iter().skip(i + 1) {
                let d = ((name_hash(x) ^ name_hash(y)) % 40) as f64 / 100.0 + 0.01;
                pairs.push((*x, *y, d));
            }
        }
        pairs
    }

    #[test]
    fn bulk_insert_matches_sequential_at_any_job_count() {
        // The same batch built on a sequential pool and on multi-worker
        // pools must serialize to byte-identical JSON: the plan is fixed
        // before any analysis runs and results apply in plan order.
        let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let pairs = dense_pairs(&names);
        let cfg = SemanticIndexConfig {
            sample_size: 3,
            segments: false,
            max_candidates: 16,
        };
        let res = resolver(models.clone());

        let mut sequential = SemanticIndex::new(cfg, 9);
        sequential.bulk_insert_with(
            &sommelier_parallel::ThreadPool::new(1),
            &models,
            &res,
            &TableAnalyzer::new(&pairs),
        );
        let baseline = serde_json::to_string(&sequential).unwrap();

        for jobs in [2, 4, 8] {
            let pool = sommelier_parallel::ThreadPool::new(jobs);
            let mut idx = SemanticIndex::new(cfg, 9);
            idx.bulk_insert_with(&pool, &models, &res, &TableAnalyzer::new(&pairs));
            let got = serde_json::to_string(&idx).unwrap();
            assert_eq!(got, baseline, "jobs={jobs} diverged from sequential");
        }
    }

    #[test]
    fn partner_selection_is_stable_under_reinsertion() {
        // Rendezvous sampling depends only on the fingerprint universe:
        // removing a model and re-inserting it (the reindexing sweep)
        // must re-select the same partners and reproduce the same
        // candidate records — the property the pairwise cache relies on.
        let names = ["a", "b", "c", "d", "e", "f"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let pairs = dense_pairs(&names);
        let cfg = SemanticIndexConfig {
            sample_size: 2,
            segments: false,
            max_candidates: 16,
        };
        let res = resolver(models.clone());
        let an = TableAnalyzer::new(&pairs);
        let mut idx = SemanticIndex::new(cfg, 9);
        idx.bulk_insert(&models, &res, &an);

        let direct = |records: &[CandidateRecord]| -> Vec<String> {
            let mut keys: Vec<String> = records
                .iter()
                .filter(|r| matches!(r.kind, CandidateKind::Whole))
                .map(|r| r.key.clone())
                .collect();
            keys.sort();
            keys
        };
        let before = direct(idx.candidates_of("c"));
        assert!(idx.remove("c"));
        idx.insert(&models[2], &res, &an);
        let after = direct(idx.candidates_of("c"));

        // Re-insertion re-runs only c's own outgoing analyses (reverse
        // records contributed by other models' earlier samples are not
        // replayed), so the re-selected partner set must be exactly
        // sample_size keys and every one must have been measured before.
        assert_eq!(after.len(), 2, "partner count changed: {after:?}");
        for k in &after {
            assert!(before.contains(k), "'{k}' was not a partner before");
        }
    }

    #[test]
    fn bulk_insert_is_independent_of_batch_order() {
        // Partners are a function of fingerprints, not registration
        // order, so permuting the batch must leave every candidate list
        // unchanged (only the bookkeeping `order` differs).
        let names = ["a", "b", "c", "d", "e", "f"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        let pairs = dense_pairs(&names);
        let cfg = SemanticIndexConfig {
            sample_size: 2,
            segments: false,
            max_candidates: 16,
        };
        let res = resolver(models.clone());

        let mut fwd = SemanticIndex::new(cfg, 9);
        fwd.bulk_insert(&models, &res, &TableAnalyzer::new(&pairs));
        let mut reversed: Vec<Model> = models.clone();
        reversed.reverse();
        let mut rev = SemanticIndex::new(cfg, 9);
        rev.bulk_insert(&reversed, &res, &TableAnalyzer::new(&pairs));

        // The *measured* relation set is a pure function of the
        // fingerprint universe; transitive records may differ because
        // derivation sees the records accumulated so far in plan order.
        let whole = |idx: &SemanticIndex, n: &str| -> Vec<(String, u64)> {
            let mut v: Vec<(String, u64)> = idx
                .candidates_of(n)
                .iter()
                .filter(|r| matches!(r.kind, CandidateKind::Whole))
                .map(|r| (r.key.clone(), r.diff_bound.to_bits()))
                .collect();
            v.sort();
            v
        };
        for n in names {
            assert_eq!(
                whole(&fwd, n),
                whole(&rev, n),
                "measured records for '{n}' depend on batch order"
            );
        }
    }

    #[test]
    fn transitive_derivation_picks_the_tightest_via() {
        // Force the sample to cover everything so both intermediaries are
        // measured; the transitive record to an unsampled model must
        // carry the minimum composite bound, not whichever intermediary
        // was merged first.
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 2,
                segments: false,
                max_candidates: 64,
            },
            3,
        );
        // d: new model; b and c: sampled intermediaries; a: reached only
        // transitively (d's sample has room for exactly b and c).
        let models: Vec<Model> = ["a", "b", "c", "d"].iter().map(|n| model(n)).collect();
        let an = TableAnalyzer::new(&[
            ("a", "b", 0.30),
            ("a", "c", 0.02),
            ("b", "c", 0.10),
            ("a", "d", 9.0), // never measured directly (d samples only 2 of 3)
            ("b", "d", 0.05),
            ("c", "d", 0.05),
        ]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        // Whatever d sampled, any transitive d→a record must carry the
        // tightest derivable bound among its measured intermediaries.
        if let Some(rec) = idx
            .candidates_of("d")
            .iter()
            .find(|c| c.key == "a" && matches!(c.kind, CandidateKind::Transitive { .. }))
        {
            let mut best = f64::INFINITY;
            for via in ["b", "c"] {
                if let (Some(d_dv), Some(d_va)) =
                    (idx.recorded_diff("d", via), idx.recorded_diff(via, "a"))
                {
                    best = best.min(d_dv + d_va);
                }
            }
            assert!(
                (rec.diff_bound - best).abs() < 1e-12,
                "transitive bound {} is not the tightest {}",
                rec.diff_bound,
                best
            );
        }
    }

    #[test]
    fn sampling_caps_direct_analysis_and_fills_transitively() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 2,
                segments: false,
                max_candidates: 64,
            },
            42,
        );
        let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let models: Vec<Model> = names.iter().map(|n| model(n)).collect();
        // Uniform diffs so transitivity is well-defined.
        let mut pairs = Vec::new();
        for (i, x) in names.iter().enumerate() {
            for y in names.iter().skip(i + 1) {
                pairs.push((*x, *y, 0.05));
            }
        }
        let an = TableAnalyzer::new(&pairs);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        // With sampling 2, the last insert does ≤ 2×2 whole_diff calls,
        // far fewer than full pairwise (7×2); candidate lists still cover
        // the rest transitively.
        let cands = idx.candidates_of("h");
        assert!(cands.len() >= 5, "transitive fill produced {}", cands.len());
        let transitive = cands
            .iter()
            .filter(|c| matches!(c.kind, CandidateKind::Transitive { .. }))
            .count();
        assert!(transitive > 0, "expected transitive records");
        // Transitive bounds are conservative: diff 0.05+0.05.
        for c in cands {
            if matches!(c.kind, CandidateKind::Transitive { .. }) {
                assert!((c.diff_bound - 0.10).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut idx = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        let a = model("a");
        idx.insert(&a, &resolver(vec![]), &TableAnalyzer::new(&[]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            idx.insert(&a, &resolver(vec![]), &TableAnalyzer::new(&[]));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn transitive_interval_matches_the_paper_formula() {
        assert_eq!(transitive_interval(0.3, 0.1), (0.19999999999999998, 0.4));
        let (lo, hi) = transitive_interval(0.1, 0.3);
        assert!((lo - 0.2).abs() < 1e-12 && (hi - 0.4).abs() < 1e-12);
        // Degenerate: equal diffs → the pair could be identical.
        assert_eq!(transitive_interval(0.2, 0.2).0, 0.0);
    }

    #[test]
    fn remove_purges_entry_and_references() {
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 10,
                segments: false,
                max_candidates: 64,
            },
            1,
        );
        let models: Vec<Model> = ["a", "b", "c"].iter().map(|n| model(n)).collect();
        let an = TableAnalyzer::new(&[("a", "b", 0.1), ("a", "c", 0.2), ("b", "c", 0.1)]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        assert!(idx.contains("b"));
        assert!(idx.remove("b"));
        assert!(!idx.contains("b"));
        assert_eq!(idx.len(), 2);
        for key in ["a", "c"] {
            assert!(idx.candidates_of(key).iter().all(|c| c.key != "b"));
        }
        assert!(!idx.remove("b"), "double removal is a no-op");
    }

    #[test]
    fn better_measurement_replaces_transitive_record() {
        // A direct measurement later should not be shadowed by an earlier
        // transitive bound if it is tighter.
        let mut idx = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 1,
                segments: false,
                max_candidates: 64,
            },
            7,
        );
        let models: Vec<Model> = ["a", "b", "c"].iter().map(|n| model(n)).collect();
        let an = TableAnalyzer::new(&[("a", "b", 0.05), ("a", "c", 0.05), ("b", "c", 0.01)]);
        let res = resolver(models.clone());
        for m in &models {
            idx.insert(m, &res, &an);
        }
        // Whatever the sampling chose, all records must carry the tightest
        // known bound ≤ transitive worst case 0.10.
        for key in ["a", "b", "c"] {
            for c in idx.candidates_of(key) {
                assert!(c.diff_bound <= 0.10 + 1e-9);
            }
        }
    }
}
