//! Locality-sensitive hashing with a cosine (random-hyperplane) family.
//!
//! The resource index organizes profile vectors with "LSH with a cosine
//! hash family \[19\] … for fast distance-based range search" (paper
//! Section 5.3). Each of `L` tables hashes a vector to `k` sign bits
//! against random hyperplanes; vectors colliding in any table are
//! candidates. Parameters trade recall for probe cost and are exposed as
//! configuration knobs (Section 5.5).

use serde::{Deserialize, Serialize};
use sommelier_parallel::ThreadPool;
use sommelier_tensor::Prng;
use std::collections::HashMap;

/// LSH parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LshConfig {
    /// Hash bits (hyperplanes) per table.
    pub bits: usize,
    /// Number of independent tables.
    pub tables: usize,
}

impl Default for LshConfig {
    fn default() -> Self {
        LshConfig { bits: 8, tables: 4 }
    }
}

/// A cosine-family LSH over fixed-dimension vectors, storing `usize` ids.
///
/// ```
/// use sommelier_index::CosineLsh;
/// let mut lsh = CosineLsh::new(3, Default::default(), 42);
/// lsh.insert(&[1.0, 2.0, 3.0], 7);
/// // The cosine family is scale-free: a parallel probe collides.
/// assert_eq!(lsh.candidates(&[2.0, 4.0, 6.0]), vec![7]);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CosineLsh {
    dim: usize,
    config: LshConfig,
    /// `tables × bits` hyperplane normals, row-major.
    planes: Vec<Vec<f64>>,
    buckets: Vec<HashMap<u64, Vec<usize>>>,
    len: usize,
}

impl CosineLsh {
    /// Create an index for `dim`-dimensional vectors.
    pub fn new(dim: usize, config: LshConfig, seed: u64) -> Self {
        assert!(dim > 0 && config.bits > 0 && config.bits <= 64 && config.tables > 0);
        let mut rng = Prng::seed_from_u64(seed ^ 0x15a9);
        let planes = (0..config.tables * config.bits)
            .map(|_| (0..dim).map(|_| rng.gaussian()).collect())
            .collect();
        CosineLsh {
            dim,
            config,
            planes,
            buckets: vec![HashMap::new(); config.tables],
            len: 0,
        }
    }

    /// Number of inserted vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn signature(&self, table: usize, v: &[f64]) -> u64 {
        let mut sig = 0u64;
        for bit in 0..self.config.bits {
            let plane = &self.planes[table * self.config.bits + bit];
            if sommelier_tensor::linalg::dot_chunked_f64(plane, v) >= 0.0 {
                sig |= 1 << bit;
            }
        }
        sig
    }

    /// Insert a vector under an id.
    pub fn insert(&mut self, v: &[f64], id: usize) {
        assert_eq!(v.len(), self.dim, "vector dimensionality mismatch");
        for t in 0..self.config.tables {
            let sig = self.signature(t, v);
            self.buckets[t].entry(sig).or_default().push(id);
        }
        self.len += 1;
    }

    /// Remove an id stored under a vector. The signature is recomputed
    /// from the vector (buckets are not back-indexed by id), so the
    /// caller must pass the same vector it inserted. Returns whether the
    /// id was found in any table; emptied buckets are dropped so the
    /// table never accumulates dead signatures.
    pub fn remove(&mut self, v: &[f64], id: usize) -> bool {
        assert_eq!(v.len(), self.dim, "vector dimensionality mismatch");
        let mut found = false;
        for t in 0..self.config.tables {
            let sig = self.signature(t, v);
            if let Some(ids) = self.buckets[t].get_mut(&sig) {
                let before = ids.len();
                ids.retain(|x| *x != id);
                if ids.len() < before {
                    found = true;
                }
                if ids.is_empty() {
                    self.buckets[t].remove(&sig);
                }
            }
        }
        if found {
            self.len -= 1;
        }
        found
    }

    /// Candidate ids colliding with the probe in at least one table
    /// (deduplicated, ascending).
    pub fn candidates(&self, v: &[f64]) -> Vec<usize> {
        assert_eq!(v.len(), self.dim, "vector dimensionality mismatch");
        let mut out: Vec<usize> = Vec::new();
        for t in 0..self.config.tables {
            let sig = self.signature(t, v);
            if let Some(ids) = self.buckets[t].get(&sig) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// [`CosineLsh::candidates`] with the per-table probes fanned out
    /// across `pool` — each table's signature computation and bucket
    /// read is an independent task. The merged result is identical to
    /// the sequential path (per-table hits are concatenated in table
    /// order, then sorted and deduplicated).
    pub fn candidates_with(&self, pool: &ThreadPool, v: &[f64]) -> Vec<usize> {
        assert_eq!(v.len(), self.dim, "vector dimensionality mismatch");
        let tables: Vec<usize> = (0..self.config.tables).collect();
        let per_table: Vec<&[usize]> = pool
            .par_map(&tables, |&t| {
                let sig = self.signature(t, v);
                self.buckets[t].get(&sig).map(|ids| ids.as_slice())
            })
            .into_iter()
            .flatten()
            .collect();
        let mut out: Vec<usize> = per_table.into_iter().flatten().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Bounded multi-probe variant of [`CosineLsh::candidates_with`]:
    /// each table probes its exact bucket plus up to `extra_bits`
    /// Hamming-1 neighbor buckets (single sign-bit flips, in fixed bit
    /// order), recovering near-miss collisions where the probe vector
    /// sits close to a hyperplane. The probe count is bounded by
    /// `tables × (1 + extra_bits)` — recall improves without the cost
    /// of more tables — and the walk order is deterministic, so results
    /// are identical at any job count. `extra_bits == 0` degenerates to
    /// the exact-bucket probe.
    pub fn candidates_multiprobe(
        &self,
        pool: &ThreadPool,
        v: &[f64],
        extra_bits: usize,
    ) -> Vec<usize> {
        assert_eq!(v.len(), self.dim, "vector dimensionality mismatch");
        let tables: Vec<usize> = (0..self.config.tables).collect();
        let per_table: Vec<Vec<usize>> = pool.par_map(&tables, |&t| {
            let sig = self.signature(t, v);
            let mut hits = Vec::new();
            if let Some(ids) = self.buckets[t].get(&sig) {
                hits.extend_from_slice(ids);
            }
            for bit in 0..self.config.bits.min(extra_bits) {
                if let Some(ids) = self.buckets[t].get(&(sig ^ (1 << bit))) {
                    hits.extend_from_slice(ids);
                }
            }
            hits
        });
        let mut out: Vec<usize> = per_table.into_iter().flatten().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The configured parameters.
    pub fn config(&self) -> LshConfig {
        self.config
    }

    /// The `tables × bits` hyperplane normals, row-major — read access
    /// for snapshot encoders (planes are seeded randomness and must
    /// round-trip exactly, not be re-derived).
    pub fn planes(&self) -> &[Vec<f64>] {
        &self.planes
    }

    /// Audit/encoding view of the bucket tables: per table, every
    /// `(signature, ids)` bucket sorted by signature — a deterministic
    /// ordering independent of `HashMap` iteration order.
    pub fn buckets_audit(&self) -> Vec<Vec<(u64, &[usize])>> {
        self.buckets
            .iter()
            .map(|table| {
                let mut rows: Vec<(u64, &[usize])> = table
                    .iter()
                    .map(|(sig, ids)| (*sig, ids.as_slice()))
                    .collect();
                rows.sort_unstable_by_key(|(sig, _)| *sig);
                rows
            })
            .collect()
    }

    /// Reassemble an index from decoded parts (the binary-snapshot
    /// loader). `buckets` is one `(signature, ids)` list per table; the
    /// caller guarantees the parts came from a consistent encode — only
    /// structural shape is re-checked.
    pub fn from_parts(
        dim: usize,
        config: LshConfig,
        planes: Vec<Vec<f64>>,
        buckets: Vec<Vec<(u64, Vec<usize>)>>,
        len: usize,
    ) -> Self {
        assert!(dim > 0 && config.bits > 0 && config.bits <= 64 && config.tables > 0);
        assert_eq!(planes.len(), config.tables * config.bits, "plane count mismatch");
        assert!(planes.iter().all(|p| p.len() == dim), "plane dimensionality mismatch");
        assert_eq!(buckets.len(), config.tables, "bucket table count mismatch");
        CosineLsh {
            dim,
            config,
            planes,
            buckets: buckets
                .into_iter()
                .map(|table| table.into_iter().collect())
                .collect(),
            len,
        }
    }

    /// Every id stored in any bucket of any table (deduplicated,
    /// ascending) — the audit view integrity tooling uses to detect
    /// buckets referencing resource-vector slots that do not exist.
    pub fn stored_ids(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .buckets
            .iter()
            .flat_map(|table| table.values().flatten().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Approximate in-memory footprint in bytes (planes + bucket tables).
    pub fn footprint_bytes(&self) -> usize {
        let planes = self.planes.len() * self.dim * std::mem::size_of::<f64>();
        let bucket_entries: usize = self
            .buckets
            .iter()
            .map(|b| {
                b.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<usize>>())
                    + b.values().map(|v| v.len() * std::mem::size_of::<usize>()).sum::<usize>()
            })
            .sum();
        planes + bucket_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f64> {
        let mut v = vec![0.0; dim];
        v[hot] = 1.0;
        v
    }

    #[test]
    fn identical_vectors_always_collide() {
        let mut lsh = CosineLsh::new(3, LshConfig::default(), 1);
        lsh.insert(&[1.0, 2.0, 3.0], 7);
        assert_eq!(lsh.candidates(&[1.0, 2.0, 3.0]), vec![7]);
    }

    #[test]
    fn parallel_vectors_collide_scale_free() {
        let mut lsh = CosineLsh::new(3, LshConfig::default(), 1);
        lsh.insert(&[1.0, 2.0, 3.0], 1);
        // Cosine family only sees direction.
        assert_eq!(lsh.candidates(&[10.0, 20.0, 30.0]), vec![1]);
    }

    #[test]
    fn nearby_vectors_collide_more_than_orthogonal() {
        let dim = 16;
        let mut lsh = CosineLsh::new(dim, LshConfig { bits: 10, tables: 6 }, 3);
        let mut rng = Prng::seed_from_u64(5);
        let base: Vec<f64> = (0..dim).map(|_| rng.gaussian()).collect();
        let near: Vec<f64> = base.iter().map(|x| x + 0.05 * rng.gaussian()).collect();
        lsh.insert(&base, 0);
        let near_hits = (0..50)
            .filter(|_| !lsh.candidates(&near).is_empty())
            .count();
        // Insert orthogonal-ish probes and count how often a random far
        // vector collides.
        let far_hits = (0..50)
            .filter(|_| {
                let far: Vec<f64> = (0..dim).map(|_| rng.gaussian()).collect();
                !lsh.candidates(&far).is_empty()
            })
            .count();
        assert!(near_hits > far_hits, "near={near_hits} far={far_hits}");
    }

    #[test]
    fn multiple_ids_deduplicated_and_sorted() {
        let mut lsh = CosineLsh::new(4, LshConfig::default(), 1);
        lsh.insert(&unit(4, 0), 3);
        lsh.insert(&unit(4, 0), 1);
        let c = lsh.candidates(&unit(4, 0));
        assert_eq!(c, vec![1, 3]);
        assert_eq!(lsh.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dimension_rejected() {
        let mut lsh = CosineLsh::new(4, LshConfig::default(), 1);
        lsh.insert(&[1.0, 2.0], 0);
    }

    #[test]
    fn parallel_table_probe_matches_sequential() {
        let mut lsh = CosineLsh::new(8, LshConfig { bits: 6, tables: 8 }, 9);
        let mut rng = Prng::seed_from_u64(4);
        let vs: Vec<Vec<f64>> = (0..64)
            .map(|_| (0..8).map(|_| rng.gaussian()).collect())
            .collect();
        for (i, v) in vs.iter().enumerate() {
            lsh.insert(v, i);
        }
        let pool = ThreadPool::new(4);
        for v in vs.iter().take(10) {
            assert_eq!(lsh.candidates(v), lsh.candidates_with(&pool, v));
        }
    }

    #[test]
    fn multiprobe_is_a_superset_of_exact_probes() {
        let mut lsh = CosineLsh::new(8, LshConfig { bits: 6, tables: 4 }, 11);
        let mut rng = Prng::seed_from_u64(8);
        let vs: Vec<Vec<f64>> = (0..64)
            .map(|_| (0..8).map(|_| rng.gaussian()).collect())
            .collect();
        for (i, v) in vs.iter().enumerate() {
            lsh.insert(v, i);
        }
        let pool = ThreadPool::new(1);
        let mut widened = 0;
        for v in vs.iter().take(16) {
            let exact = lsh.candidates(v);
            let multi = lsh.candidates_multiprobe(&pool, v, 2);
            assert!(
                exact.iter().all(|id| multi.contains(id)),
                "multi-probe must never drop an exact collision"
            );
            widened += multi.len() - exact.len();
            // Zero extra bits degenerates to the exact probe.
            assert_eq!(lsh.candidates_multiprobe(&pool, v, 0), exact);
            // Deterministic across job counts.
            let pool4 = ThreadPool::new(4);
            assert_eq!(lsh.candidates_multiprobe(&pool4, v, 2), multi);
        }
        assert!(widened > 0, "neighbor buckets recovered extra candidates");
    }

    #[test]
    fn remove_purges_id_from_every_table() {
        let mut lsh = CosineLsh::new(4, LshConfig::default(), 1);
        lsh.insert(&unit(4, 0), 3);
        lsh.insert(&unit(4, 0), 1);
        assert!(lsh.remove(&unit(4, 0), 3));
        assert_eq!(lsh.candidates(&unit(4, 0)), vec![1]);
        assert_eq!(lsh.stored_ids(), vec![1]);
        assert_eq!(lsh.len(), 1);
        assert!(!lsh.remove(&unit(4, 0), 3), "double removal is a no-op");
        // Removing the last id of a bucket drops the bucket itself.
        assert!(lsh.remove(&unit(4, 0), 1));
        assert!(lsh.is_empty());
        assert!(lsh.buckets_audit().iter().all(|t| t.is_empty()));
    }

    #[test]
    fn footprint_grows_with_content() {
        let mut lsh = CosineLsh::new(8, LshConfig::default(), 1);
        let empty = lsh.footprint_bytes();
        let mut rng = Prng::seed_from_u64(2);
        for i in 0..100 {
            let v: Vec<f64> = (0..8).map(|_| rng.gaussian()).collect();
            lsh.insert(&v, i);
        }
        assert!(lsh.footprint_bytes() > empty);
    }
}
