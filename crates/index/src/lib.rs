//! Index structures of the Sommelier query engine (paper Section 5).
//!
//! Two complementary indices let queries run without per-query model
//! analysis:
//!
//! * the **semantic index** ([`semantic`]) — a hashtable keyed by model
//!   fingerprint whose values are candidate lists sorted by functional-
//!   equivalence score. Insertion analyzes the new model against a small
//!   random sample of stored models and derives the remaining relations
//!   *transitively* (`|A−B| ≤ d ≤ A+B`), which is what makes indexing
//!   scale (Section 5.2);
//! * the **resource index** ([`resource`]) — resource-profile vectors
//!   organized with cosine-family locality-sensitive hashing ([`lsh`]) for
//!   fast distance-based range search (Section 5.3).
//!
//! [`footprint`] accounts for the memory both structures occupy (Table 4),
//! and [`persist`] serializes them (Section 5.5 "Persistence": indices are
//! lightweight and can be populated to disk) — as readable JSON or as the
//! [`somb`] binary snapshot format built for O(1) open validation and
//! linear-scan scoring.

pub mod footprint;
pub mod lsh;
pub mod persist;
pub mod resource;
pub mod semantic;
pub mod somb;

pub use lsh::CosineLsh;
pub use persist::{IndexSnapshot, PersistError, SnapshotFormat};
pub use resource::{ResourceConstraint, ResourceIndex};
pub use semantic::{CandidateKind, CandidateRecord, PairAnalyzer, SemanticIndex};
