//! The resource profile index (paper Section 5.3).
//!
//! Each entry maps a resource-profile vector `(memory, GFLOPs, latency)`
//! to a model key. Vectors are organized with cosine-family LSH for fast
//! distance-based range search; a query converts its constraints into a
//! probe vector, collects LSH candidates, and exact-filters them against
//! the per-dimension bounds ("among the returned models with closest
//! resource profile, those that satisfy the constraints in all dimensions
//! will be the outputs"). An exhaustive mode (linear scan) is provided for
//! the LSH ablation and as a correctness oracle.
//!
//! # Incremental maintenance
//!
//! Removal tombstones the slot, purges its id from the LSH buckets
//! ([`CosineLsh::remove`]) and parks the slot on a free list that the
//! next insertion reuses, so a churn loop neither leaks bucket ids nor
//! grows the `f32` slab forever. Once tombstones outnumber live entries
//! the index compacts (dense renumbering, slab shrink, LSH rebuild over
//! the same hyperplanes). Members sit behind `Arc`s so cloning the index
//! for snapshot publication is a handful of reference bumps; a mutation
//! copies only the members it touches (the slab stays one contiguous
//! allocation — the scan kernels and the zero-copy snapshot section
//! depend on that — so its copy-on-write granularity is the whole slab,
//! an accepted trade against the pairwise-analysis costs that dominate
//! mutations).

use crate::lsh::{CosineLsh, LshConfig};
use serde::{Deserialize, Serialize};
use sommelier_parallel::ThreadPool;
use sommelier_runtime::ResourceProfile;
use sommelier_tensor::linalg;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Per-dimension upper bounds; `None` means unconstrained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceConstraint {
    /// Maximum memory in MB.
    pub max_memory_mb: Option<f64>,
    /// Maximum computational complexity in GFLOPs.
    pub max_gflops: Option<f64>,
    /// Maximum estimated latency in ms.
    pub max_latency_ms: Option<f64>,
}

impl ResourceConstraint {
    /// Whether a profile satisfies every bound.
    pub fn admits(&self, p: &ResourceProfile) -> bool {
        p.within(self.max_memory_mb, self.max_gflops, self.max_latency_ms)
    }

    /// The probe vector used for LSH candidate collection: unconstrained
    /// dimensions probe at the constrained dimensions' scale midpoint.
    fn probe_vector(&self) -> Vec<f64> {
        let fallback = [
            self.max_memory_mb,
            self.max_gflops,
            self.max_latency_ms,
        ]
        .iter()
        .flatten()
        .copied()
        .fold(0.0, f64::max)
        .max(1.0);
        vec![
            self.max_memory_mb.unwrap_or(fallback),
            self.max_gflops.unwrap_or(fallback),
            self.max_latency_ms.unwrap_or(fallback),
        ]
    }

    /// True when no dimension is constrained.
    pub fn is_unconstrained(&self) -> bool {
        self.max_memory_mb.is_none() && self.max_gflops.is_none() && self.max_latency_ms.is_none()
    }
}

/// Hamming-1 neighbor buckets probed per LSH table during range queries
/// (bounded multi-probe: recall of near-hyperplane probes improves at a
/// fixed `tables × (1 + MULTIPROBE_BITS)` probe budget, with no extra
/// tables and no stored state).
const MULTIPROBE_BITS: usize = 2;

/// Lanes per profile row in the scoring slab: the 3-dimensional profile
/// vector zero-padded to 4 so rows stay power-of-two strided (and the
/// on-disk slab stays 16-byte row-aligned inside its 64-byte-aligned
/// section).
pub const SLAB_STRIDE: usize = 4;

/// The resource index.
///
/// `slots`, `slab` and `free` are *derived* acceleration structures —
/// rebuilt from `entries` on deserialization and maintained incrementally
/// on mutation, never serialized. The slab holds every profile vector as
/// a dense `f32` row ([`SLAB_STRIDE`] lanes), the linear-scan surface for
/// the chunked scoring kernels; the slot map makes `profile_of` O(1); the
/// free list tracks tombstoned slots for reuse.
#[derive(Clone, Debug)]
pub struct ResourceIndex {
    entries: Arc<Vec<(String, ResourceProfile)>>,
    /// Tombstones for removed entries (aligned with `entries`).
    removed: Arc<Vec<bool>>,
    lsh: Arc<CosineLsh>,
    /// When true, queries linear-scan instead of probing the LSH — the
    /// correctness oracle and the ablation baseline.
    pub exhaustive: bool,
    /// Derived: key → first live slot (the entry `profile_of` serves).
    slots: Arc<HashMap<String, u32>>,
    /// Derived: dense `f32` profile rows, [`SLAB_STRIDE`] lanes per slot
    /// (tombstoned slots keep their row; liveness is positional).
    slab: Arc<Vec<f32>>,
    /// Derived: tombstoned slot ids, lowest first, reused by insertion.
    free: Arc<BTreeSet<u32>>,
}

// Serialization canonicalizes through `canonical_view`: live entries in
// sorted-key order, no tombstones, LSH ids renumbered to match — the
// exact state a from-scratch build of the same live set produces, which
// is what makes incremental and bulk-built snapshots byte-identical.
// The wire shape is unchanged from the original `#[derive]` (snapshot
// compatibility both ways) and deserialization still accepts tombstoned
// images, rebuilding the derived structures.
impl Serialize for ResourceIndex {
    fn to_value(&self) -> serde::Value {
        let (entries, removed, lsh) = self.canonical_view();
        serde::Value::Map(vec![
            ("entries".to_string(), Serialize::to_value(&entries)),
            ("removed".to_string(), Serialize::to_value(&removed)),
            ("lsh".to_string(), Serialize::to_value(&lsh)),
            ("exhaustive".to_string(), Serialize::to_value(&self.exhaustive)),
        ])
    }
}

impl Deserialize for ResourceIndex {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let _ = serde::expect_map(v)?;
        let mut idx = ResourceIndex {
            entries: Arc::new(serde::field(v, "entries")?),
            removed: Arc::new(serde::field(v, "removed")?),
            lsh: Arc::new(serde::field(v, "lsh")?),
            exhaustive: serde::field(v, "exhaustive")?,
            slots: Arc::new(HashMap::new()),
            slab: Arc::new(Vec::new()),
            free: Arc::new(BTreeSet::new()),
        };
        idx.rebuild_derived();
        Ok(idx)
    }
}

/// One profile row as slab lanes.
fn slab_row(p: &ResourceProfile) -> [f32; SLAB_STRIDE] {
    [p.memory_mb as f32, p.gflops as f32, p.latency_ms as f32, 0.0]
}

impl ResourceIndex {
    /// Create an empty index.
    pub fn new(config: LshConfig, seed: u64) -> Self {
        ResourceIndex {
            entries: Arc::new(Vec::new()),
            removed: Arc::new(Vec::new()),
            lsh: Arc::new(CosineLsh::new(3, config, seed)),
            exhaustive: false,
            slots: Arc::new(HashMap::new()),
            slab: Arc::new(Vec::new()),
            free: Arc::new(BTreeSet::new()),
        }
    }

    /// Reassemble an index from decoded parts (the binary-snapshot
    /// loader and synthetic-index builders); derived structures are
    /// rebuilt, the LSH is taken as decoded (bucket contents round-trip,
    /// they are not re-hashed).
    pub fn from_parts(
        entries: Vec<(String, ResourceProfile)>,
        removed: Vec<bool>,
        lsh: CosineLsh,
        exhaustive: bool,
    ) -> Self {
        assert_eq!(entries.len(), removed.len(), "tombstone vector misaligned");
        let mut idx = ResourceIndex {
            entries: Arc::new(entries),
            removed: Arc::new(removed),
            lsh: Arc::new(lsh),
            exhaustive,
            slots: Arc::new(HashMap::new()),
            slab: Arc::new(Vec::new()),
            free: Arc::new(BTreeSet::new()),
        };
        idx.rebuild_derived();
        idx
    }

    /// Rebuild the derived slot map, scoring slab and free list from the
    /// entry table (deserialization and bulk reconstruction).
    fn rebuild_derived(&mut self) {
        let mut slab = Vec::with_capacity(self.entries.len() * SLAB_STRIDE);
        let mut slots: HashMap<String, u32> = HashMap::with_capacity(self.entries.len());
        let mut free = BTreeSet::new();
        for (i, (k, p)) in self.entries.iter().enumerate() {
            slab.extend_from_slice(&slab_row(p));
            if self.removed.get(i).copied().unwrap_or(false) {
                free.insert(i as u32);
            } else {
                slots.entry(k.clone()).or_insert(i as u32);
            }
        }
        self.slab = Arc::new(slab);
        self.slots = Arc::new(slots);
        self.free = Arc::new(free);
    }

    /// The canonical (serialization) state: live entries in sorted-key
    /// order, an all-false tombstone vector, and the LSH with ids
    /// renumbered to the sorted order (dead ids dropped, id lists
    /// ascending, emptied buckets omitted) — exactly what inserting the
    /// live set into a fresh index in key order produces.
    pub(crate) fn canonical_view(
        &self,
    ) -> (Vec<(String, ResourceProfile)>, Vec<bool>, CosineLsh) {
        let mut live: Vec<usize> = (0..self.entries.len())
            .filter(|i| !self.removed[*i])
            .collect();
        live.sort_by(|a, b| self.entries[*a].0.cmp(&self.entries[*b].0));
        let remap: HashMap<usize, usize> = live
            .iter()
            .enumerate()
            .map(|(new, old)| (*old, new))
            .collect();
        let entries: Vec<(String, ResourceProfile)> =
            live.iter().map(|&i| self.entries[i].clone()).collect();
        let buckets: Vec<Vec<(u64, Vec<usize>)>> = self
            .lsh
            .buckets_audit()
            .iter()
            .map(|table| {
                table
                    .iter()
                    .filter_map(|(sig, ids)| {
                        let mut mapped: Vec<usize> = ids
                            .iter()
                            .filter_map(|id| remap.get(id).copied())
                            .collect();
                        mapped.sort_unstable();
                        if mapped.is_empty() {
                            None
                        } else {
                            Some((*sig, mapped))
                        }
                    })
                    .collect()
            })
            .collect();
        let lsh = CosineLsh::from_parts(
            self.lsh.dim(),
            self.lsh.config(),
            self.lsh.planes().to_vec(),
            buckets,
            entries.len(),
        );
        let removed = vec![false; entries.len()];
        (entries, removed, lsh)
    }

    /// The dense `f32` scoring slab: [`SLAB_STRIDE`] lanes per slot, in
    /// slot order, tombstones included.
    pub fn slab(&self) -> &[f32] {
        &self.slab
    }

    /// Number of live (non-removed) profiles.
    pub fn len(&self) -> usize {
        self.removed.iter().filter(|r| !**r).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a model's resource profile, reusing the lowest tombstoned
    /// slot when one is free.
    pub fn insert(&mut self, key: impl Into<String>, profile: ResourceProfile) {
        let key = key.into();
        let vector = profile.as_vector();
        let row = slab_row(&profile);
        let entries = Arc::make_mut(&mut self.entries);
        let removed = Arc::make_mut(&mut self.removed);
        let slab = Arc::make_mut(&mut self.slab);
        let id = match Arc::make_mut(&mut self.free).pop_first() {
            Some(slot) => {
                let i = slot as usize;
                entries[i] = (key.clone(), profile);
                removed[i] = false;
                slab[i * SLAB_STRIDE..(i + 1) * SLAB_STRIDE].copy_from_slice(&row);
                i
            }
            None => {
                let i = entries.len();
                entries.push((key.clone(), profile));
                removed.push(false);
                slab.extend_from_slice(&row);
                i
            }
        };
        Arc::make_mut(&mut self.lsh).insert(&vector, id);
        // First live slot wins, matching the old first-match scan.
        Arc::make_mut(&mut self.slots).entry(key).or_insert(id as u32);
    }

    /// Remove a key's profile: the slot is tombstoned and freed for
    /// reuse, and its id is purged from the LSH buckets. Compacts when
    /// tombstones outnumber live entries.
    pub fn remove(&mut self, key: &str) -> bool {
        let hits: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, (k, _))| k == key && !self.removed[*i])
            .map(|(i, _)| i)
            .collect();
        if hits.is_empty() {
            return false;
        }
        {
            let removed = Arc::make_mut(&mut self.removed);
            let lsh = Arc::make_mut(&mut self.lsh);
            let free = Arc::make_mut(&mut self.free);
            for &i in &hits {
                removed[i] = true;
                lsh.remove(&self.entries[i].1.as_vector(), i);
                free.insert(i as u32);
            }
        }
        Arc::make_mut(&mut self.slots).remove(key);
        let live = self.len();
        if self.entries.len() - live > live {
            self.compact();
        }
        true
    }

    /// Drop every tombstoned slot: live entries are renumbered densely
    /// (slot order preserved), the slab shrinks, and the LSH is rebuilt
    /// over the same hyperplanes with the remapped ids. Runs
    /// automatically once tombstones outnumber live entries; callable
    /// explicitly for eager shrinking.
    pub fn compact(&mut self) {
        let entries: Vec<(String, ResourceProfile)> = self
            .entries
            .iter()
            .zip(self.removed.iter())
            .filter(|(_, r)| !**r)
            .map(|(e, _)| e.clone())
            .collect();
        let mut lsh = CosineLsh::from_parts(
            self.lsh.dim(),
            self.lsh.config(),
            self.lsh.planes().to_vec(),
            vec![Vec::new(); self.lsh.config().tables],
            0,
        );
        for (id, (_, p)) in entries.iter().enumerate() {
            lsh.insert(&p.as_vector(), id);
        }
        self.removed = Arc::new(vec![false; entries.len()]);
        self.entries = Arc::new(entries);
        self.lsh = Arc::new(lsh);
        self.rebuild_derived();
    }

    /// The stored profile for a key, if present (and not removed) —
    /// O(1) through the derived slot map (this sits on the query
    /// executor's per-candidate hot path).
    pub fn profile_of(&self, key: &str) -> Option<&ResourceProfile> {
        self.slots
            .get(key)
            .map(|&i| &self.entries[i as usize].1)
    }

    /// Keys of all models admitted by the constraint.
    ///
    /// LSH mode collects hash-collision candidates around the constraint's
    /// probe vector and widens with a scan of small profiles (every model
    /// cheaper than the probe in all dimensions trivially satisfies upper
    /// bounds; LSH alone would miss distant-but-admissible vectors).
    pub fn query(&self, constraint: &ResourceConstraint) -> Vec<String> {
        self.query_with(&sommelier_parallel::global(), constraint)
    }

    /// [`ResourceIndex::query`] on an explicit pool: the admit sweep runs
    /// in parallel chunks and the LSH tables are probed concurrently
    /// ([`CosineLsh::candidates_with`]). Results are identical to the
    /// sequential path at any job count — admit flags are positional and
    /// the final filter walks slots in id order.
    pub fn query_with(&self, pool: &ThreadPool, constraint: &ResourceConstraint) -> Vec<String> {
        // Exact per-slot admit flags, computed once, in parallel chunks.
        let chunk = self.entries.len().div_ceil(pool.jobs().max(1) * 4).max(1);
        let admits: Vec<bool> = pool
            .par_chunks(&self.entries, chunk, |_idx, entries| {
                entries
                    .iter()
                    .map(|(_, p)| constraint.admits(p))
                    .collect::<Vec<bool>>()
            })
            .into_iter()
            .flatten()
            .collect();
        if self.exhaustive || constraint.is_unconstrained() {
            return self
                .entries
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.removed[*i] && admits[*i])
                .map(|(_, (k, _))| k.clone())
                .collect();
        }
        let probe = constraint.probe_vector();
        let mut included = vec![false; self.entries.len()];
        // Bounded multi-probe: widening the candidate set can only add
        // ids that still pass the exact admit filter below, so recall
        // improves and precision is untouched.
        for id in self
            .lsh
            .candidates_multiprobe(pool, &probe, MULTIPROBE_BITS)
        {
            included[id] = true;
        }
        // Upper-bound constraints admit everything dominated by the probe;
        // sweep those in as well.
        for (id, admitted) in admits.iter().enumerate() {
            if *admitted {
                included[id] = true;
            }
        }
        included
            .into_iter()
            .enumerate()
            .filter(|(id, inc)| *inc && !self.removed[*id] && admits[*id])
            .map(|(id, _)| self.entries[id].0.clone())
            .collect()
    }

    /// The `k` entries with profiles closest (l2 on the raw vectors) to a
    /// target profile — used by Figure 12(b)-style "similar resource
    /// profile" probes.
    pub fn nearest(&self, target: &ResourceProfile, k: usize) -> Vec<(String, ResourceProfile)> {
        // Linear scan over the dense slab with the chunked distance
        // kernel — no per-candidate `Vec` materialization.
        let tv = slab_row(target);
        let mut scored: Vec<(f64, usize)> = self
            .slab
            .chunks_exact(SLAB_STRIDE)
            .enumerate()
            .filter(|(i, _)| !self.removed[*i])
            .map(|(i, row)| (linalg::dist2_chunked(&tv, row), i))
            .collect();
        // `total_cmp` keeps the sort panic-free on non-finite distances
        // (corrupted snapshots can carry arbitrary profile vectors).
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        scored
            .into_iter()
            .take(k)
            .map(|(_, i)| self.entries[i].clone())
            .collect()
    }

    /// Audit view of the entry table: `(key, profile, removed)` for every
    /// slot, tombstones included. Integrity tooling needs the raw
    /// *runtime* table (not the canonical serialization view) to
    /// cross-check LSH bucket ids against slot liveness and to find
    /// profiles that dangle from the repository.
    pub fn entries_audit(&self) -> Vec<(&str, &ResourceProfile, bool)> {
        self.entries
            .iter()
            .zip(self.removed.iter())
            .map(|((k, p), r)| (k.as_str(), p, *r))
            .collect()
    }

    /// Number of slots allocated (live + tombstoned). LSH bucket ids
    /// must all be smaller than this.
    pub fn slot_count(&self) -> usize {
        self.entries.len()
    }

    /// Read access to the underlying LSH structure for audits.
    pub fn lsh(&self) -> &CosineLsh {
        &self.lsh
    }

    /// Approximate in-memory footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        let entries: usize = self
            .entries
            .iter()
            .map(|(k, _)| k.len() + std::mem::size_of::<ResourceProfile>())
            .sum();
        entries + self.slab.len() * std::mem::size_of::<f32>() + self.lsh.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(mem: f64, gf: f64, lat: f64) -> ResourceProfile {
        ResourceProfile {
            memory_mb: mem,
            gflops: gf,
            latency_ms: lat,
        }
    }

    fn populated(exhaustive: bool) -> ResourceIndex {
        let mut idx = ResourceIndex::new(LshConfig::default(), 3);
        idx.exhaustive = exhaustive;
        idx.insert("tiny", profile(1.0, 0.1, 0.5));
        idx.insert("small", profile(10.0, 1.0, 2.0));
        idx.insert("medium", profile(100.0, 10.0, 10.0));
        idx.insert("large", profile(1000.0, 100.0, 50.0));
        idx
    }

    #[test]
    fn query_filters_by_all_dimensions() {
        for exhaustive in [true, false] {
            let idx = populated(exhaustive);
            let mut got = idx.query(&ResourceConstraint {
                max_memory_mb: Some(50.0),
                max_gflops: Some(5.0),
                max_latency_ms: None,
            });
            got.sort();
            assert_eq!(got, vec!["small", "tiny"], "exhaustive={exhaustive}");
        }
    }

    #[test]
    fn unconstrained_query_returns_everything() {
        let idx = populated(false);
        assert_eq!(idx.query(&ResourceConstraint::default()).len(), 4);
    }

    #[test]
    fn lsh_and_exhaustive_agree_on_upper_bounds() {
        let lsh = populated(false);
        let ex = populated(true);
        for mem in [0.5, 5.0, 50.0, 5000.0] {
            let c = ResourceConstraint {
                max_memory_mb: Some(mem),
                ..Default::default()
            };
            let mut a = lsh.query(&c);
            let mut b = ex.query(&c);
            a.sort();
            b.sort();
            assert_eq!(a, b, "divergence at mem={mem}");
        }
    }

    #[test]
    fn nearest_orders_by_profile_distance() {
        let idx = populated(true);
        let near = idx.nearest(&profile(9.0, 1.1, 2.1), 2);
        assert_eq!(near[0].0, "small");
        assert_eq!(near.len(), 2);
    }

    #[test]
    fn profile_of_finds_keys() {
        let idx = populated(true);
        assert!(idx.profile_of("medium").is_some());
        assert!(idx.profile_of("ghost").is_none());
    }

    #[test]
    fn removal_tombstones_hide_entries_everywhere() {
        let mut idx = populated(false);
        assert!(idx.remove("small"));
        assert_eq!(idx.len(), 3);
        assert!(idx.profile_of("small").is_none());
        let all = idx.query(&ResourceConstraint::default());
        assert!(!all.contains(&"small".to_string()));
        let near = idx.nearest(&profile(10.0, 1.0, 2.0), 4);
        assert!(near.iter().all(|(k, _)| k != "small"));
        assert!(!idx.remove("small"), "double removal is a no-op");
    }

    #[test]
    fn removal_purges_lsh_ids_immediately() {
        // The stale-id regression: before `CosineLsh::remove`, removal
        // left dead ids in the buckets that `candidates` happily
        // returned. Every stored id must point at a live slot.
        let mut idx = populated(false);
        assert!(idx.remove("small"));
        let audit = idx.entries_audit();
        for id in idx.lsh().stored_ids() {
            assert!(
                id < audit.len() && !audit[id].2,
                "LSH id {id} dangles from a tombstoned slot"
            );
        }
        assert_eq!(idx.lsh().len(), idx.len());
    }

    #[test]
    fn freed_slots_are_reused_before_growing() {
        let mut idx = populated(false);
        assert_eq!(idx.slot_count(), 4);
        assert!(idx.remove("small"));
        idx.insert("replacement", profile(20.0, 2.0, 3.0));
        assert_eq!(idx.slot_count(), 4, "insert grew the slab past a free slot");
        assert!(idx.profile_of("replacement").is_some());
        let mut got = idx.query(&ResourceConstraint::default());
        got.sort();
        assert_eq!(got, vec!["large", "medium", "replacement", "tiny"]);
    }

    #[test]
    fn compaction_shrinks_slots_and_footprint() {
        let mut idx = populated(false);
        let before_slots = idx.slot_count();
        let before_footprint = idx.footprint_bytes();
        // Removing 3 of 4 trips the tombstones > live threshold.
        for key in ["tiny", "small", "medium"] {
            assert!(idx.remove(key));
        }
        assert!(idx.slot_count() < before_slots, "compaction did not run");
        assert_eq!(idx.slot_count(), 1);
        assert!(idx.footprint_bytes() < before_footprint);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.slab().len(), SLAB_STRIDE);
        assert_eq!(idx.query(&ResourceConstraint::default()), vec!["large"]);
        for id in idx.lsh().stored_ids() {
            assert!(id < idx.slot_count());
        }
    }

    #[test]
    fn serialization_is_canonical_across_mutation_histories() {
        // A churned index must serialize byte-identically to a fresh
        // build of the same live set (sorted-key insertion order).
        let mut churned = ResourceIndex::new(LshConfig::default(), 3);
        churned.insert("a", profile(1.0, 0.1, 0.5));
        churned.insert("dropped", profile(7.0, 7.0, 7.0));
        churned.insert("b", profile(10.0, 1.0, 2.0));
        churned.remove("dropped");
        churned.insert("c", profile(100.0, 10.0, 10.0));

        let mut fresh = ResourceIndex::new(LshConfig::default(), 3);
        for (k, p) in [
            ("a", profile(1.0, 0.1, 0.5)),
            ("b", profile(10.0, 1.0, 2.0)),
            ("c", profile(100.0, 10.0, 10.0)),
        ] {
            fresh.insert(k, p);
        }
        assert_eq!(
            serde_json::to_string(&churned).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "serialized form depends on mutation history"
        );
    }

    #[test]
    fn parallel_query_matches_sequential_exactly() {
        let pool4 = ThreadPool::new(4);
        for exhaustive in [true, false] {
            let idx = populated(exhaustive);
            for constraint in [
                ResourceConstraint::default(),
                ResourceConstraint {
                    max_memory_mb: Some(50.0),
                    max_gflops: Some(5.0),
                    max_latency_ms: None,
                },
                ResourceConstraint {
                    max_latency_ms: Some(11.0),
                    ..Default::default()
                },
            ] {
                assert_eq!(
                    idx.query(&constraint),
                    idx.query_with(&pool4, &constraint),
                    "exhaustive={exhaustive}"
                );
            }
        }
    }

    #[test]
    fn footprint_grows_with_entries() {
        let empty = ResourceIndex::new(LshConfig::default(), 1);
        let idx = populated(false);
        assert!(idx.footprint_bytes() > empty.footprint_bytes());
    }
}
