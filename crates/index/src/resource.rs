//! The resource profile index (paper Section 5.3).
//!
//! Each entry maps a resource-profile vector `(memory, GFLOPs, latency)`
//! to a model key. Vectors are organized with cosine-family LSH for fast
//! distance-based range search; a query converts its constraints into a
//! probe vector, collects LSH candidates, and exact-filters them against
//! the per-dimension bounds ("among the returned models with closest
//! resource profile, those that satisfy the constraints in all dimensions
//! will be the outputs"). An exhaustive mode (linear scan) is provided for
//! the LSH ablation and as a correctness oracle.

use crate::lsh::{CosineLsh, LshConfig};
use serde::{Deserialize, Serialize};
use sommelier_parallel::ThreadPool;
use sommelier_runtime::ResourceProfile;
use sommelier_tensor::linalg;
use std::collections::HashMap;

/// Per-dimension upper bounds; `None` means unconstrained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceConstraint {
    /// Maximum memory in MB.
    pub max_memory_mb: Option<f64>,
    /// Maximum computational complexity in GFLOPs.
    pub max_gflops: Option<f64>,
    /// Maximum estimated latency in ms.
    pub max_latency_ms: Option<f64>,
}

impl ResourceConstraint {
    /// Whether a profile satisfies every bound.
    pub fn admits(&self, p: &ResourceProfile) -> bool {
        p.within(self.max_memory_mb, self.max_gflops, self.max_latency_ms)
    }

    /// The probe vector used for LSH candidate collection: unconstrained
    /// dimensions probe at the constrained dimensions' scale midpoint.
    fn probe_vector(&self) -> Vec<f64> {
        let fallback = [
            self.max_memory_mb,
            self.max_gflops,
            self.max_latency_ms,
        ]
        .iter()
        .flatten()
        .copied()
        .fold(0.0, f64::max)
        .max(1.0);
        vec![
            self.max_memory_mb.unwrap_or(fallback),
            self.max_gflops.unwrap_or(fallback),
            self.max_latency_ms.unwrap_or(fallback),
        ]
    }

    /// True when no dimension is constrained.
    pub fn is_unconstrained(&self) -> bool {
        self.max_memory_mb.is_none() && self.max_gflops.is_none() && self.max_latency_ms.is_none()
    }
}

/// Hamming-1 neighbor buckets probed per LSH table during range queries
/// (bounded multi-probe: recall of near-hyperplane probes improves at a
/// fixed `tables × (1 + MULTIPROBE_BITS)` probe budget, with no extra
/// tables and no stored state).
const MULTIPROBE_BITS: usize = 2;

/// Lanes per profile row in the scoring slab: the 3-dimensional profile
/// vector zero-padded to 4 so rows stay power-of-two strided (and the
/// on-disk slab stays 16-byte row-aligned inside its 64-byte-aligned
/// section).
pub const SLAB_STRIDE: usize = 4;

/// The resource index.
///
/// `slots` and `slab` are *derived* acceleration structures — rebuilt
/// from `entries` on deserialization and maintained incrementally on
/// mutation, never serialized. The slab holds every profile vector as a
/// dense `f32` row ([`SLAB_STRIDE`] lanes), the linear-scan surface for
/// the chunked scoring kernels; the slot map makes `profile_of` O(1)
/// where it used to walk the entry table per lookup.
#[derive(Clone, Debug)]
pub struct ResourceIndex {
    entries: Vec<(String, ResourceProfile)>,
    /// Tombstones for removed entries (aligned with `entries`); LSH
    /// buckets are append-only, so removal marks instead of rebuilding.
    removed: Vec<bool>,
    lsh: CosineLsh,
    /// When true, queries linear-scan instead of probing the LSH — the
    /// correctness oracle and the ablation baseline.
    pub exhaustive: bool,
    /// Derived: key → first live slot (the entry `profile_of` serves).
    slots: HashMap<String, u32>,
    /// Derived: dense `f32` profile rows, [`SLAB_STRIDE`] lanes per slot
    /// (tombstoned slots keep their row; liveness is positional).
    slab: Vec<f32>,
}

// The slot map and slab are derived state: serialization must keep the
// exact shape the `#[derive]` produced before they existed (snapshot
// compatibility both ways), so both impls are written out by hand and
// deserialization rebuilds the derived structures.
impl Serialize for ResourceIndex {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("entries".to_string(), Serialize::to_value(&self.entries)),
            ("removed".to_string(), Serialize::to_value(&self.removed)),
            ("lsh".to_string(), Serialize::to_value(&self.lsh)),
            ("exhaustive".to_string(), Serialize::to_value(&self.exhaustive)),
        ])
    }
}

impl Deserialize for ResourceIndex {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let _ = serde::expect_map(v)?;
        let mut idx = ResourceIndex {
            entries: serde::field(v, "entries")?,
            removed: serde::field(v, "removed")?,
            lsh: serde::field(v, "lsh")?,
            exhaustive: serde::field(v, "exhaustive")?,
            slots: HashMap::new(),
            slab: Vec::new(),
        };
        idx.rebuild_derived();
        Ok(idx)
    }
}

/// One profile row as slab lanes.
fn slab_row(p: &ResourceProfile) -> [f32; SLAB_STRIDE] {
    [p.memory_mb as f32, p.gflops as f32, p.latency_ms as f32, 0.0]
}

impl ResourceIndex {
    /// Create an empty index.
    pub fn new(config: LshConfig, seed: u64) -> Self {
        ResourceIndex {
            entries: Vec::new(),
            removed: Vec::new(),
            lsh: CosineLsh::new(3, config, seed),
            exhaustive: false,
            slots: HashMap::new(),
            slab: Vec::new(),
        }
    }

    /// Reassemble an index from decoded parts (the binary-snapshot
    /// loader and synthetic-index builders); derived structures are
    /// rebuilt, the LSH is taken as decoded (bucket contents round-trip,
    /// they are not re-hashed).
    pub fn from_parts(
        entries: Vec<(String, ResourceProfile)>,
        removed: Vec<bool>,
        lsh: CosineLsh,
        exhaustive: bool,
    ) -> Self {
        assert_eq!(entries.len(), removed.len(), "tombstone vector misaligned");
        let mut idx = ResourceIndex {
            entries,
            removed,
            lsh,
            exhaustive,
            slots: HashMap::new(),
            slab: Vec::new(),
        };
        idx.rebuild_derived();
        idx
    }

    /// Rebuild the derived slot map and scoring slab from the entry
    /// table (deserialization and bulk reconstruction).
    fn rebuild_derived(&mut self) {
        self.slab.clear();
        self.slab.reserve(self.entries.len() * SLAB_STRIDE);
        self.slots.clear();
        self.slots.reserve(self.entries.len());
        for (i, (k, p)) in self.entries.iter().enumerate() {
            self.slab.extend_from_slice(&slab_row(p));
            if !self.removed.get(i).copied().unwrap_or(false) {
                self.slots.entry(k.clone()).or_insert(i as u32);
            }
        }
    }

    /// The dense `f32` scoring slab: [`SLAB_STRIDE`] lanes per slot, in
    /// slot order, tombstones included. This is the byte-exact content
    /// of a binary snapshot's slab section.
    pub fn slab(&self) -> &[f32] {
        &self.slab
    }

    /// Number of live (non-removed) profiles.
    pub fn len(&self) -> usize {
        self.removed.iter().filter(|r| !**r).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a model's resource profile.
    pub fn insert(&mut self, key: impl Into<String>, profile: ResourceProfile) {
        let key = key.into();
        let id = self.entries.len();
        self.lsh.insert(&profile.as_vector(), id);
        self.slab.extend_from_slice(&slab_row(&profile));
        // First live slot wins, matching the old first-match scan.
        self.slots.entry(key.clone()).or_insert(id as u32);
        self.entries.push((key, profile));
        self.removed.push(false);
    }

    /// Remove a key's profile (tombstoned; LSH buckets are append-only).
    pub fn remove(&mut self, key: &str) -> bool {
        let mut hit = false;
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if k == key && !self.removed[i] {
                self.removed[i] = true;
                hit = true;
            }
        }
        if hit {
            // Every slot under this key is now tombstoned.
            self.slots.remove(key);
        }
        hit
    }

    /// The stored profile for a key, if present (and not removed) —
    /// O(1) through the derived slot map (this sits on the query
    /// executor's per-candidate hot path).
    pub fn profile_of(&self, key: &str) -> Option<&ResourceProfile> {
        self.slots
            .get(key)
            .map(|&i| &self.entries[i as usize].1)
    }

    /// Keys of all models admitted by the constraint.
    ///
    /// LSH mode collects hash-collision candidates around the constraint's
    /// probe vector and widens with a scan of small profiles (every model
    /// cheaper than the probe in all dimensions trivially satisfies upper
    /// bounds; LSH alone would miss distant-but-admissible vectors).
    pub fn query(&self, constraint: &ResourceConstraint) -> Vec<String> {
        self.query_with(&sommelier_parallel::global(), constraint)
    }

    /// [`ResourceIndex::query`] on an explicit pool: the admit sweep runs
    /// in parallel chunks and the LSH tables are probed concurrently
    /// ([`CosineLsh::candidates_with`]). Results are identical to the
    /// sequential path at any job count — admit flags are positional and
    /// the final filter walks slots in id order.
    pub fn query_with(&self, pool: &ThreadPool, constraint: &ResourceConstraint) -> Vec<String> {
        // Exact per-slot admit flags, computed once, in parallel chunks.
        let chunk = self.entries.len().div_ceil(pool.jobs().max(1) * 4).max(1);
        let admits: Vec<bool> = pool
            .par_chunks(&self.entries, chunk, |_idx, entries| {
                entries
                    .iter()
                    .map(|(_, p)| constraint.admits(p))
                    .collect::<Vec<bool>>()
            })
            .into_iter()
            .flatten()
            .collect();
        if self.exhaustive || constraint.is_unconstrained() {
            return self
                .entries
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.removed[*i] && admits[*i])
                .map(|(_, (k, _))| k.clone())
                .collect();
        }
        let probe = constraint.probe_vector();
        let mut included = vec![false; self.entries.len()];
        // Bounded multi-probe: widening the candidate set can only add
        // ids that still pass the exact admit filter below, so recall
        // improves and precision is untouched.
        for id in self
            .lsh
            .candidates_multiprobe(pool, &probe, MULTIPROBE_BITS)
        {
            included[id] = true;
        }
        // Upper-bound constraints admit everything dominated by the probe;
        // sweep those in as well.
        for (id, admitted) in admits.iter().enumerate() {
            if *admitted {
                included[id] = true;
            }
        }
        included
            .into_iter()
            .enumerate()
            .filter(|(id, inc)| *inc && !self.removed[*id] && admits[*id])
            .map(|(id, _)| self.entries[id].0.clone())
            .collect()
    }

    /// The `k` entries with profiles closest (l2 on the raw vectors) to a
    /// target profile — used by Figure 12(b)-style "similar resource
    /// profile" probes.
    pub fn nearest(&self, target: &ResourceProfile, k: usize) -> Vec<(String, ResourceProfile)> {
        // Linear scan over the dense slab with the chunked distance
        // kernel — no per-candidate `Vec` materialization.
        let tv = slab_row(target);
        let mut scored: Vec<(f64, usize)> = self
            .slab
            .chunks_exact(SLAB_STRIDE)
            .enumerate()
            .filter(|(i, _)| !self.removed[*i])
            .map(|(i, row)| (linalg::dist2_chunked(&tv, row), i))
            .collect();
        // `total_cmp` keeps the sort panic-free on non-finite distances
        // (corrupted snapshots can carry arbitrary profile vectors).
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        scored
            .into_iter()
            .take(k)
            .map(|(_, i)| self.entries[i].clone())
            .collect()
    }

    /// Audit view of the entry table: `(key, profile, removed)` for every
    /// slot, tombstones included. Integrity tooling needs the raw table
    /// (not the live view) to cross-check LSH bucket ids against slot
    /// count and to find profiles that dangle from the repository.
    pub fn entries_audit(&self) -> Vec<(&str, &ResourceProfile, bool)> {
        self.entries
            .iter()
            .zip(&self.removed)
            .map(|((k, p), r)| (k.as_str(), p, *r))
            .collect()
    }

    /// Number of slots ever allocated (live + tombstoned). LSH bucket ids
    /// must all be smaller than this.
    pub fn slot_count(&self) -> usize {
        self.entries.len()
    }

    /// Read access to the underlying LSH structure for audits.
    pub fn lsh(&self) -> &CosineLsh {
        &self.lsh
    }

    /// Approximate in-memory footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        let entries: usize = self
            .entries
            .iter()
            .map(|(k, _)| k.len() + std::mem::size_of::<ResourceProfile>())
            .sum();
        entries + self.lsh.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(mem: f64, gf: f64, lat: f64) -> ResourceProfile {
        ResourceProfile {
            memory_mb: mem,
            gflops: gf,
            latency_ms: lat,
        }
    }

    fn populated(exhaustive: bool) -> ResourceIndex {
        let mut idx = ResourceIndex::new(LshConfig::default(), 3);
        idx.exhaustive = exhaustive;
        idx.insert("tiny", profile(1.0, 0.1, 0.5));
        idx.insert("small", profile(10.0, 1.0, 2.0));
        idx.insert("medium", profile(100.0, 10.0, 10.0));
        idx.insert("large", profile(1000.0, 100.0, 50.0));
        idx
    }

    #[test]
    fn query_filters_by_all_dimensions() {
        for exhaustive in [true, false] {
            let idx = populated(exhaustive);
            let mut got = idx.query(&ResourceConstraint {
                max_memory_mb: Some(50.0),
                max_gflops: Some(5.0),
                max_latency_ms: None,
            });
            got.sort();
            assert_eq!(got, vec!["small", "tiny"], "exhaustive={exhaustive}");
        }
    }

    #[test]
    fn unconstrained_query_returns_everything() {
        let idx = populated(false);
        assert_eq!(idx.query(&ResourceConstraint::default()).len(), 4);
    }

    #[test]
    fn lsh_and_exhaustive_agree_on_upper_bounds() {
        let lsh = populated(false);
        let ex = populated(true);
        for mem in [0.5, 5.0, 50.0, 5000.0] {
            let c = ResourceConstraint {
                max_memory_mb: Some(mem),
                ..Default::default()
            };
            let mut a = lsh.query(&c);
            let mut b = ex.query(&c);
            a.sort();
            b.sort();
            assert_eq!(a, b, "divergence at mem={mem}");
        }
    }

    #[test]
    fn nearest_orders_by_profile_distance() {
        let idx = populated(true);
        let near = idx.nearest(&profile(9.0, 1.1, 2.1), 2);
        assert_eq!(near[0].0, "small");
        assert_eq!(near.len(), 2);
    }

    #[test]
    fn profile_of_finds_keys() {
        let idx = populated(true);
        assert!(idx.profile_of("medium").is_some());
        assert!(idx.profile_of("ghost").is_none());
    }

    #[test]
    fn removal_tombstones_hide_entries_everywhere() {
        let mut idx = populated(false);
        assert!(idx.remove("small"));
        assert_eq!(idx.len(), 3);
        assert!(idx.profile_of("small").is_none());
        let all = idx.query(&ResourceConstraint::default());
        assert!(!all.contains(&"small".to_string()));
        let near = idx.nearest(&profile(10.0, 1.0, 2.0), 4);
        assert!(near.iter().all(|(k, _)| k != "small"));
        assert!(!idx.remove("small"), "double removal is a no-op");
    }

    #[test]
    fn parallel_query_matches_sequential_exactly() {
        let pool4 = ThreadPool::new(4);
        for exhaustive in [true, false] {
            let idx = populated(exhaustive);
            for constraint in [
                ResourceConstraint::default(),
                ResourceConstraint {
                    max_memory_mb: Some(50.0),
                    max_gflops: Some(5.0),
                    max_latency_ms: None,
                },
                ResourceConstraint {
                    max_latency_ms: Some(11.0),
                    ..Default::default()
                },
            ] {
                assert_eq!(
                    idx.query(&constraint),
                    idx.query_with(&pool4, &constraint),
                    "exhaustive={exhaustive}"
                );
            }
        }
    }

    #[test]
    fn footprint_grows_with_entries() {
        let empty = ResourceIndex::new(LshConfig::default(), 1);
        let idx = populated(false);
        assert!(idx.footprint_bytes() > empty.footprint_bytes());
    }
}
