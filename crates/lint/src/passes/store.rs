//! `SOM07x` — store-hygiene lints over the raw repository directory.
//!
//! The durability layer (PR 5) leaves deliberate evidence on disk:
//! unreadable snapshots are renamed to `*.corrupt-<epoch>` instead of
//! deleted, and a crash mid-`write_atomic` can strand a fully private
//! `*.tmp-<pid>-<seq>` sibling. Neither is ever *read* by the engine
//! again, so without a reporting loop they accumulate silently. This
//! pass closes that loop:
//!
//! * **quarantined artifacts** (`SOM070`, warn) — a corrupt snapshot or
//!   model was found and set aside; an operator should inspect and then
//!   prune it (`sommelier fsck --prune`);
//! * **orphaned temps** (`SOM071`, warn) — an interrupted atomic write
//!   left its temp sibling behind; harmless but worth deleting
//!   (`sommelier fsck --repair`);
//! * **non-canonical model file names** (`SOM072`, warn) — a
//!   `*.model.json` file whose stem is not a canonical
//!   [`sommelier_repo::encode_key`] spelling. The repository will never
//!   surface it as a key, so it is effectively invisible data;
//! * **listing failures** (`SOM073`, error) — the directory itself
//!   could not be enumerated, so every other store check is blind;
//! * **dangling chunk references** (`SOM074`, error) — a manifest
//!   names a chunk the `chunks/` namespace does not hold, so the model
//!   it describes cannot be reconstructed;
//! * **orphaned chunks** (`SOM075`, warn) — a chunk (or a stray
//!   non-chunk file in the chunk namespace) that no manifest
//!   references: refcount zero, wasted bytes, prunable
//!   (`sommelier fsck --repair`);
//! * **broken delta bases** (`SOM076`, error) — a delta manifest whose
//!   base key is not stored, or whose base chain cycles.
//!
//! The pass works off [`crate::LintContext::store_files`],
//! [`crate::LintContext::chunk_files`], and
//! [`crate::LintContext::manifests`] — raw names and parsed manifests
//! captured at context-load time — so it stays execution-free like
//! every other pass.

use crate::diagnostics::{codes, Diagnostic};
use crate::{LintContext, Pass};
use sommelier_fault::storage::{is_quarantine_name, is_temp_name};
use sommelier_repo::{decode_key, is_chunk_name};
use std::collections::{BTreeMap, BTreeSet};

/// File-name suffix of stored models (mirrors the repository layout).
const MODEL_SUFFIX: &str = ".model.json";

/// File-name suffix of chunk manifests.
const MANIFEST_SUFFIX: &str = ".manifest.json";

/// Reports quarantined, orphaned, and mis-named files in the store.
pub struct StoreHygienePass;

impl Pass for StoreHygienePass {
    fn name(&self) -> &'static str {
        "store-hygiene"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for name in &ctx.store_files {
            if is_quarantine_name(name) {
                out.push(
                    Diagnostic::warn(
                        codes::QUARANTINED_FILE,
                        format!("file '{name}'"),
                        "quarantined artifact from a failed load is still on disk",
                    )
                    .with_help("inspect it, then remove it with `sommelier fsck --prune`"),
                );
            } else if is_temp_name(name) {
                out.push(
                    Diagnostic::warn(
                        codes::ORPHANED_TEMP,
                        format!("file '{name}'"),
                        "orphaned temp file from an interrupted atomic write",
                    )
                    .with_help("safe to delete: `sommelier fsck --repair`"),
                );
            } else if let Some(stem) = name
                .strip_suffix(MODEL_SUFFIX)
                .or_else(|| name.strip_suffix(MANIFEST_SUFFIX))
            {
                if decode_key(stem).is_none() {
                    out.push(
                        Diagnostic::warn(
                            codes::NON_CANONICAL_MODEL_FILE,
                            format!("file '{name}'"),
                            "model file name is not a canonical key encoding; \
                             the repository will never list it",
                        )
                        .with_help(
                            "republish the model through the repository API and delete the file",
                        ),
                    );
                }
            }
        }
        Self::check_chunks(ctx, out);
        Self::check_delta_bases(ctx, out);
    }
}

impl StoreHygienePass {
    /// `SOM074`/`SOM075`: cross-check manifest chunk references against
    /// the chunk namespace in both directions.
    fn check_chunks(ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        let present: BTreeSet<&str> = ctx
            .chunk_files
            .iter()
            .filter(|n| is_chunk_name(n))
            .filter_map(|n| n.strip_suffix(".chunk"))
            .collect();
        let mut referenced: BTreeSet<&str> = BTreeSet::new();
        for (file, manifest) in &ctx.manifests {
            let mut missing: Vec<&str> = Vec::new();
            for hash in manifest.chunk_refs() {
                referenced.insert(hash);
                if !present.contains(hash) {
                    missing.push(hash);
                }
            }
            missing.sort();
            missing.dedup();
            if !missing.is_empty() {
                out.push(
                    Diagnostic::error(
                        codes::DANGLING_CHUNK,
                        format!("file '{file}'"),
                        format!(
                            "manifest references {} chunk(s) absent from chunks/ \
                             (first: {}); the model cannot be reconstructed",
                            missing.len(),
                            missing[0]
                        ),
                    )
                    .with_help("restore the chunks or quarantine the manifest: `sommelier fsck --repair`"),
                );
            }
        }
        for name in &ctx.chunk_files {
            if is_temp_name(name) {
                out.push(
                    Diagnostic::warn(
                        codes::ORPHANED_TEMP,
                        format!("file 'chunks/{name}'"),
                        "orphaned temp file from an interrupted chunk write",
                    )
                    .with_help("safe to delete: `sommelier fsck --repair`"),
                );
            } else if is_quarantine_name(name) {
                out.push(
                    Diagnostic::warn(
                        codes::QUARANTINED_FILE,
                        format!("file 'chunks/{name}'"),
                        "quarantined chunk is still on disk",
                    )
                    .with_help("inspect it, then remove it with `sommelier fsck --prune`"),
                );
            } else if !is_chunk_name(name) {
                out.push(
                    Diagnostic::warn(
                        codes::ORPHANED_CHUNK,
                        format!("file 'chunks/{name}'"),
                        "stray file in the chunk namespace is not a content-addressed chunk",
                    )
                    .with_help("no manifest can reference it; delete it"),
                );
            } else if !referenced.contains(name.trim_end_matches(".chunk")) {
                out.push(
                    Diagnostic::warn(
                        codes::ORPHANED_CHUNK,
                        format!("file 'chunks/{name}'"),
                        "chunk is referenced by no manifest (refcount zero)",
                    )
                    .with_help("reclaim the bytes: `sommelier fsck --repair`"),
                );
            }
        }
    }

    /// `SOM076`: every delta manifest's base chain must resolve to a
    /// stored key and terminate.
    fn check_delta_bases(ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        // Keys stored in either representation.
        let stored: BTreeSet<String> = ctx
            .store_files
            .iter()
            .filter_map(|n| {
                n.strip_suffix(MODEL_SUFFIX)
                    .or_else(|| n.strip_suffix(MANIFEST_SUFFIX))
                    .and_then(decode_key)
            })
            .collect();
        // Keys with a flat file: the flat representation wins on load,
        // so a chain passing through one terminates there.
        let flat: BTreeSet<String> = ctx
            .store_files
            .iter()
            .filter_map(|n| n.strip_suffix(MODEL_SUFFIX).and_then(decode_key))
            .collect();
        // key -> base, for manifests that delta.
        let bases: BTreeMap<String, &str> = ctx
            .manifests
            .iter()
            .filter_map(|(file, m)| {
                let key = file.strip_suffix(MANIFEST_SUFFIX).and_then(decode_key)?;
                Some((key, m.base.as_deref()?))
            })
            .collect();
        for (file, manifest) in &ctx.manifests {
            let Some(base) = manifest.base.as_deref() else {
                continue;
            };
            if !stored.contains(base) {
                out.push(
                    Diagnostic::error(
                        codes::BROKEN_DELTA_BASE,
                        format!("file '{file}'"),
                        format!("delta manifest's base '{base}' is not stored"),
                    )
                    .with_help("restore the base model or republish this key as a full manifest"),
                );
                continue;
            }
            let Some(key) = file.strip_suffix(MANIFEST_SUFFIX).and_then(decode_key) else {
                continue;
            };
            let mut seen = BTreeSet::new();
            let mut cur = key;
            let cyclic = loop {
                if !seen.insert(cur.clone()) {
                    break true;
                }
                if flat.contains(&cur) {
                    break false; // the flat file wins: the chain ends here
                }
                match bases.get(&cur) {
                    Some(next) => cur = (*next).to_string(),
                    None => break false,
                }
            };
            if cyclic {
                out.push(
                    Diagnostic::error(
                        codes::BROKEN_DELTA_BASE,
                        format!("file '{file}'"),
                        "delta manifest's base chain cycles; the model cannot be reconstructed",
                    )
                    .with_help("republish one member of the cycle as a full manifest"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn run(ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        StoreHygienePass.run(ctx, &mut out);
        out
    }

    fn ctx_with_files(names: &[&str]) -> LintContext {
        let mut ctx = LintContext::new();
        ctx.store_files = names.iter().map(|s| s.to_string()).collect();
        ctx
    }

    #[test]
    fn clean_store_is_silent() {
        let ctx = ctx_with_files(&[
            "alpha.model.json",
            "a%2Fb.model.json",
            "sommelier.index.json",
        ]);
        assert!(run(&ctx).is_empty());
    }

    #[test]
    fn quarantined_files_warn() {
        let ctx = ctx_with_files(&["sommelier.index.json.corrupt-1700000000"]);
        let out = run(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::QUARANTINED_FILE);
        assert_eq!(out[0].severity, Severity::Warn);
    }

    #[test]
    fn orphaned_temps_warn() {
        let ctx = ctx_with_files(&["alpha.model.json.tmp-123-7"]);
        let out = run(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::ORPHANED_TEMP);
    }

    fn manifest_for(base: Option<&str>, chunks: &[&str]) -> sommelier_repo::Manifest {
        use sommelier_graph::{ModelBuilder, TaskKind};
        use sommelier_tensor::{Prng, Shape};
        let mut rng = Prng::seed_from_u64(1);
        let model = ModelBuilder::new("m", TaskKind::Other, Shape::vector(2))
            .dense(2, &mut rng)
            .build()
            .unwrap();
        let (skeleton, _) = model.strip_params();
        sommelier_repo::Manifest {
            format_version: 1,
            base: base.map(String::from),
            skeleton,
            layers: vec![sommelier_repo::chunks::LayerDelta {
                layer: 1,
                replace: true,
                weight: Some(sommelier_repo::chunks::TensorRef {
                    rows: 2,
                    cols: 2,
                    chunks: chunks.iter().map(|s| s.to_string()).collect(),
                    sparse: None,
                }),
                bias: None,
            }],
        }
    }

    fn hex(fill: char) -> String {
        fill.to_string().repeat(32)
    }

    #[test]
    fn dangling_chunk_reference_errors() {
        let mut ctx = ctx_with_files(&["m.manifest.json"]);
        let present = hex('a');
        let missing = hex('b');
        ctx.chunk_files = vec![format!("{present}.chunk")];
        ctx.manifests = vec![(
            "m.manifest.json".into(),
            manifest_for(None, &[&present, &missing]),
        )];
        let out = run(&ctx);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, codes::DANGLING_CHUNK);
        assert_eq!(out[0].severity, Severity::Error);
        assert!(out[0].message.contains(&missing));
    }

    #[test]
    fn orphaned_and_stray_chunks_warn() {
        let mut ctx = ctx_with_files(&["m.manifest.json"]);
        let used = hex('a');
        let orphan = hex('c');
        ctx.chunk_files = vec![
            format!("{used}.chunk"),
            format!("{orphan}.chunk"),
            "notes.txt".into(),
            format!("{used}.chunk.tmp-1-1"),
        ];
        ctx.manifests = vec![("m.manifest.json".into(), manifest_for(None, &[&used]))];
        let out = run(&ctx);
        let orphans: Vec<_> = out
            .iter()
            .filter(|d| d.code == codes::ORPHANED_CHUNK)
            .collect();
        assert_eq!(orphans.len(), 2, "{out:?}"); // refcount-zero + stray
        assert!(orphans.iter().all(|d| d.severity == Severity::Warn));
        assert!(out.iter().any(|d| d.code == codes::ORPHANED_TEMP));
    }

    #[test]
    fn missing_and_cyclic_delta_bases_error() {
        // "a" deltas on a key nobody stores.
        let mut ctx = ctx_with_files(&["a.manifest.json"]);
        ctx.manifests = vec![("a.manifest.json".into(), manifest_for(Some("ghost"), &[]))];
        let out = run(&ctx);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, codes::BROKEN_DELTA_BASE);

        // a -> b -> a cycle, both stored as manifests.
        let mut ctx = ctx_with_files(&["a.manifest.json", "b.manifest.json"]);
        ctx.manifests = vec![
            ("a.manifest.json".into(), manifest_for(Some("b"), &[])),
            ("b.manifest.json".into(), manifest_for(Some("a"), &[])),
        ];
        let out = run(&ctx);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.code == codes::BROKEN_DELTA_BASE));

        // A healthy delta (base stored flat) is silent.
        let mut ctx = ctx_with_files(&["base.model.json", "v1.manifest.json"]);
        ctx.manifests = vec![("v1.manifest.json".into(), manifest_for(Some("base"), &[]))];
        assert!(run(&ctx).is_empty());
    }

    #[test]
    fn non_canonical_model_names_warn() {
        // `%2f` decodes but is not the canonical (uppercase) spelling,
        // and a raw '/' could never appear; both are invisible to keys().
        let ctx = ctx_with_files(&["a%2fb.model.json", "nul%0.model.json"]);
        let out = run(&ctx);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.code == codes::NON_CANONICAL_MODEL_FILE));
    }
}
