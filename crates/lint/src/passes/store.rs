//! `SOM07x` — store-hygiene lints over the raw repository directory.
//!
//! The durability layer (PR 5) leaves deliberate evidence on disk:
//! unreadable snapshots are renamed to `*.corrupt-<epoch>` instead of
//! deleted, and a crash mid-`write_atomic` can strand a fully private
//! `*.tmp-<pid>-<seq>` sibling. Neither is ever *read* by the engine
//! again, so without a reporting loop they accumulate silently. This
//! pass closes that loop:
//!
//! * **quarantined artifacts** (`SOM070`, warn) — a corrupt snapshot or
//!   model was found and set aside; an operator should inspect and then
//!   prune it (`sommelier fsck --prune`);
//! * **orphaned temps** (`SOM071`, warn) — an interrupted atomic write
//!   left its temp sibling behind; harmless but worth deleting
//!   (`sommelier fsck --repair`);
//! * **non-canonical model file names** (`SOM072`, warn) — a
//!   `*.model.json` file whose stem is not a canonical
//!   [`sommelier_repo::encode_key`] spelling. The repository will never
//!   surface it as a key, so it is effectively invisible data;
//! * **listing failures** (`SOM073`, error) — the directory itself
//!   could not be enumerated, so every other store check is blind.
//!
//! The pass works off [`crate::LintContext::store_files`], the raw file
//! names captured at context-load time, so it stays execution-free like
//! every other pass.

use crate::diagnostics::{codes, Diagnostic};
use crate::{LintContext, Pass};
use sommelier_fault::storage::{is_quarantine_name, is_temp_name};
use sommelier_repo::decode_key;

/// File-name suffix of stored models (mirrors the repository layout).
const MODEL_SUFFIX: &str = ".model.json";

/// Reports quarantined, orphaned, and mis-named files in the store.
pub struct StoreHygienePass;

impl Pass for StoreHygienePass {
    fn name(&self) -> &'static str {
        "store-hygiene"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for name in &ctx.store_files {
            if is_quarantine_name(name) {
                out.push(
                    Diagnostic::warn(
                        codes::QUARANTINED_FILE,
                        format!("file '{name}'"),
                        "quarantined artifact from a failed load is still on disk",
                    )
                    .with_help("inspect it, then remove it with `sommelier fsck --prune`"),
                );
            } else if is_temp_name(name) {
                out.push(
                    Diagnostic::warn(
                        codes::ORPHANED_TEMP,
                        format!("file '{name}'"),
                        "orphaned temp file from an interrupted atomic write",
                    )
                    .with_help("safe to delete: `sommelier fsck --repair`"),
                );
            } else if let Some(stem) = name.strip_suffix(MODEL_SUFFIX) {
                if decode_key(stem).is_none() {
                    out.push(
                        Diagnostic::warn(
                            codes::NON_CANONICAL_MODEL_FILE,
                            format!("file '{name}'"),
                            "model file name is not a canonical key encoding; \
                             the repository will never list it",
                        )
                        .with_help(
                            "republish the model through the repository API and delete the file",
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn run(ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        StoreHygienePass.run(ctx, &mut out);
        out
    }

    fn ctx_with_files(names: &[&str]) -> LintContext {
        let mut ctx = LintContext::new();
        ctx.store_files = names.iter().map(|s| s.to_string()).collect();
        ctx
    }

    #[test]
    fn clean_store_is_silent() {
        let ctx = ctx_with_files(&[
            "alpha.model.json",
            "a%2Fb.model.json",
            "sommelier.index.json",
        ]);
        assert!(run(&ctx).is_empty());
    }

    #[test]
    fn quarantined_files_warn() {
        let ctx = ctx_with_files(&["sommelier.index.json.corrupt-1700000000"]);
        let out = run(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::QUARANTINED_FILE);
        assert_eq!(out[0].severity, Severity::Warn);
    }

    #[test]
    fn orphaned_temps_warn() {
        let ctx = ctx_with_files(&["alpha.model.json.tmp-123-7"]);
        let out = run(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::ORPHANED_TEMP);
    }

    #[test]
    fn non_canonical_model_names_warn() {
        // `%2f` decodes but is not the canonical (uppercase) spelling,
        // and a raw '/' could never appear; both are invisible to keys().
        let ctx = ctx_with_files(&["a%2fb.model.json", "nul%0.model.json"]);
        let out = run(&ctx);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.code == codes::NON_CANONICAL_MODEL_FILE));
    }
}
