//! Model-graph lints (`SOM001`–`SOM006`).
//!
//! Everything here is derived from the stored graph alone — no weights
//! are ever multiplied. The checks mirror what a careful reviewer would
//! notice in a model card: computation that cannot influence the output,
//! layers that destroy the information the rest of the network needs,
//! operator sequences that collapse to a no-op, cost profiles that do
//! not fit the family the model claims to belong to, and artifacts that
//! would not survive the repository's own interchange encoding.

use crate::diagnostics::{codes, Diagnostic};
use crate::{LintContext, Pass};
use sommelier_graph::cost::model_cost;
use sommelier_graph::{Fingerprint, Model, Op, OpKind};

/// Structural lints over each model's layer DAG: dead layers
/// (`SOM001`), interior width-1 bottlenecks (`SOM002`), suspicious
/// activation/normalization orderings (`SOM003`), and all-zero linear
/// weights (`SOM006`).
pub struct ModelGraphPass;

impl Pass for ModelGraphPass {
    fn name(&self) -> &'static str {
        "model-graph"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for (key, model) in &ctx.models {
            model_graph_findings(key, model, out);
        }
    }
}

/// All structural graph lints for one model, as a free function so the
/// audit engine can run (and memoize) them per model.
pub fn model_graph_findings(key: &str, model: &Model, out: &mut Vec<Diagnostic>) {
    let target = format!("model '{key}'");
    check_dead_layers(model, &target, out);
    check_width_bottlenecks(model, &target, out);
    check_op_orderings(model, &target, out);
    check_zero_weights(model, &target, out);
}

/// `SOM001`: a non-output layer whose value no later layer consumes is
/// dead computation — it burns FLOPs and memory without affecting any
/// inference.
fn check_dead_layers(model: &Model, target: &str, out: &mut Vec<Diagnostic>) {
    let consumers = model.consumers();
    let output = model.output_id().index();
    for (id, consumed_by) in consumers.iter().enumerate() {
        if id != output && consumed_by.is_empty() {
            out.push(
                Diagnostic::warn(
                    codes::DEAD_LAYER,
                    target,
                    format!(
                        "layer '{}' is never consumed and is not the output",
                        model.layer(sommelier_graph::LayerId(id)).name
                    ),
                )
                .with_layer(id)
                .with_help("remove the layer or wire its output into the graph"),
            );
        }
    }
}

/// `SOM002`: an interior layer that narrows to width 1 while the model
/// produces a wider output forces all information through a scalar —
/// downstream layers can only re-expand a single degree of freedom.
fn check_width_bottlenecks(model: &Model, target: &str, out: &mut Vec<Diagnostic>) {
    if model.output_width() <= 1 {
        return; // scalar outputs legitimately narrow to 1
    }
    let output = model.output_id().index();
    for id in 1..model.num_layers() {
        if id == output {
            continue;
        }
        let lid = sommelier_graph::LayerId(id);
        if model.width_of(lid) == 1 {
            out.push(
                Diagnostic::warn(
                    codes::WIDTH_BOTTLENECK,
                    target,
                    format!(
                        "interior layer '{}' narrows to width 1 while the output is width {}",
                        model.layer(lid).name,
                        model.output_width()
                    ),
                )
                .with_layer(id)
                .with_help("a width-1 interior layer collapses the feature space"),
            );
        }
    }
}

/// `SOM003`: operator orderings that are statically redundant — the same
/// parameterless activation/normalization applied twice in a row
/// (idempotent or collapsible), or ReLU directly after softmax (softmax
/// outputs are already non-negative, so the ReLU is an identity).
fn check_op_orderings(model: &Model, target: &str, out: &mut Vec<Diagnostic>) {
    for (id, layer) in model.layers().iter().enumerate() {
        let [input] = layer.inputs.as_slice() else {
            continue;
        };
        let prev = &model.layer(*input).op;
        let cur = &layer.op;
        let repeatable = matches!(cur.kind(), OpKind::Activation | OpKind::Normalization)
            && !cur.has_params();
        if repeatable && cur.type_tag() == prev.type_tag() {
            out.push(
                Diagnostic::warn(
                    codes::SUSPICIOUS_ORDER,
                    target,
                    format!("'{}' is applied twice in a row", cur.type_tag()),
                )
                .with_layer(id)
                .with_help("the second application is redundant"),
            );
        }
        if matches!(prev, Op::Softmax) && matches!(cur, Op::Relu) {
            out.push(
                Diagnostic::warn(
                    codes::SUSPICIOUS_ORDER,
                    target,
                    "ReLU after softmax is an identity (softmax outputs are non-negative)",
                )
                .with_layer(id)
                .with_help("drop the ReLU"),
            );
        }
    }
}

/// `SOM006`: a linear layer whose weight tensor is entirely zero outputs
/// only its bias (or nothing) regardless of the input.
fn check_zero_weights(model: &Model, target: &str, out: &mut Vec<Diagnostic>) {
    for lid in model.linear_layers() {
        let layer = model.layer(lid);
        if let Some(weight) = &layer.params.weight {
            if weight.max_abs() == 0.0 {
                out.push(
                    Diagnostic::warn(
                        codes::ZERO_WEIGHTS,
                        target,
                        format!("linear layer '{}' carries an all-zero weight tensor", layer.name),
                    )
                    .with_layer(lid.index())
                    .with_help("the layer ignores its input; was the artifact truncated?"),
                );
            }
        }
    }
}

/// `SOM004`: cost-profile outliers within a declared family.
///
/// Models seeded from the same series (`metadata["series"]`) should have
/// comparable compute footprints. A member whose FLOPs are more than
/// [`ModelCostPass::RATIO`]× the family median (or less than 1/RATIO) is
/// flagged — informationally, because wide families are legal; the
/// finding exists so an operator reviews whether the artifact was
/// mislabeled or corrupted.
pub struct ModelCostPass;

impl ModelCostPass {
    /// Outlier ratio against the family median.
    pub const RATIO: f64 = 32.0;
}

impl Pass for ModelCostPass {
    fn name(&self) -> &'static str {
        "model-cost"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        use std::collections::BTreeMap;
        let mut families: BTreeMap<&str, Vec<(&str, f64)>> = BTreeMap::new();
        for (key, model) in &ctx.models {
            if let Some(series) = model.metadata.get("series") {
                families
                    .entry(series.as_str())
                    .or_default()
                    .push((key.as_str(), model_cost(model).gflops()));
            }
        }
        for (series, members) in families {
            if members.len() < 3 {
                continue; // too small for a meaningful median
            }
            let mut flops: Vec<f64> = members.iter().map(|(_, f)| *f).collect();
            flops.sort_by(|a, b| a.total_cmp(b));
            let median = flops[flops.len() / 2];
            if median <= 0.0 {
                continue;
            }
            for (key, gflops) in members {
                let ratio = gflops / median;
                if !(1.0 / Self::RATIO..=Self::RATIO).contains(&ratio) {
                    out.push(
                        Diagnostic::info(
                            codes::COST_OUTLIER,
                            format!("model '{key}'"),
                            format!(
                                "{gflops:.4} GFLOPs is {ratio:.1}x the median of series \
                                 '{series}' ({median:.4} GFLOPs)"
                            ),
                        )
                        .with_help("verify the model's series label and its weights"),
                    );
                }
            }
        }
    }
}

/// `SOM005`: the model must survive the repository's own interchange
/// encoding. A model that fails to serialize (e.g. a non-finite weight),
/// fails to parse back, or comes back with a different fingerprint would
/// silently corrupt on its next republish.
pub struct ModelRoundTripPass;

impl Pass for ModelRoundTripPass {
    fn name(&self) -> &'static str {
        "model-round-trip"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for (key, model) in &ctx.models {
            round_trip_findings(key, model, out);
        }
    }
}

/// The serde round-trip lint for one model, exposed for the audit
/// engine's memoized per-model fan-out.
pub fn round_trip_findings(key: &str, model: &Model, out: &mut Vec<Diagnostic>) {
    let target = format!("model '{key}'");
    let json = match serde_json::to_string(model) {
        Ok(json) => json,
        Err(e) => {
            out.push(
                Diagnostic::error(
                    codes::ROUND_TRIP_MISMATCH,
                    target,
                    format!("model does not serialize: {e}"),
                )
                .with_help("non-finite weights cannot be stored"),
            );
            return;
        }
    };
    match serde_json::from_str::<Model>(&json) {
        Ok(back) => {
            if Fingerprint::of_model(&back) != Fingerprint::of_model(model) {
                out.push(Diagnostic::error(
                    codes::ROUND_TRIP_MISMATCH,
                    target,
                    "model fingerprint changes across a serialization round-trip",
                ));
            }
        }
        Err(e) => {
            out.push(Diagnostic::error(
                codes::ROUND_TRIP_MISMATCH,
                target,
                format!("serialized model does not parse back: {e}"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape, Tensor};

    fn ctx_with(models: Vec<(&str, Model)>) -> LintContext {
        let mut ctx = LintContext::new();
        for (key, model) in models {
            ctx.models.push((key.to_string(), model));
        }
        ctx
    }

    fn run(pass: &dyn Pass, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        pass.run(ctx, &mut out);
        out
    }

    fn mlp(name: &str, hidden: usize, seed: u64) -> Model {
        let mut rng = Prng::seed_from_u64(seed);
        ModelBuilder::new(name, TaskKind::Other, Shape::vector(4))
            .dense(hidden, &mut rng)
            .relu()
            .dense(3, &mut rng)
            .softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn clean_model_produces_no_graph_findings() {
        let ctx = ctx_with(vec![("clean", mlp("clean", 8, 1))]);
        assert!(run(&ModelGraphPass, &ctx).is_empty());
    }

    #[test]
    fn dead_layer_is_reported() {
        let mut rng = Prng::seed_from_u64(2);
        let mut b = ModelBuilder::new("dead", TaskKind::Other, Shape::vector(4));
        b.dense(4, &mut rng);
        let trunk = b.cursor();
        b.relu();
        let live = b.cursor();
        b.goto(trunk);
        b.dense(2, &mut rng); // never consumed, not the output
        let dead = b.cursor();
        b.goto(live);
        b.softmax();
        let model = b.build().unwrap();
        let ctx = ctx_with(vec![("dead", model)]);
        let diags = run(&ModelGraphPass, &ctx);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::DEAD_LAYER && d.layer == Some(dead.index())),
            "{diags:?}"
        );
    }

    #[test]
    fn width_bottleneck_is_reported() {
        let mut rng = Prng::seed_from_u64(3);
        let model = ModelBuilder::new("pinch", TaskKind::Other, Shape::vector(4))
            .dense(1, &mut rng)
            .relu()
            .dense(3, &mut rng)
            .softmax()
            .build()
            .unwrap();
        let ctx = ctx_with(vec![("pinch", model)]);
        let diags = run(&ModelGraphPass, &ctx);
        assert!(
            diags.iter().any(|d| d.code == codes::WIDTH_BOTTLENECK && d.layer == Some(1)),
            "{diags:?}"
        );
    }

    #[test]
    fn scalar_output_models_may_narrow() {
        let mut rng = Prng::seed_from_u64(4);
        let model = ModelBuilder::new("scalar", TaskKind::Other, Shape::vector(4))
            .dense(8, &mut rng)
            .relu()
            .dense(1, &mut rng)
            .sigmoid()
            .build()
            .unwrap();
        let ctx = ctx_with(vec![("scalar", model)]);
        let diags = run(&ModelGraphPass, &ctx);
        assert!(!diags.iter().any(|d| d.code == codes::WIDTH_BOTTLENECK), "{diags:?}");
    }

    #[test]
    fn repeated_activation_is_reported() {
        let mut rng = Prng::seed_from_u64(5);
        let model = ModelBuilder::new("twice", TaskKind::Other, Shape::vector(4))
            .dense(4, &mut rng)
            .relu()
            .relu()
            .dense(3, &mut rng)
            .softmax()
            .build()
            .unwrap();
        let ctx = ctx_with(vec![("twice", model)]);
        let diags = run(&ModelGraphPass, &ctx);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::SUSPICIOUS_ORDER && d.message.contains("twice in a row")),
            "{diags:?}"
        );
    }

    #[test]
    fn relu_after_softmax_is_reported() {
        let mut rng = Prng::seed_from_u64(6);
        let model = ModelBuilder::new("noop", TaskKind::Other, Shape::vector(4))
            .dense(3, &mut rng)
            .softmax()
            .relu()
            .build()
            .unwrap();
        let ctx = ctx_with(vec![("noop", model)]);
        let diags = run(&ModelGraphPass, &ctx);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::SUSPICIOUS_ORDER && d.message.contains("softmax")),
            "{diags:?}"
        );
    }

    #[test]
    fn zero_weights_are_reported() {
        let model = ModelBuilder::new("zeroed", TaskKind::Other, Shape::vector(4))
            .dense_with(Tensor::zeros(4, 3), None)
            .softmax()
            .build()
            .unwrap();
        let ctx = ctx_with(vec![("zeroed", model)]);
        let diags = run(&ModelGraphPass, &ctx);
        assert!(
            diags.iter().any(|d| d.code == codes::ZERO_WEIGHTS && d.layer == Some(1)),
            "{diags:?}"
        );
    }

    #[test]
    fn family_cost_outlier_is_informational() {
        let mut small_a = mlp("fam-a", 4, 10);
        let mut small_b = mlp("fam-b", 4, 11);
        let mut rng = Prng::seed_from_u64(12);
        let mut huge = ModelBuilder::new("fam-c", TaskKind::Other, Shape::vector(4))
            .dense(512, &mut rng)
            .relu()
            .dense(512, &mut rng)
            .softmax()
            .build()
            .unwrap();
        for m in [&mut small_a, &mut small_b, &mut huge] {
            m.metadata.insert("series".into(), "fam".into());
        }
        let ctx = ctx_with(vec![("fam-a", small_a), ("fam-b", small_b), ("fam-c", huge)]);
        let diags = run(&ModelCostPass, &ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::COST_OUTLIER);
        assert_eq!(diags[0].severity, Severity::Info);
        assert_eq!(diags[0].target, "model 'fam-c'");
    }

    #[test]
    fn small_families_are_not_judged() {
        let mut a = mlp("a", 4, 13);
        let mut b = mlp("b", 512, 14);
        for m in [&mut a, &mut b] {
            m.metadata.insert("series".into(), "tiny".into());
        }
        let ctx = ctx_with(vec![("a", a), ("b", b)]);
        assert!(run(&ModelCostPass, &ctx).is_empty());
    }

    #[test]
    fn healthy_model_round_trips_clean() {
        let ctx = ctx_with(vec![("ok", mlp("ok", 8, 15))]);
        assert!(run(&ModelRoundTripPass, &ctx).is_empty());
    }

    #[test]
    fn non_finite_weight_breaks_the_round_trip() {
        let mut weight = Tensor::zeros(4, 3);
        weight.set(0, 0, f32::NAN);
        let model = ModelBuilder::new("nan", TaskKind::Other, Shape::vector(4))
            .dense_with(weight, None)
            .softmax()
            .build()
            .unwrap();
        let ctx = ctx_with(vec![("nan", model)]);
        let diags = run(&ModelRoundTripPass, &ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::ROUND_TRIP_MISMATCH);
        assert_eq!(diags[0].severity, Severity::Error);
    }
}
