//! `SOM054`–`SOM056` — binary (`.somb`) snapshot-image lints.
//!
//! PR 7's binary snapshot format carries its own integrity machinery: a
//! CRC-checked header, per-section CRCs, and a shape invariant tying the
//! f32 resource slab to the row table. The read path already *rejects*
//! a damaged image (and the engine quarantines + rebuilds), but the
//! lint layer should explain **what** is wrong with the bytes, not just
//! that loading failed. This pass scans the raw image with
//! [`sommelier_index::somb::integrity_issues`] — no index construction,
//! so it works even on images too damaged to decode:
//!
//! * header or section CRC mismatch → `SOM054` (`Error`);
//! * slab byte length ≠ row count × stride × 4 → `SOM055` (`Error`);
//! * non-finite f32 lanes in the slab → `SOM056` (`Error`) — a slab
//!   that *decodes* but would poison every distance computation.

use crate::diagnostics::{codes, Diagnostic};
use crate::{LintContext, Pass};
use sommelier_index::somb::{self, IntegrityIssue};

/// Validates the raw bytes of a binary snapshot image.
pub struct BinarySnapshotPass;

impl Pass for BinarySnapshotPass {
    fn name(&self) -> &'static str {
        "binary-snapshot"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        let Some(bytes) = &ctx.binary_snapshot else {
            return;
        };
        for issue in somb::integrity_issues(bytes) {
            out.push(match issue {
                IntegrityIssue::Header(detail) => Diagnostic::error(
                    codes::BINARY_SNAPSHOT_CORRUPT,
                    "binary-snapshot",
                    format!("header validation failed: {detail}"),
                )
                .with_help("quarantine the file and rebuild with `sommelier index`"),
                IntegrityIssue::SectionCrc {
                    section,
                    stored,
                    computed,
                } => Diagnostic::error(
                    codes::BINARY_SNAPSHOT_CORRUPT,
                    "binary-snapshot",
                    format!(
                        "section '{section}' CRC mismatch: stored {stored:#010x}, \
                         computed {computed:#010x}"
                    ),
                )
                .with_help("quarantine the file and rebuild with `sommelier index`"),
                IntegrityIssue::SlabShape { expected, found } => Diagnostic::error(
                    codes::SLAB_SHAPE_MISMATCH,
                    "binary-snapshot",
                    format!(
                        "resource slab holds {found} byte(s) but the row table \
                         implies {expected}"
                    ),
                ),
                IntegrityIssue::NonFinite { slot, lane } => Diagnostic::error(
                    codes::NON_FINITE_SLAB,
                    "binary-snapshot",
                    format!("slab slot {slot} lane {lane} is not finite"),
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use sommelier_index::lsh::LshConfig;
    use sommelier_index::semantic::SemanticIndexConfig;
    use sommelier_index::{ResourceIndex, SemanticIndex};

    fn run(ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        BinarySnapshotPass.run(ctx, &mut out);
        out
    }

    fn image() -> Vec<u8> {
        let mut resource = ResourceIndex::new(LshConfig::default(), 1);
        resource.insert(
            "m",
            sommelier_runtime::ResourceProfile {
                memory_mb: 10.0,
                gflops: 2.0,
                latency_ms: 5.0,
            },
        );
        let semantic = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        somb::encode(&semantic, &resource, None)
    }

    #[test]
    fn no_binary_image_is_silent() {
        assert!(run(&LintContext::new()).is_empty());
    }

    #[test]
    fn intact_image_lints_clean() {
        let mut ctx = LintContext::new();
        ctx.binary_snapshot = Some(image());
        assert!(run(&ctx).is_empty());
    }

    #[test]
    fn torn_header_reports_som054() {
        let mut bytes = image();
        bytes[6] ^= 0xFF; // inside the header, breaks its CRC
        let mut ctx = LintContext::new();
        ctx.binary_snapshot = Some(bytes);
        let out = run(&ctx);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, codes::BINARY_SNAPSHOT_CORRUPT);
        assert_eq!(out[0].severity, Severity::Error);
    }

    #[test]
    fn torn_section_reports_som054_with_the_section_name() {
        let mut bytes = image();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // past the header: some section's payload
        let mut ctx = LintContext::new();
        ctx.binary_snapshot = Some(bytes);
        let out = run(&ctx);
        assert!(
            out.iter().any(|d| d.code == codes::BINARY_SNAPSHOT_CORRUPT
                && d.message.contains("CRC mismatch")),
            "{out:?}"
        );
    }
}
