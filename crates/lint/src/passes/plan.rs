//! Query-plan lints (`SOM040`–`SOM044`).
//!
//! Queries are linted by *planning* them, never executing them: the
//! reference is resolved against the stored models, relative bounds are
//! resolved against the reference's statically computed resource
//! profile, and the planner's own [`PlanDiagnostic`]s are mapped onto
//! the shared `SOM04x` codes. A query that names a reference no stored
//! model satisfies is itself a finding (`SOM043`): the semantic filter
//! would prune every candidate before any work happened.

use crate::diagnostics::{codes, Diagnostic};
use crate::{LintContext, Pass};
use sommelier_graph::Model;
use sommelier_query::plan::{plan_checked, PlanDiagnostic};
use sommelier_query::RefSpec;
use sommelier_runtime::ResourceProfile;

/// Static query analysis: unsatisfiable `WITHIN` thresholds (`SOM040`),
/// statically empty resource budgets (`SOM041`), shadowed predicates
/// (`SOM042`), references that prune to nothing (`SOM043`), and
/// `SELECT models 0` (`SOM044`).
pub struct QueryPlanPass;

impl QueryPlanPass {
    fn resolve<'a>(ctx: &'a LintContext, spec: &RefSpec) -> Option<(&'a str, &'a Model)> {
        match spec {
            RefSpec::Named(name) => ctx
                .models
                .iter()
                .find(|(key, model)| key == name || &model.name == name)
                .map(|(key, model)| (key.as_str(), model)),
            RefSpec::Task(task) => ctx
                .models
                .iter()
                .find(|(_, model)| model.task == *task)
                .map(|(key, model)| (key.as_str(), model)),
        }
    }
}

impl Pass for QueryPlanPass {
    fn name(&self) -> &'static str {
        "query-plan"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for (i, query) in ctx.queries.iter().enumerate() {
            let target = format!("query #{}", i + 1);
            let Some((key, model)) = Self::resolve(ctx, &query.reference) else {
                let what = match &query.reference {
                    RefSpec::Named(name) => format!("reference model '{name}'"),
                    RefSpec::Task(task) => format!("task {task:?} default reference"),
                };
                out.push(
                    Diagnostic::error(
                        codes::EMPTY_REFERENCE,
                        target,
                        format!("{what} matches no stored model; the query returns nothing"),
                    )
                    .with_help("check the reference name against `sommelier list`"),
                );
                continue;
            };
            let profile = ResourceProfile::of(model);
            let (_, plan_diags) = plan_checked(query, key, &profile);
            for d in plan_diags {
                out.push(match &d {
                    PlanDiagnostic::UnsatisfiableThreshold { .. } => {
                        Diagnostic::error(codes::UNSATISFIABLE_THRESHOLD, &target, d.to_string())
                            .with_help("WITHIN thresholds must lie in [0, 1]")
                    }
                    PlanDiagnostic::EmptyBudget { .. } => {
                        Diagnostic::error(codes::EMPTY_BUDGET, &target, d.to_string())
                            .with_help("loosen the bound or drop the predicate")
                    }
                    PlanDiagnostic::ShadowedPredicate { .. } => {
                        Diagnostic::info(codes::SHADOWED_PREDICATE, &target, d.to_string())
                            .with_help("the looser predicate can be removed")
                    }
                    PlanDiagnostic::LimitZero => {
                        Diagnostic::warn(codes::LIMIT_ZERO, &target, d.to_string())
                            .with_help("ask for at least one model")
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_query::Query;
    use sommelier_tensor::{Prng, Shape};

    fn ctx_with_ref() -> LintContext {
        let mut rng = Prng::seed_from_u64(1);
        let model = ModelBuilder::new("ref", TaskKind::SentimentAnalysis, Shape::vector(4))
            .dense(4, &mut rng)
            .relu()
            .dense(3, &mut rng)
            .softmax()
            .build()
            .unwrap();
        let mut ctx = LintContext::new();
        ctx.models.push(("ref".to_string(), model));
        ctx
    }

    fn lint(ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        QueryPlanPass.run(ctx, &mut out);
        out
    }

    #[test]
    fn sound_query_is_clean() {
        let mut ctx = ctx_with_ref();
        ctx.queries.push(Query::corr("ref").within(0.9).memory_at_most_frac(0.8));
        assert!(lint(&ctx).is_empty());
    }

    #[test]
    fn impossible_threshold_is_an_error() {
        let mut ctx = ctx_with_ref();
        ctx.queries.push(Query::corr("ref").within(1.5));
        let diags = lint(&ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::UNSATISFIABLE_THRESHOLD);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].target, "query #1");
    }

    #[test]
    fn empty_budget_is_an_error() {
        let mut ctx = ctx_with_ref();
        ctx.queries.push(Query::corr("ref").latency_at_most_ms(-3.0));
        let diags = lint(&ctx);
        assert!(diags.iter().any(|d| d.code == codes::EMPTY_BUDGET), "{diags:?}");
    }

    #[test]
    fn shadowed_predicate_is_informational() {
        let mut ctx = ctx_with_ref();
        ctx.queries.push(
            Query::corr("ref")
                .memory_at_most_frac(0.8)
                .memory_at_most_frac(0.5),
        );
        let diags = lint(&ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::SHADOWED_PREDICATE);
        assert_eq!(diags[0].severity, Severity::Info);
    }

    #[test]
    fn unknown_reference_is_an_error() {
        let mut ctx = ctx_with_ref();
        ctx.queries.push(Query::corr("ghost"));
        let diags = lint(&ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::EMPTY_REFERENCE);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn task_reference_resolves_against_stored_tasks() {
        let mut ctx = ctx_with_ref();
        let mut matching = Query::corr("ignored");
        matching.reference = RefSpec::Task(TaskKind::SentimentAnalysis);
        let mut missing = Query::corr("ignored");
        missing.reference = RefSpec::Task(TaskKind::ObjectDetection);
        ctx.queries.push(matching);
        ctx.queries.push(missing);
        let diags = lint(&ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::EMPTY_REFERENCE);
        assert_eq!(diags[0].target, "query #2");
    }

    #[test]
    fn zero_limit_is_a_warning() {
        let mut ctx = ctx_with_ref();
        ctx.queries.push(Query::corr("ref").top(0));
        let diags = lint(&ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::LIMIT_ZERO);
        assert_eq!(diags[0].severity, Severity::Warn);
    }
}
