//! Deep analyses (`SOM080`–`SOM092`): the dataflow pass family and the
//! cross-artifact consistency join.
//!
//! Two passes live here. [`DeepModelPass`] runs the forward abstract
//! interpreter ([`crate::dataflow`]) over every stored model and turns
//! its facts into findings: shape-incompatible edges, non-finite
//! weights, unreachable subgraphs, saturated activations, constant
//! outputs, rank-collapsed matmuls, and declared-vs-recomputed cost
//! drift. [`CrossArtifactPass`] joins the repository against the
//! persisted indices: recomputed fingerprints must match the semantic
//! index, recomputed resource vectors must match the resource index,
//! and transitive equivalence bounds must stay inside the triangle
//! interval spanned by their measured `Whole` legs.
//!
//! The per-model half is exposed as the free function
//! [`deep_model_findings`] so the [`crate::audit::Auditor`] can fan it
//! out over a thread pool and memoize results by fingerprint; the pass
//! structs exist for the sequential [`crate::LintRunner`] path.

use crate::dataflow::{self, ShapeFact};
use crate::diagnostics::{codes, Diagnostic};
use crate::{LintContext, Pass};
use sommelier_graph::cost::model_cost;
use sommelier_graph::{Fingerprint, Model, Op};
use std::collections::BTreeMap;

/// Sigmoid/tanh pre-activations beyond this magnitude are within 3e-4
/// of the asymptote — the layer is, for every analyzable input,
/// indistinguishable from a constant.
const SATURATION_MAGNITUDE: f64 = 8.0;

/// Relative tolerance for proportional-rows detection (rank collapse).
const RANK_REL_TOL: f64 = 1e-9;

/// Relative tolerance when comparing stored resource vectors against
/// recomputed ones. Profiles are deterministic functions of the model,
/// so only float round-trips through JSON separate the two.
const RESOURCE_REL_TOL: f64 = 1e-6;

/// Slack factor on the transitive-legs triangle interval, matching the
/// shallow [`crate::passes::index::TrianglePass`]: measured diffs are
/// only approximately symmetric, so the interval is widened before a
/// bound is called inconsistent.
const LEG_SLACK: f64 = 1.5;

/// The deep per-model dataflow lints (`SOM080`–`SOM086`).
pub struct DeepModelPass;

impl Pass for DeepModelPass {
    fn name(&self) -> &'static str {
        "deep-dataflow"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for (key, model) in &ctx.models {
            deep_model_findings(key, model, out);
        }
    }
}

/// Run every per-model deep check on one model, appending findings.
/// Findings target `model '<key>'`; the audit engine memoizes the
/// result per fingerprint and rewrites targets on memo hits.
pub fn deep_model_findings(key: &str, model: &Model, out: &mut Vec<Diagnostic>) {
    let target = format!("model '{key}'");
    let analysis = dataflow::analyze(model, dataflow::DEFAULT_INPUT);
    check_shapes(model, &analysis, &target, out);
    check_weights(model, &target, out);
    check_reachability(model, &analysis, &target, out);
    check_saturation(model, &analysis, &target, out);
    check_constant_output(model, &analysis, &target, out);
    check_declared_cost(model, &target, out);
}

/// `SOM080`: recomputed widths must agree with the stored `widths`
/// array, every operator must accept its recomputed input widths, and
/// every parameter tensor must have the dimensions its operator
/// implies. Deserialization accepts all of these unvalidated, so a
/// tampered or bit-rotted artifact surfaces exactly here.
fn check_shapes(
    model: &Model,
    analysis: &dataflow::ModelAnalysis,
    target: &str,
    out: &mut Vec<Diagnostic>,
) {
    for (id, layer) in model.layers().iter().enumerate() {
        let fact = analysis.facts[id].shape;
        let inputs_ok = layer
            .inputs
            .iter()
            .all(|i| matches!(analysis.facts[i.index()].shape, ShapeFact::Width(_)));
        match fact {
            // Report a conflict only where it originates; downstream
            // layers are poisoned by construction and repeating the
            // finding per descendant would bury the root cause.
            ShapeFact::Conflict if inputs_ok => {
                let widths: Vec<usize> = layer
                    .inputs
                    .iter()
                    .filter_map(|i| analysis.facts[i.index()].shape.width())
                    .collect();
                out.push(
                    Diagnostic::error(
                        codes::SHAPE_INCOMPATIBLE,
                        target,
                        format!(
                            "operator '{}' rejects its input widths {widths:?}",
                            layer.op.type_tag()
                        ),
                    )
                    .with_layer(id)
                    .with_help("an edge feeds this layer a shape it cannot consume"),
                );
            }
            ShapeFact::Width(w) if w != model.width_of(sommelier_graph::LayerId(id)) => {
                out.push(
                    Diagnostic::error(
                        codes::SHAPE_INCOMPATIBLE,
                        target,
                        format!(
                            "stored width {} disagrees with recomputed width {w}",
                            model.width_of(sommelier_graph::LayerId(id))
                        ),
                    )
                    .with_layer(id)
                    .with_help("the artifact's widths array was modified after validation"),
                );
            }
            _ => {}
        }
        check_param_shape(model, &analysis.facts, id, target, out);
    }
}

/// Parameter-tensor dimension checks, part of `SOM080`.
fn check_param_shape(
    model: &Model,
    facts: &[dataflow::LayerFact],
    id: usize,
    target: &str,
    out: &mut Vec<Diagnostic>,
) {
    let layer = &model.layers()[id];
    let input_width = layer
        .inputs
        .first()
        .and_then(|i| facts[i.index()].shape.width());
    let expected: Option<(usize, usize)> = match (&layer.op, input_width) {
        (Op::Dense { units }, Some(in_w)) => Some((in_w, *units)),
        (
            Op::Conv1d {
                out_channels,
                kernel_size,
                ..
            },
            _,
        ) => Some((*out_channels, *kernel_size)),
        (Op::Scale, Some(in_w)) => Some((1, in_w)),
        _ => None,
    };
    let Some((rows, cols)) = expected else { return };
    match &layer.params.weight {
        None => out.push(
            Diagnostic::error(
                codes::SHAPE_INCOMPATIBLE,
                target,
                format!("linear operator '{}' is missing its weight tensor", layer.op.type_tag()),
            )
            .with_layer(id),
        ),
        Some(w) if w.rows() != rows || w.cols() != cols => out.push(
            Diagnostic::error(
                codes::SHAPE_INCOMPATIBLE,
                target,
                format!(
                    "weight tensor is {}x{}, operator '{}' requires {rows}x{cols}",
                    w.rows(),
                    w.cols(),
                    layer.op.type_tag()
                ),
            )
            .with_layer(id),
        ),
        _ => {}
    }
}

/// `SOM081` non-finite parameters and `SOM085` rank-collapsed matmuls.
fn check_weights(model: &Model, target: &str, out: &mut Vec<Diagnostic>) {
    for (id, layer) in model.layers().iter().enumerate() {
        let tensors = [layer.params.weight.as_ref(), layer.params.bias.as_ref()];
        let nonfinite: usize = tensors
            .iter()
            .flatten()
            .map(|t| t.as_slice().iter().filter(|v| !v.is_finite()).count())
            .sum();
        if nonfinite > 0 {
            out.push(
                Diagnostic::error(
                    codes::NONFINITE_WEIGHTS,
                    target,
                    format!(
                        "layer '{}' carries {nonfinite} non-finite parameter value(s)",
                        layer.name
                    ),
                )
                .with_layer(id)
                .with_help("NaN/Inf weights poison every inference and cannot be re-serialized"),
            );
        }
        if let (Op::Dense { .. }, Some(w)) = (&layer.op, layer.params.weight.as_ref()) {
            if nonfinite == 0
                && w.rows() >= 2
                && w.cols() >= 2
                && w.max_abs() > 0.0
                && numerical_rank_le_1(w)
            {
                out.push(
                    Diagnostic::warn(
                        codes::RANK_COLLAPSED,
                        target,
                        format!(
                            "dense layer '{}' has numerical rank <= 1: all {} weight rows \
                             are parallel",
                            layer.name,
                            w.rows()
                        ),
                    )
                    .with_layer(id)
                    .with_help("the layer projects onto a single direction; was it truncated?"),
                );
            }
        }
    }
}

/// Whether every row of `w` is a scalar multiple of one common row.
fn numerical_rank_le_1(w: &sommelier_tensor::Tensor) -> bool {
    // Pivot: the row with the largest magnitude entry.
    let mut pivot = 0usize;
    let mut pivot_mag = 0.0f32;
    for r in 0..w.rows() {
        for c in 0..w.cols() {
            let m = w.get(r, c).abs();
            if m > pivot_mag {
                pivot_mag = m;
                pivot = r;
            }
        }
    }
    if pivot_mag == 0.0 {
        return true; // all-zero: rank 0 (reported separately as SOM006)
    }
    // Anchor column: the pivot row's largest entry, for a stable ratio.
    let mut anchor = 0usize;
    let mut anchor_mag = 0.0f32;
    for c in 0..w.cols() {
        let m = w.get(pivot, c).abs();
        if m > anchor_mag {
            anchor_mag = m;
            anchor = c;
        }
    }
    for r in 0..w.rows() {
        if r == pivot {
            continue;
        }
        let ratio = w.get(r, anchor) as f64 / w.get(pivot, anchor) as f64;
        for c in 0..w.cols() {
            let want = ratio * w.get(pivot, c) as f64;
            let got = w.get(r, c) as f64;
            let scale = want.abs().max(got.abs()).max(1e-30);
            if (want - got).abs() > RANK_REL_TOL * scale {
                return false;
            }
        }
    }
    true
}

/// `SOM082`: layers with no data path to the output. Subsumes chains
/// that `SOM001` cannot see — a dead branch whose members consume each
/// other is transitively dead even though only its tip is unconsumed.
fn check_reachability(
    model: &Model,
    analysis: &dataflow::ModelAnalysis,
    target: &str,
    out: &mut Vec<Diagnostic>,
) {
    for (id, fact) in analysis.facts.iter().enumerate() {
        if !fact.reachable {
            out.push(
                Diagnostic::warn(
                    codes::UNREACHABLE_SUBGRAPH,
                    target,
                    format!(
                        "layer '{}' has no data path to the output",
                        model.layers()[id].name
                    ),
                )
                .with_layer(id)
                .with_help("the subgraph burns compute without influencing any inference"),
            );
        }
    }
}

/// `SOM083`: activations whose entire pre-activation interval sits in a
/// saturation region — the layer is a constant for every analyzable
/// input, so downstream weights see no gradient-bearing signal.
fn check_saturation(
    model: &Model,
    analysis: &dataflow::ModelAnalysis,
    target: &str,
    out: &mut Vec<Diagnostic>,
) {
    for (id, layer) in model.layers().iter().enumerate() {
        if !analysis.facts[id].reachable {
            continue; // dead subgraphs are already reported whole
        }
        let Some(pre) = layer
            .inputs
            .first()
            .and_then(|i| analysis.facts[i.index()].value)
        else {
            continue;
        };
        let saturated: Option<&str> = match layer.op {
            Op::Relu if pre.hi <= 0.0 => Some("output is constant 0"),
            Op::Sigmoid if pre.lo >= SATURATION_MAGNITUDE => Some("output is pinned at 1"),
            Op::Sigmoid if pre.hi <= -SATURATION_MAGNITUDE => Some("output is pinned at 0"),
            Op::Tanh if pre.lo >= SATURATION_MAGNITUDE => Some("output is pinned at 1"),
            Op::Tanh if pre.hi <= -SATURATION_MAGNITUDE => Some("output is pinned at -1"),
            _ => None,
        };
        if let Some(effect) = saturated {
            out.push(
                Diagnostic::warn(
                    codes::SATURATED_ACTIVATION,
                    target,
                    format!(
                        "'{}' is saturated over pre-activation range [{:.3}, {:.3}]: {effect}",
                        layer.op.type_tag(),
                        pre.lo,
                        pre.hi
                    ),
                )
                .with_layer(id)
                .with_help("every analyzable input lands in the activation's flat region"),
            );
        }
    }
}

/// `SOM084`: the abstract output interval collapses to a point — the
/// model provably returns the same vector for every input in the
/// analyzed box.
fn check_constant_output(
    model: &Model,
    analysis: &dataflow::ModelAnalysis,
    target: &str,
    out: &mut Vec<Diagnostic>,
) {
    if model.num_layers() < 2 {
        return;
    }
    if let Some(iv) = analysis.output_value() {
        if iv.is_point() {
            out.push(
                Diagnostic::warn(
                    codes::CONSTANT_OUTPUT,
                    target,
                    format!(
                        "output is provably constant ({:.6}) for every input in \
                         [{:.0}, {:.0}]",
                        iv.lo,
                        dataflow::DEFAULT_INPUT.lo,
                        dataflow::DEFAULT_INPUT.hi
                    ),
                )
                .with_help("the model's prediction is input-independent"),
            );
        }
    }
}

/// `SOM086`: a model may declare its own cost in metadata
/// (`cost.flops`, `cost.param_bytes`, `cost.activation_bytes`); when it
/// does, the declaration must match the cost recomputed from the graph.
fn check_declared_cost(model: &Model, target: &str, out: &mut Vec<Diagnostic>) {
    let cost = model_cost(model);
    let recomputed = [
        ("cost.flops", cost.flops),
        ("cost.param_bytes", cost.param_bytes),
        ("cost.activation_bytes", cost.activation_bytes),
    ];
    for (meta_key, actual) in recomputed {
        let Some(declared) = model.metadata.get(meta_key) else {
            continue;
        };
        match declared.parse::<u64>() {
            Ok(v) if v == actual => {}
            Ok(v) => out.push(
                Diagnostic::warn(
                    codes::DECLARED_COST_DRIFT,
                    target,
                    format!("metadata declares {meta_key}={v} but the graph recomputes {actual}"),
                )
                .with_help("re-stamp the declared cost or investigate weight tampering"),
            ),
            Err(_) => out.push(
                Diagnostic::warn(
                    codes::DECLARED_COST_DRIFT,
                    target,
                    format!("metadata {meta_key}='{declared}' is not a valid cost counter"),
                )
                .with_help("declared costs must be unsigned integers"),
            ),
        }
    }
}

/// The repository ↔ semantic index ↔ resource index consistency join
/// (`SOM090`–`SOM092`).
pub struct CrossArtifactPass;

impl Pass for CrossArtifactPass {
    fn name(&self) -> &'static str {
        "cross-artifact"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        let fps: BTreeMap<&str, Fingerprint> = ctx
            .models
            .iter()
            .map(|(k, m)| (k.as_str(), Fingerprint::of_model(m)))
            .collect();
        cross_artifact_findings(ctx, &fps, out);
    }
}

/// Run the cross-artifact join with the stored models' fingerprints
/// precomputed (the audit engine already has them for its memo; the
/// sequential pass computes them on the spot).
pub fn cross_artifact_findings(
    ctx: &LintContext,
    fingerprints: &BTreeMap<&str, Fingerprint>,
    out: &mut Vec<Diagnostic>,
) {
    if let Some(semantic) = &ctx.semantic {
        // SOM090 — every index registration that resolves to a stored
        // model must carry that model's recomputed fingerprint. A
        // mismatch means the store was rewritten after indexing (or the
        // snapshot was tampered with): every cached pairwise analysis
        // keyed by the stale fingerprint is silently wrong.
        for (key, recorded) in semantic.by_key_audit() {
            let Some(recomputed) = fingerprints.get(key) else {
                continue; // dangling keys are SOM020 territory
            };
            if recorded != *recomputed {
                out.push(
                    Diagnostic::error(
                        codes::FINGERPRINT_DRIFT,
                        format!("model '{key}'"),
                        format!(
                            "semantic index records fingerprint {recorded} but the stored \
                             model recomputes to {recomputed}"
                        ),
                    )
                    .with_help("the model changed after indexing; reindex the repository"),
                );
            }
        }
        check_transitive_legs(semantic, out);
    }
    if let Some(resource) = &ctx.resource {
        // SOM091 — stored resource vectors must agree with vectors
        // recomputed from the models under the default execution
        // setting (the only setting the persisted index is built with).
        for (key, stored, removed) in resource.entries_audit() {
            if removed {
                continue;
            }
            let Some((_, model)) = ctx.models.iter().find(|(k, _)| k == key) else {
                continue;
            };
            let recomputed = sommelier_runtime::ResourceProfile::of(model);
            let stored_v = stored.as_vector();
            let recomputed_v = recomputed.as_vector();
            let dims = ["memory_mb", "gflops", "latency_ms"];
            for ((s, r), dim) in stored_v.iter().zip(&recomputed_v).zip(dims) {
                let scale = s.abs().max(r.abs()).max(1e-12);
                if (s - r).abs() > RESOURCE_REL_TOL * scale {
                    out.push(
                        Diagnostic::error(
                            codes::RESOURCE_DRIFT,
                            format!("model '{key}'"),
                            format!(
                                "resource index stores {dim}={s:.6} but the model \
                                 recomputes to {r:.6}"
                            ),
                        )
                        .with_help("the resource vector no longer describes the stored model"),
                    );
                }
            }
        }
    }
}

/// `SOM092` — a `Transitive` record was derived as `d(X,Y) + d(Y,Z)`
/// through a measured intermediary `Y`; whenever both legs are still
/// recorded as `Whole` measurements, the bound must lie inside the
/// (slack-widened) triangle interval `[|a-b|, a+b]` they span. A bound
/// outside that interval cannot have come from its own derivation.
fn check_transitive_legs(semantic: &sommelier_index::SemanticIndex, out: &mut Vec<Diagnostic>) {
    use sommelier_index::semantic::transitive_interval;
    use sommelier_index::CandidateKind;
    // Directed measured edges: (from, to) -> whole diff.
    let mut whole: BTreeMap<(&str, &str), f64> = BTreeMap::new();
    for (_, key, candidates) in semantic.entries_audit() {
        for c in candidates {
            if matches!(c.kind, CandidateKind::Whole) {
                whole.insert((key, c.key.as_str()), c.diff_bound);
            }
        }
    }
    let leg = |x: &str, y: &str| -> Option<f64> {
        whole
            .get(&(x, y))
            .or_else(|| whole.get(&(y, x)))
            .copied()
    };
    for (_, key, candidates) in semantic.entries_audit() {
        for c in candidates {
            let CandidateKind::Transitive { via } = &c.kind else {
                continue;
            };
            let (Some(a), Some(b)) = (leg(key, via), leg(via, c.key.as_str())) else {
                continue; // a leg was evicted or replaced; nothing to check
            };
            let (lo, hi) = transitive_interval(a, b);
            if c.diff_bound > hi * LEG_SLACK + 1e-9 || c.diff_bound < lo / LEG_SLACK - 1e-9 {
                out.push(
                    Diagnostic::error(
                        codes::TRANSITIVE_BOUND_VIOLATION,
                        format!("model '{key}'"),
                        format!(
                            "transitive bound {:.6} to '{}' via '{via}' falls outside the \
                             legs' triangle interval [{lo:.6}, {hi:.6}]",
                            c.diff_bound, c.key
                        ),
                    )
                    .with_help("the derived bound is inconsistent with its measured legs"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape, Tensor};

    fn ctx_with(models: Vec<(&str, Model)>) -> LintContext {
        let mut ctx = LintContext::new();
        for (key, model) in models {
            ctx.models.push((key.to_string(), model));
        }
        ctx
    }

    fn run(pass: &dyn Pass, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        pass.run(ctx, &mut out);
        out
    }

    fn mlp(name: &str, seed: u64) -> Model {
        let mut rng = Prng::seed_from_u64(seed);
        ModelBuilder::new(name, TaskKind::Other, Shape::vector(4))
            .dense(8, &mut rng)
            .relu()
            .dense(3, &mut rng)
            .softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn clean_model_is_deep_clean() {
        let ctx = ctx_with(vec![("ok", mlp("ok", 1))]);
        let diags = run(&DeepModelPass, &ctx);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn tampered_widths_are_caught_as_shape_drift() {
        let model = mlp("tampered", 2);
        // Simulate post-validation tampering via the serde path: widths
        // are private, so round-trip through JSON and patch the array.
        let json = serde_json::to_string(&model).unwrap();
        let patched = json.replace("\"widths\":[4,8,8,3,3]", "\"widths\":[4,8,9,3,3]");
        assert_ne!(json, patched, "fixture must actually patch the widths");
        let tampered: Model = serde_json::from_str(&patched).unwrap();
        let ctx = ctx_with(vec![("tampered", tampered)]);
        let diags = run(&DeepModelPass, &ctx);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::SHAPE_INCOMPATIBLE && d.layer == Some(2)),
            "{diags:?}"
        );
    }

    #[test]
    fn non_finite_weights_are_an_error() {
        let mut w = Tensor::zeros(4, 3);
        w.set(0, 0, f32::NAN);
        w.set(1, 1, f32::INFINITY);
        w.set(0, 1, 1.0);
        let model = ModelBuilder::new("nan", TaskKind::Other, Shape::vector(4))
            .dense_with(w, None)
            .softmax()
            .build()
            .unwrap();
        let ctx = ctx_with(vec![("nan", model)]);
        let diags = run(&DeepModelPass, &ctx);
        let hit = diags
            .iter()
            .find(|d| d.code == codes::NONFINITE_WEIGHTS)
            .expect("non-finite weights reported");
        assert_eq!(hit.severity, Severity::Error);
        assert!(hit.message.contains("2 non-finite"), "{}", hit.message);
    }

    #[test]
    fn transitively_dead_chains_are_unreachable() {
        let mut rng = Prng::seed_from_u64(5);
        let mut b = ModelBuilder::new("dead", TaskKind::Other, Shape::vector(4));
        b.dense(4, &mut rng);
        let trunk = b.cursor();
        b.relu();
        let live = b.cursor();
        b.goto(trunk);
        b.dense(2, &mut rng);
        b.relu(); // consumed by nothing; its producer is consumed by it
        b.goto(live);
        b.softmax();
        let model = b.build().unwrap();
        let ctx = ctx_with(vec![("dead", model)]);
        let diags = run(&DeepModelPass, &ctx);
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::UNREACHABLE_SUBGRAPH)
            .collect();
        // Both members of the dead chain — SOM001 would only flag the tip.
        assert_eq!(unreachable.len(), 2, "{diags:?}");
    }

    #[test]
    fn saturated_sigmoid_is_reported() {
        // Bias +100 pushes every pre-activation far beyond saturation.
        let w = Tensor::from_vec(4, 2, vec![0.1; 8]);
        let bias = Tensor::from_vec(1, 2, vec![100.0, 100.0]);
        let model = ModelBuilder::new("sat", TaskKind::Other, Shape::vector(4))
            .dense_with(w, Some(bias))
            .sigmoid()
            .build()
            .unwrap();
        let ctx = ctx_with(vec![("sat", model)]);
        let diags = run(&DeepModelPass, &ctx);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::SATURATED_ACTIVATION && d.layer == Some(2)),
            "{diags:?}"
        );
    }

    #[test]
    fn constant_output_is_reported() {
        let model = ModelBuilder::new("const", TaskKind::Other, Shape::vector(4))
            .dense_with(Tensor::zeros(4, 3), None)
            .softmax()
            .build()
            .unwrap();
        let ctx = ctx_with(vec![("const", model)]);
        let diags = run(&DeepModelPass, &ctx);
        assert!(
            diags.iter().any(|d| d.code == codes::CONSTANT_OUTPUT),
            "{diags:?}"
        );
    }

    #[test]
    fn rank_collapsed_dense_is_reported() {
        // Rows are exact multiples of the first: rank 1.
        let w = Tensor::from_vec(
            3,
            3,
            vec![1.0, 2.0, -1.0, 2.0, 4.0, -2.0, -0.5, -1.0, 0.5],
        );
        let model = ModelBuilder::new("rank1", TaskKind::Other, Shape::vector(3))
            .dense_with(w, None)
            .softmax()
            .build()
            .unwrap();
        let ctx = ctx_with(vec![("rank1", model)]);
        let diags = run(&DeepModelPass, &ctx);
        assert!(
            diags.iter().any(|d| d.code == codes::RANK_COLLAPSED),
            "{diags:?}"
        );
        // A healthy random dense must not trip the check.
        let clean = ctx_with(vec![("ok", mlp("ok", 7))]);
        assert!(run(&DeepModelPass, &clean)
            .iter()
            .all(|d| d.code != codes::RANK_COLLAPSED));
    }

    #[test]
    fn declared_cost_drift_is_reported() {
        let mut model = mlp("declared", 9);
        let actual = model_cost(&model).flops;
        model
            .metadata
            .insert("cost.flops".into(), (actual + 1).to_string());
        model
            .metadata
            .insert("cost.param_bytes".into(), "not-a-number".into());
        let ctx = ctx_with(vec![("declared", model)]);
        let diags = run(&DeepModelPass, &ctx);
        let drift: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::DECLARED_COST_DRIFT)
            .collect();
        assert_eq!(drift.len(), 2, "{diags:?}");
        // A correct declaration is silent.
        let mut honest = mlp("honest", 10);
        let cost = model_cost(&honest);
        honest.metadata.insert("cost.flops".into(), cost.flops.to_string());
        let ctx = ctx_with(vec![("honest", honest)]);
        assert!(run(&DeepModelPass, &ctx).is_empty());
    }

    #[test]
    fn fingerprint_drift_is_caught_by_the_cross_pass() {
        use sommelier_index::semantic::SemanticIndexConfig;
        use sommelier_index::{PairAnalyzer, SemanticIndex};
        struct NoPairs;
        impl PairAnalyzer for NoPairs {
            fn whole_diff(&self, _: &Model, _: &Model) -> Option<f64> {
                None
            }
        }
        let stored = mlp("drifted", 11);
        let indexed = mlp("drifted", 12); // same key, different weights
        let mut semantic = SemanticIndex::new(SemanticIndexConfig::default(), 1);
        semantic.insert(&indexed, &|_| None, &NoPairs);
        let mut ctx = ctx_with(vec![("drifted", stored)]);
        ctx.semantic = Some(semantic);
        let diags = run(&CrossArtifactPass, &ctx);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::FINGERPRINT_DRIFT
                    && d.severity == Severity::Error),
            "{diags:?}"
        );
    }
}
