//! `SOM05x` — snapshot stats-header lints.
//!
//! PR 2's parallel build pipeline writes a content-derived metrics
//! header ([`sommelier_index::persist::SnapshotStats`]) into every
//! snapshot: model count, candidate-record total, resource-entry count.
//! The header exists so audit tooling can sanity-check a snapshot
//! without deserializing the index bodies; this pass closes the loop by
//! validating the header *against* the bodies.
//!
//! Tolerance rules (the header evolves independently of the snapshot
//! format):
//!
//! * a snapshot with **no** header (pre-stats format) is an `Info`
//!   finding, never a failure;
//! * an **unknown** `stats_version` is a `Warn` and suppresses all
//!   field checks — a newer writer may have changed field semantics;
//! * **negative** counters and header/content **mismatches** are
//!   `Error`s: the header is a pure function of the contents, so any
//!   disagreement means corruption or hand-editing.

use crate::diagnostics::{codes, Diagnostic};
use crate::{LintContext, Pass};
use sommelier_index::persist::STATS_VERSION;

/// Validates the snapshot's stats header against the loaded indices.
pub struct SnapshotStatsPass;

impl Pass for SnapshotStatsPass {
    fn name(&self) -> &'static str {
        "snapshot-stats"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        // No snapshot at all → nothing to check.
        if ctx.semantic.is_none() && ctx.resource.is_none() {
            return;
        }
        let Some(stats) = &ctx.snapshot_stats else {
            out.push(Diagnostic::info(
                codes::MISSING_SNAPSHOT_STATS,
                "index-snapshot",
                "snapshot has no stats header (pre-stats format)",
            )
            .with_help("re-run `sommelier index` to refresh the snapshot"));
            return;
        };
        // Every version up to the current one is understood (version 1
        // is version 2 minus the epoch field); only a *newer* writer's
        // header has unknowable field semantics.
        if !(1..=STATS_VERSION).contains(&stats.stats_version) {
            out.push(Diagnostic::warn(
                codes::UNKNOWN_STATS_VERSION,
                "index-snapshot",
                format!(
                    "stats header declares version {} (this build knows {STATS_VERSION}); \
                     skipping field checks",
                    stats.stats_version
                ),
            ));
            return;
        }
        for (field, value) in [
            ("models", stats.models),
            ("candidate_records", stats.candidate_records),
            ("resource_entries", stats.resource_entries),
        ] {
            if value < 0 {
                out.push(Diagnostic::error(
                    codes::NEGATIVE_STATS_COUNTER,
                    "index-snapshot",
                    format!("stats counter '{field}' is negative ({value})"),
                ));
            }
        }
        if let Some(sem) = &ctx.semantic {
            let actual_models = sem.len() as i64;
            if stats.models != actual_models {
                out.push(Diagnostic::error(
                    codes::STATS_CONTENT_MISMATCH,
                    "index-snapshot",
                    format!(
                        "stats header records {} model(s) but the semantic index holds {}",
                        stats.models, actual_models
                    ),
                ));
            }
            let actual_records: i64 = sem
                .entries_audit()
                .iter()
                .map(|(_, _, r)| r.len() as i64)
                .sum();
            if stats.candidate_records != actual_records {
                out.push(Diagnostic::error(
                    codes::STATS_CONTENT_MISMATCH,
                    "index-snapshot",
                    format!(
                        "stats header records {} candidate record(s) but the semantic \
                         index holds {}",
                        stats.candidate_records, actual_records
                    ),
                ));
            }
        }
        if let Some(res) = &ctx.resource {
            let actual = res.len() as i64;
            if stats.resource_entries != actual {
                out.push(Diagnostic::error(
                    codes::STATS_CONTENT_MISMATCH,
                    "index-snapshot",
                    format!(
                        "stats header records {} resource entrie(s) but the resource \
                         index holds {}",
                        stats.resource_entries, actual
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use sommelier_index::persist::SnapshotStats;
    use sommelier_index::semantic::SemanticIndexConfig;
    use sommelier_index::lsh::LshConfig;
    use sommelier_index::{ResourceIndex, SemanticIndex};

    fn run(ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        SnapshotStatsPass.run(ctx, &mut out);
        out
    }

    fn ctx_with_indices() -> LintContext {
        let mut ctx = LintContext::new();
        ctx.semantic = Some(SemanticIndex::new(SemanticIndexConfig::default(), 1));
        ctx.resource = Some(ResourceIndex::new(LshConfig::default(), 1));
        ctx
    }

    #[test]
    fn no_snapshot_is_silent() {
        assert!(run(&LintContext::new()).is_empty());
    }

    #[test]
    fn missing_header_is_an_info_not_a_failure() {
        let ctx = ctx_with_indices();
        let out = run(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::MISSING_SNAPSHOT_STATS);
        assert_eq!(out[0].severity, Severity::Info);
    }

    #[test]
    fn consistent_header_lints_clean() {
        let mut ctx = ctx_with_indices();
        ctx.snapshot_stats = Some(SnapshotStats::of(
            ctx.semantic.as_ref().unwrap(),
            ctx.resource.as_ref().unwrap(),
            0,
        ));
        assert!(run(&ctx).is_empty());
    }

    #[test]
    fn unknown_version_warns_and_skips_field_checks() {
        let mut ctx = ctx_with_indices();
        ctx.snapshot_stats = Some(SnapshotStats {
            stats_version: STATS_VERSION + 7,
            // Wildly wrong — but must NOT be reported under an unknown
            // version, whose field semantics we cannot assume.
            models: -5,
            candidate_records: 999,
            resource_entries: -1,
            epoch: None,
        });
        let out = run(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::UNKNOWN_STATS_VERSION);
        assert_eq!(out[0].severity, Severity::Warn);
    }

    #[test]
    fn negative_counters_are_errors() {
        let mut ctx = ctx_with_indices();
        ctx.snapshot_stats = Some(SnapshotStats {
            stats_version: STATS_VERSION,
            models: -1,
            candidate_records: 0,
            resource_entries: 0,
            epoch: Some(1),
        });
        let out = run(&ctx);
        assert!(out
            .iter()
            .any(|d| d.code == codes::NEGATIVE_STATS_COUNTER && d.severity == Severity::Error));
    }

    #[test]
    fn content_mismatch_is_an_error() {
        let mut ctx = ctx_with_indices();
        ctx.snapshot_stats = Some(SnapshotStats {
            stats_version: STATS_VERSION,
            models: 12,
            candidate_records: 0,
            resource_entries: 0,
            epoch: Some(1),
        });
        let out = run(&ctx);
        assert!(out
            .iter()
            .any(|d| d.code == codes::STATS_CONTENT_MISMATCH && d.severity == Severity::Error));
    }
}
