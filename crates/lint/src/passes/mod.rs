//! Built-in lint passes, grouped by what they look at.
//!
//! * [`model`] — pure-graph analyses of stored models (`SOM00x`);
//! * [`index`] — cross-checks between the repository and the persisted
//!   semantic/resource indices (`SOM02x`);
//! * [`plan`] — static analyses of parsed query ASTs (`SOM04x`);
//! * [`stats`] — snapshot stats-header validation (`SOM050`–`SOM053`);
//! * [`binary`] — binary (`.somb`) snapshot-image validation: header
//!   and section CRCs, slab shape, non-finite lanes (`SOM054`–`SOM056`);
//! * [`epoch`] — snapshot publication-epoch validation (`SOM06x`);
//! * [`store`] — store-directory hygiene: quarantined artifacts,
//!   orphaned temp files, non-canonical file names (`SOM07x`);
//! * [`deep`] — the abstract-interpretation dataflow family and the
//!   cross-artifact consistency join (`SOM08x`/`SOM09x`).
//!
//! Passes only read the [`crate::LintContext`]; they never execute a
//! model and never mutate an index.

pub mod binary;
pub mod deep;
pub mod epoch;
pub mod index;
pub mod model;
pub mod plan;
pub mod stats;
pub mod store;
