//! Repository & index invariant lints (`SOM020`–`SOM026`).
//!
//! The persisted indices are derived data: every key they mention must
//! exist in the repository, candidate lists must keep the descending
//! score order the query engine's early-exit relies on, scores must
//! agree with their recorded difference bounds, LSH buckets must point
//! at live vector slots, directly measured bounds must be mutually
//! consistent, and the snapshot must not predate the artifacts it
//! summarizes. Each of these is checked here without touching a single
//! weight.

use crate::diagnostics::{codes, Diagnostic};
use crate::{LintContext, Pass};
use sommelier_index::CandidateKind;
use std::collections::{HashMap, HashSet};

const SEMANTIC: &str = "semantic-index";
const RESOURCE: &str = "resource-index";

/// Score tolerance when comparing recorded scores against the
/// `score = max(0, 1 − diff_bound)` invariant. Floats round-trip the
/// snapshot exactly, so anything beyond rounding noise is corruption.
const SCORE_EPS: f64 = 1e-9;

/// Referential and ordering invariants of both indices: dangling keys
/// (`SOM020`), unsorted candidate lists (`SOM021`), LSH buckets pointing
/// at missing slots (`SOM022`), score/bound disagreement (`SOM025`),
/// indexed models without a live resource profile (`SOM026`), and LSH
/// bucket ids left dangling at tombstoned slots (`SOM057` — incremental
/// removal purges bucket ids eagerly, so a survivor means a removal
/// path skipped the purge).
pub struct IndexIntegrityPass;

impl Pass for IndexIntegrityPass {
    fn name(&self) -> &'static str {
        "index-integrity"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        let stored: HashSet<&str> = ctx.models.iter().map(|(k, _)| k.as_str()).collect();
        if let Some(semantic) = &ctx.semantic {
            for (key, _) in semantic.by_key_audit() {
                if !stored.contains(key) {
                    out.push(
                        Diagnostic::error(
                            codes::DANGLING_KEY,
                            SEMANTIC,
                            format!("indexed key '{key}' has no stored model"),
                        )
                        .with_help("re-run `sommelier index` to rebuild from the repository"),
                    );
                }
            }
            for (_, key, candidates) in semantic.entries_audit() {
                if candidates
                    .windows(2)
                    .any(|w| w[1].score > w[0].score + SCORE_EPS)
                {
                    out.push(Diagnostic::error(
                        codes::UNSORTED_CANDIDATES,
                        SEMANTIC,
                        format!("candidate list of '{key}' is not in descending score order"),
                    ));
                }
                for c in candidates {
                    let expected = (1.0 - c.diff_bound).max(0.0);
                    if (c.score - expected).abs() > SCORE_EPS {
                        out.push(Diagnostic::error(
                            codes::SCORE_MISMATCH,
                            SEMANTIC,
                            format!(
                                "candidate '{}' of '{key}' records score {} but its diff bound \
                                 {} implies {expected}",
                                c.key, c.score, c.diff_bound
                            ),
                        ));
                    }
                    let mut referenced: Vec<&str> = Vec::new();
                    match &c.kind {
                        // A synthesized candidate's key names the variant,
                        // not a stored model; only the donor must exist.
                        CandidateKind::Synthesized { donor } => referenced.push(donor),
                        CandidateKind::Transitive { via } => {
                            referenced.push(c.key.as_str());
                            referenced.push(via);
                        }
                        CandidateKind::Whole => referenced.push(c.key.as_str()),
                    }
                    for name in referenced {
                        if !stored.contains(name) {
                            out.push(Diagnostic::error(
                                codes::DANGLING_KEY,
                                SEMANTIC,
                                format!(
                                    "candidate list of '{key}' references '{name}', which has \
                                     no stored model"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        if let Some(resource) = &ctx.resource {
            for (key, _, removed) in resource.entries_audit() {
                if !removed && !stored.contains(key) {
                    out.push(
                        Diagnostic::error(
                            codes::DANGLING_KEY,
                            RESOURCE,
                            format!("profiled key '{key}' has no stored model"),
                        )
                        .with_help("re-run `sommelier index` to rebuild from the repository"),
                    );
                }
            }
            let slots = resource.slot_count();
            let removed_flags: Vec<bool> = resource
                .entries_audit()
                .iter()
                .map(|(_, _, removed)| *removed)
                .collect();
            for id in resource.lsh().stored_ids() {
                if id >= slots {
                    out.push(Diagnostic::error(
                        codes::LSH_DANGLING_ID,
                        RESOURCE,
                        format!("LSH bucket references vector slot {id}, but only {slots} exist"),
                    ));
                } else if removed_flags[id] {
                    out.push(
                        Diagnostic::error(
                            codes::LSH_TOMBSTONED_ID,
                            RESOURCE,
                            format!(
                                "LSH bucket id {id} dangles from the resource slab: slot {id} is \
                                 tombstoned"
                            ),
                        )
                        .with_help(
                            "removal must purge LSH bucket ids; re-run `sommelier index` to \
                             rebuild the snapshot",
                        ),
                    );
                }
            }
        }
        if let (Some(semantic), Some(resource)) = (&ctx.semantic, &ctx.resource) {
            for key in semantic.keys() {
                if stored.contains(key.as_str()) && resource.profile_of(key).is_none() {
                    out.push(
                        Diagnostic::warn(
                            codes::MISSING_PROFILE,
                            RESOURCE,
                            format!("'{key}' is semantically indexed but has no resource profile"),
                        )
                        .with_help("resource-constrained queries will never return this model"),
                    );
                }
            }
        }
    }
}

/// `SOM023`: transitive consistency of directly measured bounds.
///
/// Only `Whole` (directly measured) edges participate: transitive and
/// synthesized bounds tighten asynchronously as more pairs are measured,
/// so comparing them against each other produces false alarms on healthy
/// indices. Even measured bounds use a *relative* QoR normalization, so
/// the strict triangle inequality need not hold — we flag only gross
/// violations beyond [`TrianglePass::SLACK`]×.
pub struct TrianglePass;

impl TrianglePass {
    /// Multiplicative slack on the triangle bound.
    pub const SLACK: f64 = 1.5;
}

impl Pass for TrianglePass {
    fn name(&self) -> &'static str {
        "index-triangle"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        let Some(semantic) = &ctx.semantic else { return };
        // All directly measured edges, keyed both ways.
        let mut whole: HashMap<(&str, &str), f64> = HashMap::new();
        for (_, key, candidates) in semantic.entries_audit() {
            for c in candidates {
                if matches!(c.kind, CandidateKind::Whole) {
                    whole.insert((key, c.key.as_str()), c.diff_bound);
                    whole.insert((c.key.as_str(), key), c.diff_bound);
                }
            }
        }
        for (_, x, candidates) in semantic.entries_audit() {
            let edges: Vec<(&str, f64)> = candidates
                .iter()
                .filter(|c| matches!(c.kind, CandidateKind::Whole))
                .map(|c| (c.key.as_str(), c.diff_bound))
                .collect();
            for (i, &(y, dxy)) in edges.iter().enumerate() {
                for &(z, dxz) in &edges[i + 1..] {
                    let Some(&dyz) = whole.get(&(y, z)) else {
                        continue;
                    };
                    // The longest side against the detour through the
                    // opposite vertex.
                    let (long, a, b) = if dxz >= dxy { (dxz, dxy, dyz) } else { (dxy, dxz, dyz) };
                    if long > Self::SLACK * (a + b) + SCORE_EPS {
                        out.push(
                            Diagnostic::error(
                                codes::TRIANGLE_VIOLATION,
                                SEMANTIC,
                                format!(
                                    "measured bounds among '{x}', '{y}', '{z}' are inconsistent: \
                                     {long} exceeds {slack}x the detour {a} + {b}",
                                    slack = Self::SLACK
                                ),
                            )
                            .with_help("one of the three measurements is likely corrupt"),
                        );
                    }
                }
            }
        }
    }
}

/// `SOM024`: the snapshot must not be older than any stored model file.
/// A model republished after the last `sommelier index` run is invisible
/// (or stale) to every query until the indices are rebuilt.
pub struct FreshnessPass;

impl Pass for FreshnessPass {
    fn name(&self) -> &'static str {
        "index-freshness"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        let Some(index_mtime) = ctx.index_mtime else { return };
        let newer: Vec<&str> = ctx
            .model_mtimes
            .iter()
            .filter(|(_, mtime)| *mtime > index_mtime)
            .map(|(key, _)| key.as_str())
            .collect();
        if let Some(example) = newer.first() {
            out.push(
                Diagnostic::warn(
                    codes::STALE_INDEX,
                    "index-snapshot",
                    format!(
                        "{} model file(s) are newer than the index snapshot (e.g. '{example}')",
                        newer.len()
                    ),
                )
                .with_help("re-run `sommelier index` to refresh the snapshot"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;
    use sommelier_graph::{Model, ModelBuilder, TaskKind};
    use sommelier_index::{lsh::LshConfig, ResourceIndex, SemanticIndex};
    use sommelier_runtime::ResourceProfile;
    use sommelier_tensor::{Prng, Shape};
    use std::time::{Duration, SystemTime};

    fn model(name: &str, seed: u64) -> Model {
        let mut rng = Prng::seed_from_u64(seed);
        ModelBuilder::new(name, TaskKind::Other, Shape::vector(4))
            .dense(4, &mut rng)
            .relu()
            .dense(3, &mut rng)
            .softmax()
            .build()
            .unwrap()
    }

    fn run(pass: &dyn Pass, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        pass.run(ctx, &mut out);
        out
    }

    /// A handcrafted corrupt semantic index: `ghost` is indexed but not
    /// stored, `m-a`'s candidate list is out of order, references the
    /// missing `ghost`, and records a score that disagrees with its
    /// diff bound.
    fn corrupt_semantic_json() -> String {
        r#"{
            "config": {"sample_size": 5, "segments": true, "max_candidates": 64},
            "entries": {
                "1": {"key": "m-a", "candidates": [
                    {"key": "ghost", "diff_bound": 0.5, "score": 0.5, "kind": "Whole"},
                    {"key": "m-b", "diff_bound": 0.2, "score": 0.9, "kind": "Whole"}
                ]},
                "2": {"key": "ghost", "candidates": []}
            },
            "by_key": {"m-a": 1, "ghost": 2},
            "order": ["m-a", "ghost"],
            "seed_state": 0
        }"#
        .to_string()
    }

    fn ctx_with_models(names: &[&str]) -> LintContext {
        let mut ctx = LintContext::new();
        for (i, name) in names.iter().enumerate() {
            ctx.models.push((name.to_string(), model(name, i as u64)));
        }
        ctx
    }

    #[test]
    fn consistent_index_lints_clean() {
        let mut ctx = ctx_with_models(&["m-a", "m-b"]);
        let semantic: SemanticIndex = serde_json::from_str(
            r#"{
                "config": {"sample_size": 5, "segments": true, "max_candidates": 64},
                "entries": {
                    "1": {"key": "m-a", "candidates": [
                        {"key": "m-b", "diff_bound": 0.1, "score": 0.9, "kind": "Whole"}
                    ]},
                    "2": {"key": "m-b", "candidates": [
                        {"key": "m-a", "diff_bound": 0.1, "score": 0.9, "kind": "Whole"}
                    ]}
                },
                "by_key": {"m-a": 1, "m-b": 2},
                "order": ["m-a", "m-b"],
                "seed_state": 0
            }"#,
        )
        .expect("fixture parses");
        let mut resource = ResourceIndex::new(LshConfig { bits: 2, tables: 1 }, 1);
        for (key, model) in &ctx.models {
            resource.insert(key.clone(), ResourceProfile::of(model));
        }
        ctx.semantic = Some(semantic);
        ctx.resource = Some(resource);
        let diags = run(&IndexIntegrityPass, &ctx);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(run(&TrianglePass, &ctx).is_empty());
    }

    #[test]
    fn corrupt_semantic_index_reports_dangling_unsorted_and_mismatch() {
        let mut ctx = ctx_with_models(&["m-a", "m-b"]);
        ctx.semantic = Some(serde_json::from_str(&corrupt_semantic_json()).expect("parses"));
        let diags = run(&IndexIntegrityPass, &ctx);
        // `ghost` dangles twice: as an indexed key and as a candidate.
        assert!(
            diags
                .iter()
                .filter(|d| d.code == codes::DANGLING_KEY)
                .count()
                >= 2,
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.code == codes::UNSORTED_CANDIDATES), "{diags:?}");
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::SCORE_MISMATCH && d.message.contains("m-b")),
            "{diags:?}"
        );
        assert_eq!(
            diags.iter().map(|d| d.severity).max(),
            Some(Severity::Error)
        );
    }

    #[test]
    fn transitive_via_and_synthesized_donor_must_exist() {
        let mut ctx = ctx_with_models(&["m-a", "m-b"]);
        ctx.semantic = Some(
            serde_json::from_str(
                r#"{
                    "config": {"sample_size": 5, "segments": true, "max_candidates": 64},
                    "entries": {
                        "1": {"key": "m-a", "candidates": [
                            {"key": "m-b", "diff_bound": 0.1, "score": 0.9,
                             "kind": {"Transitive": {"via": "gone"}}},
                            {"key": "m-a+missing", "diff_bound": 0.3, "score": 0.7,
                             "kind": {"Synthesized": {"donor": "missing"}}}
                        ]}
                    },
                    "by_key": {"m-a": 1},
                    "order": ["m-a"],
                    "seed_state": 0
                }"#,
            )
            .expect("fixture parses"),
        );
        let diags = run(&IndexIntegrityPass, &ctx);
        let dangling: Vec<&str> = diags
            .iter()
            .filter(|d| d.code == codes::DANGLING_KEY)
            .map(|d| d.message.as_str())
            .collect();
        assert!(dangling.iter().any(|m| m.contains("'gone'")), "{dangling:?}");
        assert!(dangling.iter().any(|m| m.contains("'missing'")), "{dangling:?}");
        // The synthesized candidate's own key is a variant name, not a
        // stored model; it must NOT be reported.
        assert!(!dangling.iter().any(|m| m.contains("m-a+missing")), "{dangling:?}");
    }

    #[test]
    fn lsh_bucket_pointing_past_the_slots_is_reported() {
        let mut ctx = ctx_with_models(&["m-a"]);
        ctx.resource = Some(
            serde_json::from_str(
                r#"{
                    "entries": [["m-a", {"memory_mb": 1.0, "gflops": 1.0, "latency_ms": 1.0}]],
                    "removed": [false],
                    "lsh": {
                        "dim": 3,
                        "config": {"bits": 2, "tables": 1},
                        "planes": [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]],
                        "buckets": [{"3": [0, 7]}],
                        "len": 2
                    },
                    "exhaustive": false
                }"#,
            )
            .expect("fixture parses"),
        );
        let diags = run(&IndexIntegrityPass, &ctx);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::LSH_DANGLING_ID && d.message.contains("slot 7")),
            "{diags:?}"
        );
    }

    #[test]
    fn lsh_bucket_pointing_at_a_tombstoned_slot_is_reported() {
        let mut ctx = ctx_with_models(&["m-a", "m-b"]);
        // Slot 1 is tombstoned but an LSH bucket still lists id 1: the
        // removal path failed to purge the bucket (SOM057).
        ctx.resource = Some(
            serde_json::from_str(
                r#"{
                    "entries": [
                        ["m-a", {"memory_mb": 1.0, "gflops": 1.0, "latency_ms": 1.0}],
                        ["m-b", {"memory_mb": 2.0, "gflops": 2.0, "latency_ms": 2.0}]
                    ],
                    "removed": [false, true],
                    "lsh": {
                        "dim": 3,
                        "config": {"bits": 2, "tables": 1},
                        "planes": [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]],
                        "buckets": [{"3": [0, 1]}],
                        "len": 2
                    },
                    "exhaustive": false
                }"#,
            )
            .expect("fixture parses"),
        );
        let diags = run(&IndexIntegrityPass, &ctx);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::LSH_TOMBSTONED_ID && d.message.contains("slot 1")),
            "{diags:?}"
        );
        assert!(
            !diags.iter().any(|d| d.code == codes::LSH_DANGLING_ID),
            "both ids point at existing slots: {diags:?}"
        );
    }

    #[test]
    fn missing_resource_profile_is_reported() {
        let mut ctx = ctx_with_models(&["m-a"]);
        ctx.semantic = Some(
            serde_json::from_str(
                r#"{
                    "config": {"sample_size": 5, "segments": true, "max_candidates": 64},
                    "entries": {"1": {"key": "m-a", "candidates": []}},
                    "by_key": {"m-a": 1},
                    "order": ["m-a"],
                    "seed_state": 0
                }"#,
            )
            .expect("fixture parses"),
        );
        ctx.resource = Some(ResourceIndex::new(LshConfig { bits: 2, tables: 1 }, 1));
        let diags = run(&IndexIntegrityPass, &ctx);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::MISSING_PROFILE && d.severity == Severity::Warn),
            "{diags:?}"
        );
    }

    #[test]
    fn gross_triangle_violation_among_measured_bounds_is_reported() {
        let mut ctx = ctx_with_models(&["m-a", "m-b", "m-c"]);
        ctx.semantic = Some(
            serde_json::from_str(
                r#"{
                    "config": {"sample_size": 5, "segments": true, "max_candidates": 64},
                    "entries": {
                        "1": {"key": "m-a", "candidates": [
                            {"key": "m-b", "diff_bound": 0.1, "score": 0.9, "kind": "Whole"},
                            {"key": "m-c", "diff_bound": 5.0, "score": 0.0, "kind": "Whole"}
                        ]},
                        "2": {"key": "m-b", "candidates": [
                            {"key": "m-c", "diff_bound": 0.1, "score": 0.9, "kind": "Whole"}
                        ]}
                    },
                    "by_key": {"m-a": 1, "m-b": 2},
                    "order": ["m-a", "m-b"],
                    "seed_state": 0
                }"#,
            )
            .expect("fixture parses"),
        );
        let diags = run(&TrianglePass, &ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::TRIANGLE_VIOLATION);
    }

    #[test]
    fn transitive_bounds_do_not_participate_in_the_triangle_check() {
        let mut ctx = ctx_with_models(&["m-a", "m-b", "m-c"]);
        ctx.semantic = Some(
            serde_json::from_str(
                r#"{
                    "config": {"sample_size": 5, "segments": true, "max_candidates": 64},
                    "entries": {
                        "1": {"key": "m-a", "candidates": [
                            {"key": "m-b", "diff_bound": 0.1, "score": 0.9, "kind": "Whole"},
                            {"key": "m-c", "diff_bound": 5.0, "score": 0.0,
                             "kind": {"Transitive": {"via": "m-b"}}}
                        ]},
                        "2": {"key": "m-b", "candidates": [
                            {"key": "m-c", "diff_bound": 0.1, "score": 0.9, "kind": "Whole"}
                        ]}
                    },
                    "by_key": {"m-a": 1, "m-b": 2},
                    "order": ["m-a", "m-b"],
                    "seed_state": 0
                }"#,
            )
            .expect("fixture parses"),
        );
        assert!(run(&TrianglePass, &ctx).is_empty());
    }

    #[test]
    fn stale_snapshot_is_reported_once_with_a_count() {
        let t0 = SystemTime::UNIX_EPOCH + Duration::from_secs(1_000_000);
        let mut ctx = LintContext::new();
        ctx.index_mtime = Some(t0);
        ctx.model_mtimes.push(("old".into(), t0 - Duration::from_secs(60)));
        ctx.model_mtimes.push(("new-a".into(), t0 + Duration::from_secs(60)));
        ctx.model_mtimes.push(("new-b".into(), t0 + Duration::from_secs(120)));
        let diags = run(&FreshnessPass, &ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::STALE_INDEX);
        assert!(diags[0].message.contains("2 model file(s)"), "{}", diags[0].message);
    }

    #[test]
    fn fresh_snapshot_is_clean() {
        let t0 = SystemTime::UNIX_EPOCH + Duration::from_secs(1_000_000);
        let mut ctx = LintContext::new();
        ctx.index_mtime = Some(t0);
        ctx.model_mtimes.push(("old".into(), t0 - Duration::from_secs(60)));
        assert!(run(&FreshnessPass, &ctx).is_empty());
    }
}
