//! `SOM06x` — snapshot publication-epoch lints.
//!
//! PR 4's lock-free query path publishes every index mutation as an
//! immutable snapshot stamped with a monotonically increasing epoch; the
//! epoch is persisted in the stats header so a restarted engine resumes
//! the sequence instead of restarting it (which would let a stale plan
//! cache serve results from a different index under a recycled key).
//! This pass validates the persisted epoch and the self-consistency of
//! the snapshot it stamps:
//!
//! * `SOM060` — the epoch is negative, or the snapshot holds models but
//!   claims epoch 0: every registration bumps the epoch, so a populated
//!   snapshot at epoch 0 means the header was hand-edited or the
//!   sequence regressed;
//! * `SOM061` — the header's shape disagrees with its declared version:
//!   a version-2 header without an epoch field is an error, a version-1
//!   header (pre-epoch format) is merely noted;
//! * `SOM062` — a candidate list references a fingerprint key that is
//!   not registered in the semantic index itself. Distinct from
//!   `SOM020` (which checks candidates against the *repository*): a
//!   model can be stored on disk yet absent from the published
//!   snapshot — serving it would leak an unpublished model through the
//!   lock-free read path.
//!
//! As in the stats pass, an unknown (newer) `stats_version` suppresses
//! the header checks — its field semantics are unknowable here.

use crate::diagnostics::{codes, Diagnostic};
use crate::{LintContext, Pass};
use sommelier_index::CandidateKind;
use sommelier_index::persist::STATS_VERSION;

/// Validates the snapshot's publication epoch and epoch-stamped contents.
pub struct SnapshotEpochPass;

impl Pass for SnapshotEpochPass {
    fn name(&self) -> &'static str {
        "snapshot-epoch"
    }

    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        if let Some(stats) = &ctx.snapshot_stats {
            // Unknown versions are the stats pass's SOM051; field checks
            // would be guesses.
            if (1..=STATS_VERSION).contains(&stats.stats_version) {
                match stats.epoch {
                    Some(e) if e < 0 => out.push(Diagnostic::error(
                        codes::EPOCH_REGRESSION,
                        "index-snapshot",
                        format!("publication epoch is negative ({e})"),
                    )),
                    Some(0) if stats.models > 0 => out.push(
                        Diagnostic::error(
                            codes::EPOCH_REGRESSION,
                            "index-snapshot",
                            format!(
                                "snapshot holds {} model(s) but claims publication epoch 0; \
                                 every registration bumps the epoch",
                                stats.models
                            ),
                        )
                        .with_help("re-run `sommelier index` to refresh the snapshot"),
                    ),
                    Some(_) => {}
                    None if stats.stats_version >= 2 => out.push(Diagnostic::error(
                        codes::EPOCH_HEADER_MISMATCH,
                        "index-snapshot",
                        format!(
                            "stats header declares version {} but carries no epoch field",
                            stats.stats_version
                        ),
                    )),
                    None => out.push(Diagnostic::info(
                        codes::EPOCH_HEADER_MISMATCH,
                        "index-snapshot",
                        "version-1 stats header predates epoch stamping",
                    )),
                }
            }
        }
        // Candidates must only reference keys the snapshot itself
        // publishes, or a pinned reader could hand out a key no epoch
        // ever registered.
        if let Some(semantic) = &ctx.semantic {
            for (_, key, candidates) in semantic.entries_audit() {
                for c in candidates {
                    let mut referenced = vec![];
                    match &c.kind {
                        CandidateKind::Whole => referenced.push(c.key.as_str()),
                        CandidateKind::Transitive { via } => {
                            referenced.push(c.key.as_str());
                            referenced.push(via.as_str());
                        }
                        CandidateKind::Synthesized { donor } => referenced.push(donor.as_str()),
                    }
                    for name in referenced {
                        if !semantic.contains(name) {
                            out.push(Diagnostic::error(
                                codes::UNREGISTERED_CANDIDATE,
                                "semantic-index",
                                format!(
                                    "candidate list of '{key}' references '{name}', which is \
                                     not registered in this snapshot"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use sommelier_index::persist::SnapshotStats;
    use sommelier_index::SemanticIndex;

    fn run(ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        SnapshotEpochPass.run(ctx, &mut out);
        out
    }

    fn stats(version: u32, models: i64, epoch: Option<i64>) -> SnapshotStats {
        SnapshotStats {
            stats_version: version,
            models,
            candidate_records: 0,
            resource_entries: 0,
            epoch,
        }
    }

    /// `m-a` and `m-b` registered, `m-a`'s candidates reference `m-b`
    /// plus three keys this snapshot never published.
    fn semantic_with_unregistered_refs() -> SemanticIndex {
        serde_json::from_str(
            r#"{
                "config": {"sample_size": 5, "segments": true, "max_candidates": 64},
                "entries": {
                    "1": {"key": "m-a", "candidates": [
                        {"key": "m-b", "diff_bound": 0.1, "score": 0.9, "kind": "Whole"},
                        {"key": "phantom", "diff_bound": 0.2, "score": 0.8, "kind": "Whole"},
                        {"key": "m-b", "diff_bound": 0.3, "score": 0.7,
                         "kind": {"Transitive": {"via": "gone"}}},
                        {"key": "m-a", "diff_bound": 0.4, "score": 0.6,
                         "kind": {"Synthesized": {"donor": "missing"}}}
                    ]},
                    "2": {"key": "m-b", "candidates": []}
                },
                "by_key": {"m-a": 1, "m-b": 2},
                "order": ["m-a", "m-b"],
                "seed_state": 0
            }"#,
        )
        .expect("fixture parses")
    }

    #[test]
    fn empty_context_is_silent() {
        assert!(run(&LintContext::new()).is_empty());
    }

    #[test]
    fn well_formed_header_lints_clean() {
        let mut ctx = LintContext::new();
        ctx.snapshot_stats = Some(stats(STATS_VERSION, 3, Some(3)));
        assert!(run(&ctx).is_empty());
        // An empty snapshot legitimately sits at epoch 0.
        ctx.snapshot_stats = Some(stats(STATS_VERSION, 0, Some(0)));
        assert!(run(&ctx).is_empty());
    }

    #[test]
    fn negative_or_regressed_epoch_is_an_error() {
        let mut ctx = LintContext::new();
        ctx.snapshot_stats = Some(stats(STATS_VERSION, 0, Some(-2)));
        let out = run(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::EPOCH_REGRESSION);
        assert_eq!(out[0].severity, Severity::Error);

        // Populated snapshot at epoch 0: registrations happened without
        // publications.
        ctx.snapshot_stats = Some(stats(STATS_VERSION, 5, Some(0)));
        let out = run(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::EPOCH_REGRESSION);
    }

    #[test]
    fn header_version_must_match_epoch_presence() {
        let mut ctx = LintContext::new();
        ctx.snapshot_stats = Some(stats(2, 1, None));
        let out = run(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::EPOCH_HEADER_MISMATCH);
        assert_eq!(out[0].severity, Severity::Error);

        // A version-1 header never carried an epoch — note, don't fail.
        ctx.snapshot_stats = Some(stats(1, 1, None));
        let out = run(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::EPOCH_HEADER_MISMATCH);
        assert_eq!(out[0].severity, Severity::Info);
    }

    #[test]
    fn unknown_versions_skip_the_header_checks() {
        let mut ctx = LintContext::new();
        ctx.snapshot_stats = Some(stats(STATS_VERSION + 9, 5, Some(-1)));
        assert!(run(&ctx).is_empty());
    }

    #[test]
    fn unregistered_candidate_references_are_errors() {
        let mut ctx = LintContext::new();
        // `phantom` IS stored in the repository — SOM020 would stay
        // silent about it; the snapshot still never registered it.
        ctx.models.push(("phantom".into(), {
            use sommelier_graph::builder::ModelBuilder;
            use sommelier_graph::TaskKind;
            use sommelier_tensor::{Prng, Shape};
            let mut rng = Prng::seed_from_u64(1);
            ModelBuilder::new("phantom", TaskKind::Other, Shape::vector(4))
                .dense(3, &mut rng)
                .softmax()
                .build()
                .unwrap()
        }));
        ctx.semantic = Some(semantic_with_unregistered_refs());
        let out = run(&ctx);
        let targets: Vec<&str> = out
            .iter()
            .filter(|d| d.code == codes::UNREGISTERED_CANDIDATE)
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(targets.len(), 3, "{targets:?}");
        for name in ["'phantom'", "'gone'", "'missing'"] {
            assert!(
                targets.iter().any(|m| m.contains(name)),
                "missing {name}: {targets:?}"
            );
        }
        assert!(out.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn registered_candidates_lint_clean() {
        let mut ctx = LintContext::new();
        ctx.semantic = Some(
            serde_json::from_str(
                r#"{
                    "config": {"sample_size": 5, "segments": true, "max_candidates": 64},
                    "entries": {
                        "1": {"key": "m-a", "candidates": [
                            {"key": "m-b", "diff_bound": 0.1, "score": 0.9, "kind": "Whole"}
                        ]},
                        "2": {"key": "m-b", "candidates": []}
                    },
                    "by_key": {"m-a": 1, "m-b": 2},
                    "order": ["m-a", "m-b"],
                    "seed_state": 0
                }"#,
            )
            .expect("fixture parses"),
        );
        assert!(run(&ctx).is_empty());
    }
}
