//! The deep-audit engine: every lint pass plus the dataflow and
//! cross-artifact analyses, fanned out over a thread pool and memoized
//! by model fingerprint.
//!
//! Per-model work (the structural graph lints, the serde round-trip,
//! and the full abstract interpretation) is a pure function of the
//! model's content, so results are cached under
//! [`Fingerprint::of_model`]: a warm re-audit only re-analyzes models
//! whose bytes changed and answers the rest from the memo — the same
//! incremental contract the pairwise-analysis cache gives index
//! rebuilds. Global work (index joins, snapshot headers, store
//! hygiene, the cross-artifact consistency pass) runs once per audit.
//!
//! Determinism: `par_map` returns results in input order and the final
//! [`LintReport`] sorts and dedups, so the JSON report is
//! byte-identical at any `--jobs` value.
//!
//! Each run publishes `audit.*` counters to
//! [`sommelier_runtime::metrics::counters`]: `audit.runs`,
//! `audit.models_analyzed` (memo misses), `audit.memo_hits`, and
//! `audit.findings_{error,warn,info}`.

use crate::diagnostics::{Diagnostic, LintReport, Severity};
use crate::passes;
use crate::{LintContext, Pass};
use sommelier_graph::{Fingerprint, Model};
use sommelier_parallel::ThreadPool;
use sommelier_runtime::metrics::counters;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Outcome of one audit run: the report plus the memo's hit/miss split
/// for that run (the basis of the warm-vs-cold throughput bar).
#[derive(Clone, Debug)]
pub struct AuditOutcome {
    /// The aggregated, sorted, deduplicated findings.
    pub report: LintReport,
    /// Models whose deep analysis actually ran this audit (memo misses).
    pub models_analyzed: usize,
    /// Models answered from the fingerprint memo.
    pub memo_hits: usize,
}

/// A reusable deep-audit engine. Keep one `Auditor` alive across runs
/// to benefit from the fingerprint memo; a fresh `Auditor` is a cold
/// audit.
pub struct Auditor {
    pool: ThreadPool,
    memo: Mutex<HashMap<Fingerprint, Arc<Vec<Diagnostic>>>>,
}

impl Auditor {
    /// An auditor fanning per-model analyses over `jobs` workers
    /// (`0` = one per core, `1` = inline).
    pub fn new(jobs: usize) -> Auditor {
        Auditor {
            pool: ThreadPool::new(sommelier_parallel::effective_jobs(jobs)),
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// Number of fingerprints currently memoized.
    pub fn memo_len(&self) -> usize {
        self.memo.lock().expect("audit memo poisoned").len()
    }

    /// Audit everything in the context: all shallow passes, the deep
    /// dataflow pass per model, and the cross-artifact join.
    pub fn audit(&self, ctx: &LintContext) -> AuditOutcome {
        // Fingerprints first: they key the memo and feed the
        // cross-artifact fingerprint-drift check, so each model is
        // hashed exactly once per audit.
        let fps: Vec<Fingerprint> = self
            .pool
            .par_map(&ctx.models, |(_, m)| Fingerprint::of_model(m));

        // Per-model analyses, memoized. The memoized record is computed
        // with a placeholder target (two keys can share a fingerprint),
        // so targets are rewritten to the requesting key afterwards.
        let hits = AtomicU64::new(0);
        let items: Vec<(&(String, Model), Fingerprint)> =
            ctx.models.iter().zip(fps.iter().copied()).collect();
        let per_model: Vec<Arc<Vec<Diagnostic>>> = self.pool.par_map(&items, |((_, model), fp)| {
            if let Some(cached) = self.memo.lock().expect("audit memo poisoned").get(fp) {
                hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(cached);
            }
            let mut found = Vec::new();
            passes::model::model_graph_findings("\u{0}", model, &mut found);
            passes::model::round_trip_findings("\u{0}", model, &mut found);
            passes::deep::deep_model_findings("\u{0}", model, &mut found);
            let found = Arc::new(found);
            self.memo
                .lock()
                .expect("audit memo poisoned")
                .insert(*fp, Arc::clone(&found));
            found
        });

        let mut diagnostics = ctx.load_diagnostics.clone();
        for ((key, _), diags) in ctx.models.iter().zip(&per_model) {
            for d in diags.iter() {
                let mut d = d.clone();
                d.target = format!("model '{key}'");
                diagnostics.push(d);
            }
        }

        // Global passes: everything that looks across models or at the
        // persisted artifacts. `ModelCostPass` stays here because family
        // outliers are a property of the whole series, not one model.
        let global: Vec<Box<dyn Pass>> = vec![
            Box::new(passes::model::ModelCostPass),
            Box::new(passes::index::IndexIntegrityPass),
            Box::new(passes::index::TrianglePass),
            Box::new(passes::index::FreshnessPass),
            Box::new(passes::plan::QueryPlanPass),
            Box::new(passes::stats::SnapshotStatsPass),
            Box::new(passes::binary::BinarySnapshotPass),
            Box::new(passes::epoch::SnapshotEpochPass),
            Box::new(passes::store::StoreHygienePass),
        ];
        for pass in &global {
            pass.run(ctx, &mut diagnostics);
        }
        let fp_map: BTreeMap<&str, Fingerprint> = ctx
            .models
            .iter()
            .zip(fps.iter())
            .map(|((k, _), fp)| (k.as_str(), *fp))
            .collect();
        passes::deep::cross_artifact_findings(ctx, &fp_map, &mut diagnostics);

        let report = LintReport::from_diagnostics(diagnostics);
        let memo_hits = hits.load(Ordering::Relaxed) as usize;
        let models_analyzed = ctx.models.len() - memo_hits;
        counters::add("audit.runs", 1);
        counters::add("audit.models_analyzed", models_analyzed as u64);
        counters::add("audit.memo_hits", memo_hits as u64);
        counters::add("audit.findings_error", report.count(Severity::Error) as u64);
        counters::add("audit.findings_warn", report.count(Severity::Warn) as u64);
        counters::add("audit.findings_info", report.count(Severity::Info) as u64);
        AuditOutcome {
            report,
            models_analyzed,
            memo_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn ctx(n: usize) -> LintContext {
        let mut ctx = LintContext::new();
        for i in 0..n {
            let mut rng = Prng::seed_from_u64(i as u64);
            let m = ModelBuilder::new(format!("m{i}"), TaskKind::Other, Shape::vector(4))
                .dense(8, &mut rng)
                .relu()
                .dense(3, &mut rng)
                .softmax()
                .build()
                .unwrap();
            ctx.models.push((format!("m{i}"), m));
        }
        ctx
    }

    #[test]
    fn warm_audit_answers_from_the_memo() {
        let auditor = Auditor::new(1);
        let ctx = ctx(4);
        let cold = auditor.audit(&ctx);
        assert_eq!(cold.models_analyzed, 4);
        assert_eq!(cold.memo_hits, 0);
        let warm = auditor.audit(&ctx);
        assert_eq!(warm.models_analyzed, 0);
        assert_eq!(warm.memo_hits, 4);
        assert_eq!(cold.report, warm.report);
        assert_eq!(auditor.memo_len(), 4);
    }

    #[test]
    fn duplicate_content_under_two_keys_reports_both_keys() {
        let mut ctx = LintContext::new();
        // The same degenerate model stored under two keys: the second is
        // a memo hit, yet its finding must name the second key.
        let build = || {
            ModelBuilder::new("dup", TaskKind::Other, Shape::vector(4))
                .dense_with(sommelier_tensor::Tensor::zeros(4, 3), None)
                .softmax()
                .build()
                .unwrap()
        };
        ctx.models.push(("first".into(), build()));
        ctx.models.push(("second".into(), build()));
        let outcome = Auditor::new(1).audit(&ctx);
        assert_eq!(outcome.models_analyzed, 1);
        assert_eq!(outcome.memo_hits, 1);
        let targets: Vec<&str> = outcome
            .report
            .diagnostics
            .iter()
            .map(|d| d.target.as_str())
            .collect();
        assert!(targets.contains(&"model 'first'"), "{targets:?}");
        assert!(targets.contains(&"model 'second'"), "{targets:?}");
    }

    #[test]
    fn reports_are_identical_across_job_counts() {
        let ctx = ctx(6);
        let r1 = Auditor::new(1).audit(&ctx).report;
        let r4 = Auditor::new(4).audit(&ctx).report;
        let r8 = Auditor::new(8).audit(&ctx).report;
        assert_eq!(r1.to_json(), r4.to_json());
        assert_eq!(r4.to_json(), r8.to_json());
    }

    #[test]
    fn audit_counters_are_published() {
        // Counters are process-global and other tests audit too, so
        // assert on deltas, never on absolute values.
        let runs = counters::get("audit.runs");
        let analyzed = counters::get("audit.models_analyzed");
        let hits = counters::get("audit.memo_hits");
        let auditor = Auditor::new(1);
        let ctx = ctx(3);
        auditor.audit(&ctx);
        auditor.audit(&ctx);
        assert!(counters::get("audit.runs") >= runs + 2);
        assert!(counters::get("audit.models_analyzed") >= analyzed + 3);
        assert!(counters::get("audit.memo_hits") >= hits + 3);
    }
}
