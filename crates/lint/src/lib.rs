//! `sommelier-lint` — execution-free static analysis for Sommelier.
//!
//! The paper's pitch is *curation*: a repository operator should learn
//! about broken or suspicious artifacts before queries trip over them.
//! This crate is the curation gate. It runs a configurable set of
//! [`Pass`]es over a [`LintContext`] — the stored models, the persisted
//! indices, and (optionally) query ASTs — and aggregates structured
//! [`Diagnostic`]s into a [`LintReport`]. Nothing is executed: every
//! check is static, so linting an entire repository is cheap enough to
//! gate CI on.
//!
//! Three pass families ship by default:
//!
//! * **model graph** ([`passes::model`]) — dead layers, width
//!   bottlenecks that zero error propagation, suspicious activation
//!   orderings, family cost outliers, serde round-trip drift, all-zero
//!   weights (`SOM001`–`SOM007`);
//! * **repository & index invariants** ([`passes::index`]) — dangling
//!   keys, unsorted candidate lists, LSH buckets referencing missing
//!   resource vectors, transitive-bound triangle violations, stale
//!   snapshots, score/bound disagreement (`SOM020`–`SOM027`);
//! * **query plans** ([`passes::plan`]) — unsatisfiable `WITHIN`
//!   thresholds, statically empty resource budgets, shadowed
//!   predicates, references that prune to nothing (`SOM040`–`SOM044`);
//! * **snapshot stats header** ([`passes::stats`]) — missing,
//!   unknown-version, negative, or content-inconsistent metrics headers
//!   in persisted snapshots (`SOM050`–`SOM053`);
//! * **binary snapshot image** ([`passes::binary`]) — header/section
//!   CRC mismatches, slab-shape violations, and non-finite slab lanes
//!   in `.somb` binary snapshots (`SOM054`–`SOM056`);
//! * **publication epoch** ([`passes::epoch`]) — regressed or missing
//!   publication epochs and candidates referencing keys the snapshot
//!   never registered (`SOM060`–`SOM062`);
//! * **store hygiene** ([`passes::store`]) — quarantined artifacts,
//!   orphaned temp files from interrupted atomic writes, model files
//!   whose names are not canonical key encodings, unlistable store
//!   directories, and chunk-store hygiene: manifests referencing
//!   missing chunks, chunks no manifest references, and delta
//!   manifests with missing or cyclic base chains
//!   (`SOM070`–`SOM076`).
//!
//! On top of the shallow families sits the *deep audit*: an
//! abstract-interpretation [`dataflow`] engine feeding the
//! [`passes::deep`] family (`SOM080`–`SOM092`) — shape-incompatible
//! edges, non-finite weights, unreachable subgraphs, saturated
//! activations, constant outputs, rank-collapsed matmuls, declared-cost
//! drift, and the repository ↔ index ↔ snapshot consistency join. The
//! [`audit::Auditor`] runs everything in parallel with per-model
//! results memoized by fingerprint, so re-auditing an unchanged
//! repository is nearly free.
//!
//! The CLI exposes all of this as `sommelier lint <dir>` (shallow,
//! sequential) and `sommelier audit <dir>` (everything, parallel,
//! incremental).

pub mod audit;
pub mod dataflow;
pub mod deny;
pub mod diagnostics;
pub mod passes;

pub use audit::{AuditOutcome, Auditor};
pub use deny::DenySpec;
pub use diagnostics::{codes, Diagnostic, LintReport, Severity};

use sommelier_graph::Model;
use sommelier_index::{persist, ResourceIndex, SemanticIndex};
use sommelier_query::Query;
use sommelier_repo::{ModelRepository, OnDiskRepository};
use std::path::Path;
use std::time::SystemTime;

/// File name (inside a repository directory) of the persisted indices.
/// Mirrors the CLI's convention.
pub const INDEX_FILE: &str = "sommelier.index.json";

/// File name of the binary (`.somb`) snapshot. When both files exist
/// the binary one wins, mirroring the CLI's resolution order.
pub const INDEX_FILE_BIN: &str = "sommelier.index.somb";

/// Everything a lint run can look at. All fields are optional-by-shape:
/// passes skip whatever is absent, so the same runner lints a bare
/// directory of models, a fully indexed repository, or a single query.
#[derive(Default)]
pub struct LintContext {
    /// Stored models as `(repository key, model)`.
    pub models: Vec<(String, Model)>,
    /// The semantic index, if a snapshot was available.
    pub semantic: Option<SemanticIndex>,
    /// The resource index, if a snapshot was available.
    pub resource: Option<ResourceIndex>,
    /// The snapshot's content-derived stats header, if present.
    pub snapshot_stats: Option<persist::SnapshotStats>,
    /// Raw bytes of a binary (`.somb`) snapshot image, when the
    /// repository's index is the binary format. The
    /// [`passes::binary::BinarySnapshotPass`] scans these directly, so
    /// CRC and slab findings survive even when the image is too damaged
    /// to decode into `semantic`/`resource`.
    pub binary_snapshot: Option<Vec<u8>>,
    /// Modification time of the index snapshot file.
    pub index_mtime: Option<SystemTime>,
    /// Modification times of stored model files, keyed like `models`.
    pub model_mtimes: Vec<(String, SystemTime)>,
    /// Raw file names of the store directory (for hygiene lints).
    pub store_files: Vec<String>,
    /// Raw file names inside the store's `chunks/` namespace.
    pub chunk_files: Vec<String>,
    /// Parsed chunk manifests as `(file name, manifest)` — the
    /// store-hygiene pass checks chunk references and delta base
    /// chains against these.
    pub manifests: Vec<(String, sommelier_repo::Manifest)>,
    /// Queries to lint statically (parsed ASTs).
    pub queries: Vec<Query>,
    /// Findings produced while *loading* the context (unreadable model
    /// files, unparseable snapshots); prepended to every report.
    pub load_diagnostics: Vec<Diagnostic>,
}

impl LintContext {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a context from an on-disk repository directory: every
    /// readable `*.model.json`, the index snapshot (if present), and
    /// file modification times. Unreadable artifacts become
    /// `load_diagnostics` instead of hard failures — a corrupt snapshot
    /// is precisely what the lint layer exists to report.
    pub fn from_repo_dir(dir: &Path) -> Result<LintContext, String> {
        if !dir.exists() {
            return Err(format!("repository '{}' does not exist", dir.display()));
        }
        let repo = OnDiskRepository::open(dir).map_err(|e| e.to_string())?;
        let mut ctx = LintContext::new();
        match repo.try_keys() {
            Ok(keys) => {
                for key in keys {
                    match repo.load(&key) {
                        Ok(model) => ctx.models.push((key, model)),
                        Err(e) => ctx.load_diagnostics.push(Diagnostic::error(
                            codes::MODEL_UNREADABLE,
                            format!("model '{key}'"),
                            format!("stored model could not be loaded: {e}"),
                        )),
                    }
                }
            }
            // A listing failure blinds every store check: report it
            // loudly rather than linting an empty-looking repository.
            Err(e) => ctx.load_diagnostics.push(Diagnostic::error(
                codes::STORE_LISTING_FAILED,
                format!("store '{}'", dir.display()),
                format!("repository directory could not be listed: {e}"),
            )),
        }
        // Raw directory listing: store-hygiene fodder plus model-file
        // mtimes, decoded back to the repository keys they store.
        if let Ok(entries) = std::fs::read_dir(dir) {
            let mut mtimes = std::collections::BTreeMap::new();
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if entry.path().is_dir() {
                    continue; // the chunks/ namespace is listed below
                }
                ctx.store_files.push(name.to_string());
                // Both representations count as "the model file" for
                // freshness: a republished manifest must stale the
                // index exactly like a republished flat file.
                let Some(key) = name
                    .strip_suffix(sommelier_repo::MODEL_SUFFIX)
                    .or_else(|| name.strip_suffix(sommelier_repo::MANIFEST_SUFFIX))
                    .and_then(sommelier_repo::decode_key)
                else {
                    continue;
                };
                if let Ok(meta) = entry.metadata() {
                    if let Ok(mtime) = meta.modified() {
                        let slot = mtimes.entry(key).or_insert(mtime);
                        if mtime > *slot {
                            *slot = mtime;
                        }
                    }
                }
            }
            ctx.model_mtimes = mtimes.into_iter().collect();
        }
        ctx.store_files.sort();
        // Parse every manifest for chunk-hygiene checks. Unparseable
        // ones already surfaced as MODEL_UNREADABLE through the
        // key-loading loop above.
        for name in &ctx.store_files {
            if !name.ends_with(sommelier_repo::MANIFEST_SUFFIX) {
                continue;
            }
            if let Ok(bytes) = std::fs::read(dir.join(name)) {
                if let Ok(json) = String::from_utf8(bytes) {
                    if let Ok(manifest) = sommelier_repo::Manifest::from_json(&json) {
                        ctx.manifests.push((name.clone(), manifest));
                    }
                }
            }
        }
        if let Ok(entries) = std::fs::read_dir(dir.join(sommelier_repo::CHUNK_DIR)) {
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    ctx.chunk_files.push(name.to_string());
                }
            }
        }
        ctx.chunk_files.sort();
        // Binary snapshot wins over JSON when both exist (CLI order).
        let bin_path = dir.join(INDEX_FILE_BIN);
        let json_path = dir.join(INDEX_FILE);
        let index_path = if bin_path.exists() { bin_path } else { json_path };
        if index_path.exists() {
            ctx.index_mtime = std::fs::metadata(&index_path)
                .and_then(|m| m.modified())
                .ok();
            // Keep the raw image around for the binary-format lints
            // (sniffed by magic, not extension, so a renamed `.somb`
            // still gets CRC-level findings).
            if let Ok(bytes) = std::fs::read(&index_path) {
                if sommelier_index::somb::is_binary(&bytes) {
                    ctx.binary_snapshot = Some(bytes);
                }
            }
            match persist::read_snapshot(&index_path) {
                Ok(snapshot) => {
                    ctx.snapshot_stats = snapshot.stats;
                    ctx.semantic = Some(snapshot.semantic);
                    ctx.resource = Some(snapshot.resource);
                }
                Err(e) => ctx.load_diagnostics.push(Diagnostic::error(
                    codes::SNAPSHOT_UNREADABLE,
                    "index-snapshot",
                    format!("{e}"),
                )),
            }
        }
        Ok(ctx)
    }

    /// Whether a repository key exists among the loaded models.
    pub fn has_model(&self, key: &str) -> bool {
        self.models.iter().any(|(k, _)| k == key)
    }
}

/// One static analysis. Passes are independent: each walks the context
/// and appends findings; they never mutate what they analyze.
pub trait Pass {
    /// Stable pass name (for reporting and selection).
    fn name(&self) -> &'static str;
    /// Run the analysis, appending findings to `out`.
    fn run(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>);
}

/// Aggregates passes and produces a [`LintReport`].
#[derive(Default)]
pub struct LintRunner {
    passes: Vec<Box<dyn Pass>>,
}

impl LintRunner {
    /// An empty runner (register passes manually).
    pub fn new() -> Self {
        Self::default()
    }

    /// A runner with every built-in pass registered.
    pub fn with_default_passes() -> Self {
        let mut runner = LintRunner::new();
        runner.register(Box::new(passes::model::ModelGraphPass));
        runner.register(Box::new(passes::model::ModelCostPass));
        runner.register(Box::new(passes::model::ModelRoundTripPass));
        runner.register(Box::new(passes::index::IndexIntegrityPass));
        runner.register(Box::new(passes::index::TrianglePass));
        runner.register(Box::new(passes::index::FreshnessPass));
        runner.register(Box::new(passes::plan::QueryPlanPass));
        runner.register(Box::new(passes::stats::SnapshotStatsPass));
        runner.register(Box::new(passes::binary::BinarySnapshotPass));
        runner.register(Box::new(passes::epoch::SnapshotEpochPass));
        runner.register(Box::new(passes::store::StoreHygienePass));
        runner
    }

    /// A runner with every built-in pass *plus* the deep pass family —
    /// the sequential equivalent of one [`audit::Auditor`] run.
    pub fn with_deep_passes() -> Self {
        let mut runner = LintRunner::with_default_passes();
        runner.register(Box::new(passes::deep::DeepModelPass));
        runner.register(Box::new(passes::deep::CrossArtifactPass));
        runner
    }

    /// Add a pass.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Names of the registered passes, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run every pass over the context.
    pub fn run(&self, ctx: &LintContext) -> LintReport {
        let mut diagnostics = ctx.load_diagnostics.clone();
        for pass in &self.passes {
            pass.run(ctx, &mut diagnostics);
        }
        LintReport::from_diagnostics(diagnostics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_runner_registers_all_families() {
        let runner = LintRunner::with_default_passes();
        let names = runner.pass_names();
        assert!(names.contains(&"model-graph"));
        assert!(names.contains(&"index-integrity"));
        assert!(names.contains(&"query-plan"));
        assert!(names.contains(&"snapshot-stats"));
        assert!(names.contains(&"binary-snapshot"));
        assert!(names.contains(&"snapshot-epoch"));
        assert!(names.contains(&"store-hygiene"));
        assert_eq!(names.len(), 11);
        let deep = LintRunner::with_deep_passes();
        let names = deep.pass_names();
        assert!(names.contains(&"deep-dataflow"));
        assert!(names.contains(&"cross-artifact"));
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn empty_context_lints_clean() {
        let report = LintRunner::with_default_passes().run(&LintContext::new());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn load_diagnostics_are_carried_into_the_report() {
        let mut ctx = LintContext::new();
        ctx.load_diagnostics.push(Diagnostic::error(
            codes::SNAPSHOT_UNREADABLE,
            "index-snapshot",
            "boom",
        ));
        let report = LintRunner::with_default_passes().run(&ctx);
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }
}
