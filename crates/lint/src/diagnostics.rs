//! Shared diagnostics vocabulary of the lint layer.
//!
//! Every pass reports through the same structured [`Diagnostic`] record:
//! a stable `SOM0xx` code, a severity, the object the finding is about
//! (a model key, an index, a query), an optional layer id for graph
//! findings, a human-readable message, and an optional remediation hint.
//! Keeping the vocabulary shared means reports aggregate, sort, and
//! serialize uniformly regardless of which pass produced them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable diagnostic codes, grouped by pass family:
/// `SOM00x` model-graph lints, `SOM02x` repository/index invariants,
/// `SOM04x` query-plan lints, `SOM05x` snapshot stats-header and
/// binary-image lints (`SOM054`–`SOM056` cover the `.somb` format),
/// `SOM06x` snapshot publication-epoch lints, `SOM07x` store-hygiene
/// lints (quarantine, temp orphans, file naming), `SOM08x` deep
/// dataflow findings (abstract interpretation over the model graph),
/// `SOM09x` cross-artifact consistency findings.
pub mod codes {
    /// A layer's output is never consumed (dead computation).
    pub const DEAD_LAYER: &str = "SOM001";
    /// An interior layer narrows to width 1, zeroing error propagation.
    pub const WIDTH_BOTTLENECK: &str = "SOM002";
    /// Suspicious activation/normalization ordering (repeated or no-op).
    pub const SUSPICIOUS_ORDER: &str = "SOM003";
    /// Cost profile is an outlier against the model's declared family.
    pub const COST_OUTLIER: &str = "SOM004";
    /// The model does not survive a serde round-trip intact.
    pub const ROUND_TRIP_MISMATCH: &str = "SOM005";
    /// A linear layer carries an all-zero weight tensor.
    pub const ZERO_WEIGHTS: &str = "SOM006";
    /// A stored model file could not be read or parsed.
    pub const MODEL_UNREADABLE: &str = "SOM007";
    /// An index references a model key absent from the repository.
    pub const DANGLING_KEY: &str = "SOM020";
    /// A candidate list is not sorted by descending score.
    pub const UNSORTED_CANDIDATES: &str = "SOM021";
    /// An LSH bucket references a resource-vector slot that does not exist.
    pub const LSH_DANGLING_ID: &str = "SOM022";
    /// Recorded bounds violate the transitive triangle relation.
    pub const TRIANGLE_VIOLATION: &str = "SOM023";
    /// The index snapshot is older than a stored model file.
    pub const STALE_INDEX: &str = "SOM024";
    /// A candidate's score disagrees with its recorded diff bound.
    pub const SCORE_MISMATCH: &str = "SOM025";
    /// An indexed model has no live resource profile.
    pub const MISSING_PROFILE: &str = "SOM026";
    /// The index snapshot file could not be read or parsed.
    pub const SNAPSHOT_UNREADABLE: &str = "SOM027";
    /// A `WITHIN` threshold no score can ever reach.
    pub const UNSATISFIABLE_THRESHOLD: &str = "SOM040";
    /// A resolved resource bound statically admits nothing.
    pub const EMPTY_BUDGET: &str = "SOM041";
    /// A predicate shadowed by a tighter one on the same dimension.
    pub const SHADOWED_PREDICATE: &str = "SOM042";
    /// A reference filter that statically prunes every candidate.
    pub const EMPTY_REFERENCE: &str = "SOM043";
    /// `SELECT models 0` — the query statically returns nothing.
    pub const LIMIT_ZERO: &str = "SOM044";
    /// The snapshot predates the stats/metrics header (tolerated).
    pub const MISSING_SNAPSHOT_STATS: &str = "SOM050";
    /// The stats header declares a version this build does not know.
    pub const UNKNOWN_STATS_VERSION: &str = "SOM051";
    /// A stats-header counter is negative.
    pub const NEGATIVE_STATS_COUNTER: &str = "SOM052";
    /// The stats header disagrees with the snapshot's actual contents.
    pub const STATS_CONTENT_MISMATCH: &str = "SOM053";
    /// A binary snapshot's header or a section CRC fails validation.
    pub const BINARY_SNAPSHOT_CORRUPT: &str = "SOM054";
    /// The binary slab's byte length ≠ row count × stride × 4.
    pub const SLAB_SHAPE_MISMATCH: &str = "SOM055";
    /// The binary resource slab holds a NaN or infinite lane.
    pub const NON_FINITE_SLAB: &str = "SOM056";
    /// An LSH bucket id dangles from the resource slab: it references a
    /// tombstoned (removed) slot. Incremental maintenance purges bucket
    /// ids at removal time, so a dangling id means a removal path
    /// skipped the LSH purge (or the snapshot was edited by hand).
    pub const LSH_TOMBSTONED_ID: &str = "SOM057";
    /// The publication epoch is negative, or zero on a populated snapshot.
    pub const EPOCH_REGRESSION: &str = "SOM060";
    /// The header's declared version disagrees with its epoch field.
    pub const EPOCH_HEADER_MISMATCH: &str = "SOM061";
    /// A candidate references a key the snapshot itself never registered.
    pub const UNREGISTERED_CANDIDATE: &str = "SOM062";
    /// A quarantined (`*.corrupt-<epoch>`) artifact sits in the store.
    pub const QUARANTINED_FILE: &str = "SOM070";
    /// An orphaned temp file (`*.tmp-<pid>-<seq>`) from an interrupted write.
    pub const ORPHANED_TEMP: &str = "SOM071";
    /// A model file whose name is not a canonical key encoding.
    pub const NON_CANONICAL_MODEL_FILE: &str = "SOM072";
    /// The store directory could not be listed at all.
    pub const STORE_LISTING_FAILED: &str = "SOM073";
    /// A manifest references a chunk absent from the chunk store.
    pub const DANGLING_CHUNK: &str = "SOM074";
    /// A chunk no manifest references (refcount zero), or a stray
    /// non-chunk file inside the chunk namespace.
    pub const ORPHANED_CHUNK: &str = "SOM075";
    /// A delta manifest whose base chain is missing or cyclic.
    pub const BROKEN_DELTA_BASE: &str = "SOM076";
    /// A recomputed layer width disagrees with the stored graph.
    pub const SHAPE_INCOMPATIBLE: &str = "SOM080";
    /// A parameter tensor contains NaN or infinite values.
    pub const NONFINITE_WEIGHTS: &str = "SOM081";
    /// A subgraph can never reach the output (transitively dead).
    pub const UNREACHABLE_SUBGRAPH: &str = "SOM082";
    /// An activation is saturated for every input in the analyzed range.
    pub const SATURATED_ACTIVATION: &str = "SOM083";
    /// The output interval is a single point — input-independent output.
    pub const CONSTANT_OUTPUT: &str = "SOM084";
    /// A multi-unit linear layer has numerical rank ≤ 1.
    pub const RANK_COLLAPSED: &str = "SOM085";
    /// Metadata-declared cost disagrees with the recomputed `ModelCost`.
    pub const DECLARED_COST_DRIFT: &str = "SOM086";
    /// An indexed fingerprint disagrees with the stored model's.
    pub const FINGERPRINT_DRIFT: &str = "SOM090";
    /// A resource-index vector disagrees with the recomputed profile.
    pub const RESOURCE_DRIFT: &str = "SOM091";
    /// A transitive bound is inconsistent with its measured `Whole` legs.
    pub const TRANSITIVE_BOUND_VIOLATION: &str = "SOM092";

    /// Every known code with a one-line meaning, in code order. This is
    /// the single source of truth for `--deny` validation and the README
    /// code table; adding a constant above without registering it here
    /// fails the `registry_covers_every_constant` test.
    pub const ALL: &[(&str, &str)] = &[
        (DEAD_LAYER, "a layer's output is never consumed"),
        (WIDTH_BOTTLENECK, "interior layer narrows to width 1"),
        (SUSPICIOUS_ORDER, "redundant activation/normalization ordering"),
        (COST_OUTLIER, "cost profile is an outlier in its series"),
        (ROUND_TRIP_MISMATCH, "model does not survive a serde round-trip"),
        (ZERO_WEIGHTS, "linear layer carries an all-zero weight tensor"),
        (MODEL_UNREADABLE, "stored model file could not be read"),
        (DANGLING_KEY, "index references a key absent from the repository"),
        (UNSORTED_CANDIDATES, "candidate list not sorted by score"),
        (LSH_DANGLING_ID, "LSH bucket references a missing vector slot"),
        (TRIANGLE_VIOLATION, "bounds violate the triangle relation"),
        (STALE_INDEX, "index snapshot older than a stored model"),
        (SCORE_MISMATCH, "candidate score disagrees with its diff bound"),
        (MISSING_PROFILE, "indexed model has no resource profile"),
        (SNAPSHOT_UNREADABLE, "index snapshot could not be parsed"),
        (UNSATISFIABLE_THRESHOLD, "WITHIN threshold no score can reach"),
        (EMPTY_BUDGET, "resource bound statically admits nothing"),
        (SHADOWED_PREDICATE, "predicate shadowed by a tighter one"),
        (EMPTY_REFERENCE, "reference filter prunes every candidate"),
        (LIMIT_ZERO, "SELECT models 0 returns nothing"),
        (MISSING_SNAPSHOT_STATS, "snapshot predates the stats header"),
        (UNKNOWN_STATS_VERSION, "stats header declares an unknown version"),
        (NEGATIVE_STATS_COUNTER, "stats-header counter is negative"),
        (STATS_CONTENT_MISMATCH, "stats header disagrees with contents"),
        (BINARY_SNAPSHOT_CORRUPT, "binary snapshot header/CRC mismatch"),
        (SLAB_SHAPE_MISMATCH, "slab length disagrees with row count x dim"),
        (NON_FINITE_SLAB, "binary slab holds non-finite values"),
        (LSH_TOMBSTONED_ID, "LSH bucket id references a tombstoned slot"),
        (EPOCH_REGRESSION, "publication epoch regressed or is missing"),
        (EPOCH_HEADER_MISMATCH, "header version disagrees with its epoch"),
        (UNREGISTERED_CANDIDATE, "candidate references an unregistered key"),
        (QUARANTINED_FILE, "quarantined artifact sits in the store"),
        (ORPHANED_TEMP, "orphaned temp file from an interrupted write"),
        (NON_CANONICAL_MODEL_FILE, "model file name is not a canonical key"),
        (STORE_LISTING_FAILED, "store directory could not be listed"),
        (DANGLING_CHUNK, "manifest references a missing chunk"),
        (ORPHANED_CHUNK, "chunk is referenced by no manifest"),
        (BROKEN_DELTA_BASE, "delta manifest base missing or cyclic"),
        (SHAPE_INCOMPATIBLE, "recomputed layer width disagrees with graph"),
        (NONFINITE_WEIGHTS, "parameter tensor contains NaN/Inf values"),
        (UNREACHABLE_SUBGRAPH, "subgraph can never reach the output"),
        (SATURATED_ACTIVATION, "activation saturated over the input range"),
        (CONSTANT_OUTPUT, "output provably independent of the input"),
        (RANK_COLLAPSED, "multi-unit linear layer has rank <= 1"),
        (DECLARED_COST_DRIFT, "declared cost disagrees with recomputed"),
        (FINGERPRINT_DRIFT, "indexed fingerprint disagrees with the store"),
        (RESOURCE_DRIFT, "resource vector disagrees with recomputation"),
        (TRANSITIVE_BOUND_VIOLATION, "transitive bound breaks its legs' triangle"),
    ];
}

/// How bad a finding is. Ordered: `Info < Warn < Error`.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Severity {
    /// Advisory; never affects exit status.
    Info,
    /// Suspicious but not provably broken.
    Warn,
    /// A violated invariant.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// One structured lint finding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code (see [`codes`]).
    pub code: String,
    /// Finding severity.
    pub severity: Severity,
    /// What the finding is about: a model key, an index name, a query.
    pub target: String,
    /// Layer id for model-graph findings.
    pub layer: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// Optional remediation hint.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Construct a finding with the given severity.
    pub fn new(
        severity: Severity,
        code: &str,
        target: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code: code.to_string(),
            severity,
            target: target.into(),
            layer: None,
            message: message.into(),
            help: None,
        }
    }

    /// An `Error`-severity finding.
    pub fn error(code: &str, target: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Error, code, target, message)
    }

    /// A `Warn`-severity finding.
    pub fn warn(code: &str, target: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warn, code, target, message)
    }

    /// An `Info`-severity finding.
    pub fn info(code: &str, target: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Info, code, target, message)
    }

    /// Attach the layer id the finding points at.
    pub fn with_layer(mut self, layer: usize) -> Self {
        self.layer = Some(layer);
        self
    }

    /// Attach a remediation hint.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.code, self.target)?;
        if let Some(layer) = self.layer {
            write!(f, " (layer {layer})")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(help) = &self.help {
            write!(f, "\n    help: {help}")?;
        }
        Ok(())
    }
}

/// The aggregated outcome of a lint run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// All findings, sorted by code, then target, then layer.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Build a report from raw findings: sorts them canonically and
    /// drops exact repeats on `(code, target, layer, message)` —
    /// overlapping passes (e.g. the shallow graph lints and the deep
    /// dataflow pass) may legitimately reach the same conclusion, and a
    /// deduplicated, totally ordered report is what makes `--format
    /// json` byte-identical across runs and `--jobs` values.
    pub fn from_diagnostics(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            (&a.code, &a.target, a.layer, &a.message).cmp(&(&b.code, &b.target, b.layer, &b.message))
        });
        diagnostics.dedup_by(|a, b| {
            (&a.code, &a.target, a.layer, &a.message) == (&b.code, &b.target, b.layer, &b.message)
        });
        LintReport { diagnostics }
    }

    /// Remove findings present in a baseline (matched on
    /// `(code, target, layer, message)`), for CI ratcheting: a baseline
    /// file freezes today's findings so only *new* ones fail the gate.
    pub fn subtract(&mut self, baseline: &[Diagnostic]) {
        use std::collections::BTreeSet;
        let known: BTreeSet<_> = baseline
            .iter()
            .map(|d| (&d.code, &d.target, d.layer, &d.message))
            .collect();
        self.diagnostics
            .retain(|d| !known.contains(&(&d.code, &d.target, d.layer, &d.message)));
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The worst severity present, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Number of findings at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Plain-text report: one finding per line plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        ));
        out
    }

    /// Machine-readable report: the findings as a JSON array, which
    /// deserializes back into `Vec<Diagnostic>`.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.diagnostics).unwrap_or_else(|_| "[]".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn display_includes_code_layer_and_help() {
        let d = Diagnostic::warn(codes::DEAD_LAYER, "model 'm'", "layer is never consumed")
            .with_layer(3)
            .with_help("remove the layer");
        let s = d.to_string();
        assert!(s.contains("warn[SOM001]"), "{s}");
        assert!(s.contains("(layer 3)"), "{s}");
        assert!(s.contains("help: remove the layer"), "{s}");
    }

    #[test]
    fn report_sorts_counts_and_summarizes() {
        let report = LintReport::from_diagnostics(vec![
            Diagnostic::error(codes::DANGLING_KEY, "semantic-index", "b"),
            Diagnostic::warn(codes::DEAD_LAYER, "model 'a'", "a"),
            Diagnostic::info(codes::COST_OUTLIER, "model 'a'", "c"),
        ]);
        assert_eq!(report.diagnostics[0].code, "SOM001");
        assert_eq!(report.max_severity(), Some(Severity::Error));
        assert_eq!(report.count(Severity::Warn), 1);
        assert!(report.render_text().contains("1 error(s), 1 warning(s), 1 note(s)"));
        assert!(!report.is_clean());
        assert!(LintReport::default().is_clean());
    }

    #[test]
    fn identical_findings_from_overlapping_passes_deduplicate() {
        let d = Diagnostic::warn(codes::DEAD_LAYER, "model 'm'", "dead").with_layer(2);
        let report =
            LintReport::from_diagnostics(vec![d.clone(), d.clone(), d.clone()]);
        assert_eq!(report.diagnostics.len(), 1);
        // Different layer on the same code/target/message survives.
        let other = d.clone().with_layer(3);
        let report = LintReport::from_diagnostics(vec![d, other]);
        assert_eq!(report.diagnostics.len(), 2);
    }

    #[test]
    fn baseline_subtraction_removes_known_findings_only() {
        let old = Diagnostic::error(codes::DANGLING_KEY, "semantic-index", "old");
        let new = Diagnostic::error(codes::DANGLING_KEY, "semantic-index", "new");
        let mut report = LintReport::from_diagnostics(vec![old.clone(), new.clone()]);
        report.subtract(&[old]);
        assert_eq!(report.diagnostics, vec![new]);
    }

    fn is_sorted_and_deduped(report: &LintReport) -> bool {
        report.diagnostics.windows(2).all(|w| {
            (&w[0].code, &w[0].target, w[0].layer, &w[0].message)
                < (&w[1].code, &w[1].target, w[1].layer, &w[1].message)
        })
    }

    #[test]
    fn baseline_with_duplicate_findings_subtracts_once_cleanly() {
        // A hand-edited or concatenated baseline may repeat an entry;
        // subtraction must treat it as a set, not consume one
        // occurrence per repeat.
        let known = Diagnostic::error(codes::DANGLING_KEY, "semantic-index", "known");
        let kept = Diagnostic::warn(codes::DEAD_LAYER, "model 'm'", "kept");
        let mut report = LintReport::from_diagnostics(vec![known.clone(), kept.clone()]);
        report.subtract(&[known.clone(), known.clone(), known]);
        assert_eq!(report.diagnostics, vec![kept]);
        assert!(is_sorted_and_deduped(&report));
    }

    #[test]
    fn baseline_superset_of_current_empties_the_report() {
        let a = Diagnostic::error(codes::DANGLING_KEY, "semantic-index", "a");
        let b = Diagnostic::warn(codes::DEAD_LAYER, "model 'm'", "b");
        let extra = Diagnostic::info(codes::COST_OUTLIER, "model 'x'", "never seen");
        let mut report = LintReport::from_diagnostics(vec![a.clone(), b.clone()]);
        report.subtract(&[extra, b, a]);
        assert!(report.is_clean());
        assert_eq!(report.max_severity(), None);
    }

    #[test]
    fn empty_report_survives_subtraction() {
        let mut report = LintReport::default();
        report.subtract(&[Diagnostic::error(codes::DANGLING_KEY, "t", "m")]);
        assert!(report.is_clean());
        // And subtracting an empty baseline is the identity.
        let d = Diagnostic::warn(codes::DEAD_LAYER, "model 'm'", "kept").with_layer(1);
        let mut report = LintReport::from_diagnostics(vec![d.clone(), d.clone()]);
        report.subtract(&[]);
        assert_eq!(report.diagnostics, vec![d]);
        assert!(is_sorted_and_deduped(&report));
    }

    #[test]
    fn registry_covers_every_constant() {
        // The registry must list each code exactly once, in order.
        let mut seen = std::collections::BTreeSet::new();
        for w in codes::ALL.windows(2) {
            assert!(w[0].0 < w[1].0, "registry out of order at {}", w[1].0);
        }
        for (code, meaning) in codes::ALL {
            assert!(code.starts_with("SOM") && code.len() == 6, "{code}");
            assert!(!meaning.is_empty());
            assert!(seen.insert(*code), "duplicate registry entry {code}");
        }
        for known in [
            codes::DEAD_LAYER,
            codes::STORE_LISTING_FAILED,
            codes::SHAPE_INCOMPATIBLE,
            codes::TRANSITIVE_BOUND_VIOLATION,
        ] {
            assert!(seen.contains(known), "{known} missing from registry");
        }
        assert_eq!(codes::ALL.len(), 48, "update the registry with new codes");
    }

    #[test]
    fn json_report_round_trips_into_diagnostics() {
        let report = LintReport::from_diagnostics(vec![
            Diagnostic::error(codes::UNSORTED_CANDIDATES, "semantic-index", "out of order")
                .with_help("rebuild the index"),
            Diagnostic::warn(codes::WIDTH_BOTTLENECK, "model 'm'", "width 1").with_layer(2),
        ]);
        let json = report.to_json();
        let back: Vec<Diagnostic> = serde_json::from_str(&json).expect("report JSON parses");
        assert_eq!(back, report.diagnostics);
    }
}
