//! Forward abstract interpretation over a model graph.
//!
//! One pass over the (topologically ordered) layers computes, per
//! layer, a [`ShapeFact`] — the recomputed output width — and an
//! optional [`Interval`] — the hull of every activation value the layer
//! can produce when the model input stays inside the analyzed input
//! box. A backward reachability sweep from the output marks the layers
//! whose values can influence an inference at all.
//!
//! The interpreter never executes the model: dense and convolution
//! transfer functions fold the *weights* into interval arithmetic
//! (`O(params)` per layer, the same order as fingerprinting), which is
//! what lets the audit prove saturation and constant outputs without a
//! single forward pass — the paper's "no execution at curation time"
//! constraint.

use super::interval::Interval;
use super::shape::{self, ShapeFact};
use sommelier_graph::{Model, Op};

/// Abstract facts derived for one layer.
#[derive(Clone, Debug)]
pub struct LayerFact {
    /// Recomputed output width (independent of the stored `widths`).
    pub shape: ShapeFact,
    /// Hull of the layer's possible activation values; `None` when the
    /// value is unanalyzable (shape conflict upstream, or non-finite
    /// weights poisoning the arithmetic).
    pub value: Option<Interval>,
    /// Whether the layer can influence the model output.
    pub reachable: bool,
}

/// The result of one abstract interpretation run.
#[derive(Clone, Debug)]
pub struct ModelAnalysis {
    /// Per-layer facts, indexed by layer id.
    pub facts: Vec<LayerFact>,
}

impl ModelAnalysis {
    /// The abstract output value of the model, if analyzable.
    pub fn output_value(&self) -> Option<Interval> {
        self.facts.last().and_then(|f| f.value)
    }
}

/// Default input box for audits: zoo datasets and the runtime's
/// validation batches draw features from a standard-normal-ish range,
/// so `[-3, 3]` covers every realistic input without being vacuous.
pub const DEFAULT_INPUT: Interval = Interval { lo: -3.0, hi: 3.0 };

/// Run the forward interpreter with the model input confined to `input`.
pub fn analyze(model: &Model, input: Interval) -> ModelAnalysis {
    let n = model.num_layers();
    let mut facts: Vec<LayerFact> = Vec::with_capacity(n);
    for layer in model.layers() {
        let in_shapes: Vec<ShapeFact> =
            layer.inputs.iter().map(|id| facts[id.index()].shape).collect();
        let shape = shape::transfer(&layer.op, &in_shapes);
        let in_values: Option<Vec<Interval>> =
            layer.inputs.iter().map(|id| facts[id.index()].value).collect();
        let value = match (&shape, in_values) {
            (ShapeFact::Width(w), Some(ins)) => value_transfer(layer, &ins, *w, input),
            _ => None,
        };
        facts.push(LayerFact {
            shape,
            value,
            reachable: false,
        });
    }
    // Backward reachability from the output: a layer is live iff some
    // path of data dependencies connects it to the output layer.
    let mut stack = vec![model.output_id()];
    while let Some(id) = stack.pop() {
        let fact = &mut facts[id.index()];
        if fact.reachable {
            continue;
        }
        fact.reachable = true;
        stack.extend(model.layer(id).inputs.iter().copied());
    }
    ModelAnalysis { facts }
}

/// Interval transfer for one layer. `width` is the layer's recomputed
/// output width; `model_input` the analyzed input box (consumed by the
/// source layer). Returns `None` when non-finite weights would poison
/// the arithmetic.
fn value_transfer(
    layer: &sommelier_graph::Layer,
    ins: &[Interval],
    width: usize,
    model_input: Interval,
) -> Option<Interval> {
    let finite = |t: &sommelier_tensor::Tensor| t.as_slice().iter().all(|v| v.is_finite());
    match &layer.op {
        Op::Input { .. } => Some(model_input),
        Op::Dense { units } => {
            let x = *ins.first()?;
            let weight = layer.params.weight.as_ref()?;
            if !finite(weight) || layer.params.bias.as_ref().is_some_and(|b| !finite(b)) {
                return None;
            }
            let mut hull: Option<Interval> = None;
            for j in 0..*units {
                let b = layer.params.bias.as_ref().map_or(0.0, |b| b.get(0, j) as f64);
                let mut acc = Interval::point(b);
                for i in 0..weight.rows() {
                    acc = acc + x.scale(weight.get(i, j) as f64);
                }
                hull = Some(hull.map_or(acc, |h| h.join(acc)));
            }
            hull
        }
        Op::Conv1d {
            out_channels,
            kernel_size,
            ..
        } => {
            let x = *ins.first()?;
            let kernel = layer.params.weight.as_ref()?;
            if !finite(kernel) {
                return None;
            }
            let mut hull: Option<Interval> = None;
            for c in 0..*out_channels {
                let mut acc = Interval::point(0.0);
                for k in 0..*kernel_size {
                    acc = acc + x.scale(kernel.get(c, k) as f64);
                }
                hull = Some(hull.map_or(acc, |h| h.join(acc)));
            }
            hull
        }
        Op::Scale => {
            let x = *ins.first()?;
            let scale = layer.params.weight.as_ref()?;
            if !finite(scale) || layer.params.bias.as_ref().is_some_and(|b| !finite(b)) {
                return None;
            }
            let mut hull: Option<Interval> = None;
            for i in 0..scale.cols() {
                let shift = layer.params.bias.as_ref().map_or(0.0, |b| b.get(0, i) as f64);
                let f = x.scale(scale.get(0, i) as f64).shift(shift);
                hull = Some(hull.map_or(f, |h| h.join(f)));
            }
            hull
        }
        Op::Relu => Some(ins.first()?.relu()),
        Op::LeakyRelu { slope } => Some(ins.first()?.leaky_relu(*slope as f64)),
        Op::Tanh => Some(ins.first()?.tanh()),
        Op::Sigmoid => Some(ins.first()?.sigmoid()),
        Op::Softmax => {
            // A point input means every feature holds the same value, so
            // softmax provably flattens to the uniform distribution.
            let x = *ins.first()?;
            Some(if x.is_point() {
                Interval::point(1.0 / width as f64)
            } else {
                Interval::new(0.0, 1.0)
            })
        }
        Op::L2Normalize => {
            let x = *ins.first()?;
            Some(if x.is_point() && x.lo != 0.0 {
                Interval::point(x.lo.signum() / (width as f64).sqrt())
            } else {
                Interval::new(-1.0, 1.0)
            })
        }
        Op::MaxPool { .. } | Op::MeanPool { .. } => ins.first().copied(),
        Op::Add => {
            let mut it = ins.iter();
            let first = *it.next()?;
            Some(it.fold(first, |acc, i| acc + *i))
        }
        Op::Multiply => {
            let mut it = ins.iter();
            let first = *it.next()?;
            Some(it.fold(first, |acc, i| acc * *i))
        }
        Op::Concat => {
            let mut it = ins.iter();
            let first = *it.next()?;
            Some(it.fold(first, |acc, i| acc.join(*i)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape, Tensor};

    fn mlp(seed: u64) -> Model {
        let mut rng = Prng::seed_from_u64(seed);
        ModelBuilder::new("m", TaskKind::Other, Shape::vector(4))
            .dense(8, &mut rng)
            .relu()
            .dense(3, &mut rng)
            .softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn recomputed_shapes_match_a_valid_model() {
        let model = mlp(1);
        let analysis = analyze(&model, DEFAULT_INPUT);
        for (i, fact) in analysis.facts.iter().enumerate() {
            assert_eq!(
                fact.shape.width(),
                Some(model.width_of(sommelier_graph::LayerId(i))),
                "layer {i}"
            );
            assert!(fact.reachable, "layer {i} of a chain model is live");
        }
    }

    #[test]
    fn intervals_bound_a_concrete_execution() {
        let model = mlp(2);
        let analysis = analyze(&model, DEFAULT_INPUT);
        // Execute on a batch inside the input box and check containment
        // layer by layer would need the runtime; here we check the two
        // invariants the audit relies on: relu output is non-negative
        // and softmax output lands in [0, 1].
        let relu = analysis.facts[2].value.unwrap();
        assert!(relu.lo >= 0.0);
        let out = analysis.output_value().unwrap();
        assert!(out.lo >= 0.0 && out.hi <= 1.0);
    }

    #[test]
    fn zero_weights_collapse_to_a_point() {
        let model = ModelBuilder::new("z", TaskKind::Other, Shape::vector(4))
            .dense_with(Tensor::zeros(4, 3), None)
            .build()
            .unwrap();
        let analysis = analyze(&model, DEFAULT_INPUT);
        let out = analysis.output_value().unwrap();
        assert!(out.is_point() && out.lo == 0.0);
    }

    #[test]
    fn non_finite_weights_poison_the_value_domain() {
        let mut w = Tensor::zeros(4, 3);
        w.set(0, 0, f32::INFINITY);
        let model = ModelBuilder::new("inf", TaskKind::Other, Shape::vector(4))
            .dense_with(w, None)
            .softmax()
            .build()
            .unwrap();
        let analysis = analyze(&model, DEFAULT_INPUT);
        assert!(analysis.facts[1].value.is_none());
        assert!(analysis.output_value().is_none());
        // Shapes are still derived — the domains are independent.
        assert_eq!(analysis.facts[1].shape, ShapeFact::Width(3));
    }

    #[test]
    fn dead_branches_are_unreachable() {
        let mut rng = Prng::seed_from_u64(3);
        let mut b = ModelBuilder::new("dead", TaskKind::Other, Shape::vector(4));
        b.dense(4, &mut rng);
        let trunk = b.cursor();
        b.relu();
        let live = b.cursor();
        b.goto(trunk);
        b.dense(2, &mut rng); // dead branch head
        let dead_head = b.cursor();
        b.relu(); // transitively dead: consumed, but only by dead layers
        let dead_tail = b.cursor();
        b.goto(live);
        b.softmax();
        let model = b.build().unwrap();
        let analysis = analyze(&model, DEFAULT_INPUT);
        assert!(!analysis.facts[dead_head.index()].reachable);
        assert!(!analysis.facts[dead_tail.index()].reachable);
        assert!(analysis.facts[live.index()].reachable);
        assert!(analysis.facts[0].reachable, "input feeds the live trunk");
    }
}
