//! The value-interval abstract domain.
//!
//! Each layer's (abstract) activation is summarized as one closed
//! interval `[lo, hi]` hulled over the layer's features: if every model
//! input lies inside the analyzed input box, every concrete activation
//! of that layer lies inside the interval. The domain is deliberately
//! coarse — one interval per layer, not per feature — because the audit
//! only needs to *prove* degeneracy (a saturated activation, a constant
//! output), never to bound tightly. Transfer functions are therefore
//! standard interval arithmetic, widened to the per-layer hull.

/// A closed interval `[lo, hi]` with `lo <= hi`; the abstract value of
/// every feature a layer can produce.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Interval {
    /// The interval `[lo, hi]`. Panics if `lo > hi` or a bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval::new(v, v)
    }

    /// Least upper bound (interval hull) of two intervals.
    pub fn join(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Width `hi - lo`; zero exactly for point intervals.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval is a single point (a provably constant value).
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// Scale by a constant (weight edges: `w * [lo, hi]`).
    pub fn scale(self, k: f64) -> Interval {
        if k >= 0.0 {
            Interval::new(k * self.lo, k * self.hi)
        } else {
            Interval::new(k * self.hi, k * self.lo)
        }
    }

    /// Shift by a constant (bias edges).
    pub fn shift(self, b: f64) -> Interval {
        Interval::new(self.lo + b, self.hi + b)
    }

    /// ReLU transfer `max(0, x)`.
    pub fn relu(self) -> Interval {
        Interval::new(self.lo.max(0.0), self.hi.max(0.0))
    }

    /// Leaky-ReLU transfer with negative-side slope `s` (assumed
    /// `0 <= s <= 1`, the only slopes the builder produces).
    pub fn leaky_relu(self, s: f64) -> Interval {
        let f = |x: f64| if x >= 0.0 { x } else { s * x };
        Interval::new(f(self.lo), f(self.hi))
    }

    /// Monotone tanh transfer.
    pub fn tanh(self) -> Interval {
        Interval::new(self.lo.tanh(), self.hi.tanh())
    }

    /// Monotone logistic-sigmoid transfer.
    pub fn sigmoid(self) -> Interval {
        let f = |x: f64| 1.0 / (1.0 + (-x).exp());
        Interval::new(f(self.lo), f(self.hi))
    }
}

/// Minkowski sum `[a.lo + b.lo, a.hi + b.hi]`.
impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, other: Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }
}

/// Product interval: the hull of all four corner products.
impl std::ops::Mul for Interval {
    type Output = Interval;
    fn mul(self, other: Interval) -> Interval {
        let corners = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        let lo = corners.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = corners.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_the_hull() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(0.0, 5.0);
        assert_eq!(a.join(b), Interval::new(-1.0, 5.0));
        assert_eq!(b.join(a), a.join(b));
    }

    #[test]
    fn arithmetic_is_sound_on_samples() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(-1.0, 4.0);
        let sum = a + b;
        let prod = a * b;
        for x in [-2.0, -1.0, 0.0, 1.5, 3.0] {
            for y in [-1.0, 0.0, 2.0, 4.0] {
                assert!(sum.lo <= x + y && x + y <= sum.hi);
                assert!(prod.lo <= x * y && x * y <= prod.hi);
            }
        }
    }

    #[test]
    fn negative_scale_flips_the_bounds() {
        let a = Interval::new(-1.0, 2.0);
        assert_eq!(a.scale(-3.0), Interval::new(-6.0, 3.0));
        assert_eq!(a.scale(2.0), Interval::new(-2.0, 4.0));
    }

    #[test]
    fn activations_preserve_ordering_and_range() {
        let a = Interval::new(-5.0, 1.0);
        assert_eq!(a.relu(), Interval::new(0.0, 1.0));
        let s = a.sigmoid();
        assert!(s.lo > 0.0 && s.hi < 1.0 && s.lo <= s.hi);
        let t = a.tanh();
        assert!(t.lo >= -1.0 && t.hi <= 1.0 && t.lo <= t.hi);
        assert_eq!(a.leaky_relu(0.1), Interval::new(-0.5, 1.0));
    }

    #[test]
    fn point_detection() {
        assert!(Interval::point(2.5).is_point());
        assert!(!Interval::new(0.0, 1e-12).is_point());
        assert_eq!(Interval::new(1.0, 3.0).width(), 2.0);
    }
}
