//! The shape abstract domain.
//!
//! A three-level lattice over per-layer feature widths:
//!
//! ```text
//!         Conflict            (⊤ — the operator rejected its inputs,
//!        /    |    \               or two derivations disagree)
//!   Width(1) Width(2) …       (a proven concrete width)
//!        \    |    /
//!         Unknown             (⊥ — not yet derived)
//! ```
//!
//! Because a [`Model`](sommelier_graph::Model) stores layers in
//! topological order, the forward pass assigns each layer exactly once
//! and the join is only exercised when a recomputed width is compared
//! against the width cached in the artifact — the check that catches
//! tampered or bit-rotted `widths` arrays, which the serde layer accepts
//! verbatim without revalidation.

use sommelier_graph::Op;

/// Abstract width of one layer's output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeFact {
    /// Bottom: no derivation has reached the layer yet.
    Unknown,
    /// A proven concrete feature width.
    Width(usize),
    /// Top: the operator rejected its inputs, or two derivations
    /// disagree. Poisons everything downstream.
    Conflict,
}

impl ShapeFact {
    /// Lattice join (least upper bound).
    pub fn join(self, other: ShapeFact) -> ShapeFact {
        use ShapeFact::*;
        match (self, other) {
            (Unknown, x) | (x, Unknown) => x,
            (Width(a), Width(b)) if a == b => Width(a),
            _ => Conflict,
        }
    }

    /// The concrete width, if proven.
    pub fn width(self) -> Option<usize> {
        match self {
            ShapeFact::Width(w) => Some(w),
            _ => None,
        }
    }
}

/// Transfer function: the output shape of `op` given its input shapes.
/// Any `Unknown` or `Conflict` input poisons the output; otherwise the
/// operator's own [`Op::output_width`] arbitrates.
pub fn transfer(op: &Op, inputs: &[ShapeFact]) -> ShapeFact {
    let mut widths = Vec::with_capacity(inputs.len());
    for fact in inputs {
        match fact.width() {
            Some(w) => widths.push(w),
            None => return ShapeFact::Conflict,
        }
    }
    match op.output_width(&widths) {
        Some(w) => ShapeFact::Width(w),
        None => ShapeFact::Conflict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_obeys_the_lattice() {
        use ShapeFact::*;
        assert_eq!(Unknown.join(Width(3)), Width(3));
        assert_eq!(Width(3).join(Width(3)), Width(3));
        assert_eq!(Width(3).join(Width(4)), Conflict);
        assert_eq!(Conflict.join(Width(3)), Conflict);
        assert_eq!(Unknown.join(Unknown), Unknown);
    }

    #[test]
    fn transfer_propagates_and_poisons() {
        let dense = Op::Dense { units: 7 };
        assert_eq!(transfer(&dense, &[ShapeFact::Width(4)]), ShapeFact::Width(7));
        assert_eq!(transfer(&dense, &[ShapeFact::Conflict]), ShapeFact::Conflict);
        let add = Op::Add;
        assert_eq!(
            transfer(&add, &[ShapeFact::Width(4), ShapeFact::Width(4)]),
            ShapeFact::Width(4)
        );
        assert_eq!(
            transfer(&add, &[ShapeFact::Width(4), ShapeFact::Width(5)]),
            ShapeFact::Conflict
        );
    }
}
