//! Abstract-interpretation dataflow analysis over model graphs.
//!
//! The deep pass family (`SOM080`–`SOM099`) needs facts that the
//! shallow per-layer lints cannot see: whether an edge is
//! shape-compatible *after* recomputing every width from the operators
//! (the stored `widths` array is attacker/bit-rot territory — serde
//! accepts it verbatim), whether a value can ever escape an
//! activation's saturation region, whether the output can vary at all.
//! Those are dataflow properties, so this module provides the two
//! abstract domains and the forward interpreter that joins them:
//!
//! * [`shape`] — a flat lattice over feature widths
//!   (`Unknown < Width(w) < Conflict`);
//! * [`interval`] — closed `[lo, hi]` intervals with sound transfer
//!   functions for every operator in the taxonomy;
//! * [`analysis`] — one forward pass per model producing per-layer
//!   [`LayerFact`]s plus backward output-reachability.

pub mod analysis;
pub mod interval;
pub mod shape;

pub use analysis::{analyze, LayerFact, ModelAnalysis, DEFAULT_INPUT};
pub use interval::Interval;
pub use shape::ShapeFact;
