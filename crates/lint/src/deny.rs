//! `--deny` specifications: which findings fail a lint/audit run.
//!
//! A spec is accumulated from repeated `--deny` flags; each value is
//! one of:
//!
//! * a severity class — `error`, `warn`, or `info` (deny everything at
//!   or above that severity);
//! * an exact code — `SOM081`;
//! * a code range — trailing `x` digits act as wildcards, so `SOM09x`
//!   denies every known `SOM09…` code and `SOM0xx` denies everything.
//!
//! Unknown codes and ranges matching no registered code are *errors*,
//! not silently-ignored no-ops: a CI gate that misspells a code must
//! fail loudly rather than pass vacuously. The code registry is
//! [`codes::ALL`].

use crate::diagnostics::{codes, Diagnostic, Severity};
use std::collections::BTreeSet;

/// A parsed, validated deny specification.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DenySpec {
    /// Deny any finding at or above this severity.
    severity: Option<Severity>,
    /// Deny these exact codes (expanded from ranges at parse time).
    codes: BTreeSet<&'static str>,
}

impl DenySpec {
    /// The CLI default: deny `error`-severity findings.
    pub fn default_errors() -> DenySpec {
        DenySpec {
            severity: Some(Severity::Error),
            codes: BTreeSet::new(),
        }
    }

    /// Parse one `--deny` value into this spec. Severity classes and
    /// code selectors accumulate; the effective spec is their union.
    pub fn add(&mut self, spec: &str) -> Result<(), String> {
        match spec {
            "error" => {
                self.severity = Some(self.severity.map_or(Severity::Error, |s| s.min(Severity::Error)));
                return Ok(());
            }
            "warn" => {
                self.severity = Some(self.severity.map_or(Severity::Warn, |s| s.min(Severity::Warn)));
                return Ok(());
            }
            "info" => {
                self.severity = Some(Severity::Info);
                return Ok(());
            }
            _ => {}
        }
        let Some(rest) = spec.strip_prefix("SOM") else {
            return Err(format!(
                "unknown deny spec '{spec}' (expected error|warn|info, a SOM0xx code, \
                 or a SOM08x-style range)"
            ));
        };
        if rest.len() != 3 || !rest.chars().all(|c| c.is_ascii_digit() || c == 'x') {
            return Err(format!("malformed code '{spec}' (expected SOM + 3 digits, x as wildcard)"));
        }
        // Trailing-x wildcard: the prefix before the first 'x' matches.
        let prefix_len = rest.find('x').unwrap_or(rest.len());
        if rest[prefix_len..].chars().any(|c| c != 'x') {
            return Err(format!("malformed range '{spec}' (wildcard x digits must be trailing)"));
        }
        let prefix = &spec[..3 + prefix_len];
        let matched: Vec<&'static str> = codes::ALL
            .iter()
            .map(|(code, _)| *code)
            .filter(|code| code.starts_with(prefix))
            .collect();
        if matched.is_empty() {
            return Err(format!("unknown diagnostic code '{spec}'"));
        }
        self.codes.extend(matched);
        Ok(())
    }

    /// Parse a list of `--deny` values; an empty list yields the
    /// default (`error`).
    pub fn parse(specs: &[&str]) -> Result<DenySpec, String> {
        if specs.is_empty() {
            return Ok(DenySpec::default_errors());
        }
        let mut out = DenySpec::default();
        for spec in specs {
            out.add(spec)?;
        }
        Ok(out)
    }

    /// Whether a finding is denied by this spec.
    pub fn denies(&self, d: &Diagnostic) -> bool {
        if self.severity.is_some_and(|s| d.severity >= s) {
            return true;
        }
        self.codes.contains(d.code.as_str())
    }

    /// Count the denied findings in a report's diagnostics.
    pub fn count_denied(&self, diagnostics: &[Diagnostic]) -> usize {
        diagnostics.iter().filter(|d| self.denies(d)).count()
    }

    /// Human-readable form for failure messages.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(s) = self.severity {
            parts.push(format!("severity >= {s}"));
        }
        if !self.codes.is_empty() {
            parts.push(
                self.codes
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        parts.join(" or ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_defaults_to_errors() {
        let spec = DenySpec::parse(&[]).unwrap();
        assert!(spec.denies(&Diagnostic::error(codes::DANGLING_KEY, "t", "m")));
        assert!(!spec.denies(&Diagnostic::warn(codes::DEAD_LAYER, "t", "m")));
    }

    #[test]
    fn severity_classes_deny_at_or_above() {
        let spec = DenySpec::parse(&["warn"]).unwrap();
        assert!(spec.denies(&Diagnostic::error(codes::DANGLING_KEY, "t", "m")));
        assert!(spec.denies(&Diagnostic::warn(codes::DEAD_LAYER, "t", "m")));
        assert!(!spec.denies(&Diagnostic::info(codes::COST_OUTLIER, "t", "m")));
        let spec = DenySpec::parse(&["info"]).unwrap();
        assert!(spec.denies(&Diagnostic::info(codes::COST_OUTLIER, "t", "m")));
    }

    #[test]
    fn exact_codes_deny_regardless_of_severity() {
        let spec = DenySpec::parse(&["SOM004"]).unwrap();
        assert!(spec.denies(&Diagnostic::info(codes::COST_OUTLIER, "t", "m")));
        assert!(!spec.denies(&Diagnostic::error(codes::DANGLING_KEY, "t", "m")));
    }

    #[test]
    fn ranges_expand_over_the_registry() {
        let spec = DenySpec::parse(&["SOM09x"]).unwrap();
        assert!(spec.denies(&Diagnostic::error(codes::FINGERPRINT_DRIFT, "t", "m")));
        assert!(spec.denies(&Diagnostic::error(codes::RESOURCE_DRIFT, "t", "m")));
        assert!(!spec.denies(&Diagnostic::error(codes::SHAPE_INCOMPATIBLE, "t", "m")));
        let everything = DenySpec::parse(&["SOM0xx"]).unwrap();
        assert!(everything.denies(&Diagnostic::info(codes::COST_OUTLIER, "t", "m")));
    }

    #[test]
    fn specs_accumulate_as_a_union() {
        let spec = DenySpec::parse(&["SOM081", "SOM09x"]).unwrap();
        assert!(spec.denies(&Diagnostic::error(codes::NONFINITE_WEIGHTS, "t", "m")));
        assert!(spec.denies(&Diagnostic::error(codes::TRANSITIVE_BOUND_VIOLATION, "t", "m")));
        assert!(!spec.denies(&Diagnostic::error(codes::SHAPE_INCOMPATIBLE, "t", "m")));
    }

    #[test]
    fn unknown_codes_are_an_error_not_a_noop() {
        assert!(DenySpec::parse(&["SOM999"]).is_err());
        assert!(DenySpec::parse(&["SOM9xx"]).is_err());
        assert!(DenySpec::parse(&["bogus"]).is_err());
        assert!(DenySpec::parse(&["SOMx81"]).is_err(), "non-trailing wildcard");
        assert!(DenySpec::parse(&["SOM08"]).is_err(), "truncated code");
    }
}
